// Parsed form of the trace JSONL export, shared by replay and merge.
//
// to_jsonl() (obs/trace.h) writes one flat object per span; this header is
// the matching reader: a targeted recursive-descent parser for exactly that
// shape (scalars plus one "attrs" nesting level), not a general JSON
// library. trace_replay folds TraceEvents into the Fig. 6 table;
// trace_merge joins per-process files, assigns each event a process index
// (the "proc" key, round-tripped by to_json_line) and rewrites clocks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eppi::obs {

struct TraceEvent {
  std::uint64_t span = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::uint64_t trace = 0;
  std::uint64_t thread = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  // Merge-assigned process index (input-file order). 0 both for "process 0"
  // and "never merged"; only merged files carry meaningful proc keys.
  std::uint32_t proc = 0;
  std::string name;

  struct Attr {
    enum class Kind : std::uint8_t { kU64, kF64, kBool, kStr, kNull };
    std::string key;
    Kind kind = Kind::kNull;
    std::uint64_t u64 = 0;  // valid when kind == kU64
    double f64 = 0.0;       // valid for kU64 and kF64
    bool boolean = false;
    std::string str;
  };
  std::vector<Attr> attrs;

  const Attr* attr(std::string_view key) const noexcept;
  std::uint64_t attr_u64(std::string_view key,
                         std::uint64_t fallback = 0) const noexcept;
  bool has_attr(std::string_view key) const noexcept {
    return attr(key) != nullptr;
  }

  double duration_ms() const noexcept {
    return end_ns >= start_ns
               ? static_cast<double>(end_ns - start_ns) / 1e6
               : 0.0;
  }
};

// Parses one exporter line into `out` (cleared first). Returns false — and
// leaves `out` unspecified — if the line is not one flat trace object.
// Unknown top-level keys are ignored so newer exporters stay readable.
bool parse_trace_line(std::string_view line, TraceEvent* out);

// Re-serializes an event in the exporter's shape (with "proc" included),
// newline-terminated, so merged traces feed back into the same parser.
std::string to_json_line(const TraceEvent& ev);

}  // namespace eppi::obs
