#include "obs/trace_merge.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace eppi::obs {

namespace {

constexpr std::string_view kRecvName = "net.recv";
constexpr std::int64_t kUnset = std::numeric_limits<std::int64_t>::max();

// A matched send→recv edge: the recv event at events[file_to][index] whose
// parent span lives in file_from.
struct Edge {
  std::uint32_t file_from = 0;
  std::uint32_t file_to = 0;
  std::size_t index = 0;
  std::int64_t send_ns = 0;  // sender clock, pre-adjustment
  std::int64_t recv_ns = 0;  // receiver clock, pre-adjustment
  bool retransmit = false;
};

std::int64_t as_i64(std::uint64_t v) {
  return static_cast<std::int64_t>(
      std::min(v, static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())));
}

}  // namespace

std::vector<TraceEvent> merge_traces(std::vector<TraceFile> files,
                                     MergeReport* report) {
  MergeReport local;
  MergeReport& rep = report != nullptr ? *report : local;
  rep = MergeReport{};
  const std::size_t n = files.size();
  rep.processes = n;
  rep.offsets_ns.assign(n, 0);
  for (const TraceFile& f : files) rep.labels.push_back(f.label);

  // Span ids are globally unique (per-process seeded high bits), so one flat
  // map resolves any parent reference to the process that minted it.
  std::unordered_map<std::uint64_t, std::uint32_t> owner;
  for (std::uint32_t i = 0; i < n; ++i) {
    rep.events += files[i].events.size();
    for (const TraceEvent& ev : files[i].events) {
      owner.emplace(ev.span, i);
    }
  }

  // Collect matched send→recv edges and, per ordered process pair, the
  // tightest difference constraint  off_from - off_to ≤ min(recv - send).
  std::vector<Edge> edges;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> tightest;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < files[i].events.size(); ++k) {
      const TraceEvent& ev = files[i].events[k];
      if (ev.name != kRecvName) continue;
      ++rep.recv_events;
      const auto it = owner.find(ev.parent);
      if (it == owner.end()) {
        ++rep.unmatched_recv;
        continue;
      }
      ++rep.matched_edges;
      if (it->second != i) ++rep.cross_process_edges;
      Edge e;
      e.file_from = it->second;
      e.file_to = i;
      e.index = k;
      e.send_ns = as_i64(ev.attr_u64("send_ns"));
      e.recv_ns = as_i64(ev.start_ns);
      e.retransmit = ev.attr_u64("rt") != 0;
      if (e.retransmit) ++rep.retransmit_edges;
      edges.push_back(e);
      if (!e.retransmit && e.file_from != e.file_to) {
        const auto key = std::make_pair(e.file_from, e.file_to);
        const std::int64_t delta = e.recv_ns - e.send_ns;
        auto [slot, inserted] = tightest.emplace(key, delta);
        if (!inserted && delta < slot->second) slot->second = delta;
      }
    }
  }

  // Solve the difference constraints off_a ≤ off_b + m_ab (one per ordered
  // pair (a,b) with messages a→b) by Bellman-Ford shortest paths from
  // process 0: dist[] at the fixpoint is a feasible offset assignment
  // whenever one exists, i.e. zero causality violations unless the inputs
  // are genuinely contradictory. Processes unconnected to 0 by any
  // constraint keep offset 0 (their clock cannot be related to the rest).
  std::vector<std::int64_t> dist(n, kUnset);
  if (n != 0) dist[0] = 0;
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (const auto& [key, m] : tightest) {
      const auto [a, b] = key;
      if (dist[b] == kUnset) continue;
      if (dist[a] == kUnset || dist[b] + m < dist[a]) {
        dist[a] = dist[b] + m;
        changed = true;
      }
    }
    if (!changed) break;
  }
  std::vector<std::int64_t> off(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (dist[i] != kUnset) off[i] = dist[i];
  }

  // Global shift so the earliest adjusted event lands at t = 0.
  std::int64_t shift = kUnset;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const TraceEvent& ev : files[i].events) {
      shift = std::min(shift, as_i64(ev.start_ns) + off[i]);
    }
  }
  if (shift == kUnset) shift = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    rep.offsets_ns[i] = off[i] - shift;
  }

  // Apply: stamp proc, shift clocks, rewrite send_ns attrs into the merged
  // clock (using the *sender's* offset — the attribute was stamped by the
  // sending process).
  for (const Edge& e : edges) {
    TraceEvent& ev = files[e.file_to].events[e.index];
    const std::int64_t send_adj = e.send_ns + rep.offsets_ns[e.file_from];
    const std::int64_t recv_adj = e.recv_ns + rep.offsets_ns[e.file_to];
    for (TraceEvent::Attr& a : ev.attrs) {
      if (a.key == "send_ns") {
        a.u64 = static_cast<std::uint64_t>(std::max<std::int64_t>(send_adj, 0));
        a.f64 = static_cast<double>(a.u64);
      }
    }
    if (!e.retransmit && recv_adj < send_adj) {
      ++rep.causality_violations;
      rep.max_violation_ms =
          std::max(rep.max_violation_ms,
                   static_cast<double>(send_adj - recv_adj) / 1e6);
    }
  }
  std::vector<TraceEvent> merged;
  merged.reserve(rep.events);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (TraceEvent& ev : files[i].events) {
      ev.proc = i;
      ev.start_ns = static_cast<std::uint64_t>(
          std::max<std::int64_t>(as_i64(ev.start_ns) + rep.offsets_ns[i], 0));
      ev.end_ns = static_cast<std::uint64_t>(
          std::max<std::int64_t>(as_i64(ev.end_ns) + rep.offsets_ns[i], 0));
      merged.push_back(std::move(ev));
    }
    files[i].events.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span < b.span;
            });
  return merged;
}

std::string render_merge_report(const MergeReport& rep) {
  std::ostringstream out;
  out << "merged " << rep.processes << " processes, " << rep.events
      << " events\n";
  for (std::size_t i = 0; i < rep.offsets_ns.size(); ++i) {
    out << "  proc " << i;
    if (i < rep.labels.size() && !rep.labels[i].empty()) {
      out << " (" << rep.labels[i] << ")";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, " offset %+.3f ms\n",
                  static_cast<double>(rep.offsets_ns[i]) / 1e6);
    out << buf;
  }
  out << "recv spans: " << rep.recv_events << " (matched "
      << rep.matched_edges << ", cross-process " << rep.cross_process_edges
      << ", unmatched " << rep.unmatched_recv << ", retransmit "
      << rep.retransmit_edges << ")\n";
  char buf[96];
  std::snprintf(buf, sizeof buf, "causality violations: %zu (max %.3f ms)\n",
                rep.causality_violations, rep.max_violation_ms);
  out << buf;
  return out.str();
}

}  // namespace eppi::obs
