// Merging per-process trace exports into one causally ordered timeline.
//
// Each party process timestamps spans on its own monotonic clock, anchored
// at its own process_start() — the raw exports of an m-party distributed
// run are m files whose clocks disagree by however far apart the processes
// launched. What makes merging possible is the wire context propagation:
// every delivered data frame materializes a `net.recv` span whose parent is
// the *sender's* span and whose `send_ns` attribute is the sender's clock
// at transmission. Each matched (send, recv) pair yields one difference
// constraint: sender_time + offset_sender ≤ recv_time + offset_recv
// (messages cannot arrive before they are sent). The merger solves the
// whole constraint system with Bellman-Ford shortest paths — the classic
// difference-constraint reduction — so whenever any feasible clock
// assignment exists, the merged timeline has ZERO causality violations, and
// asymmetric link delays (which break naive midpoint estimators) cannot
// manufacture phantom violations. Retransmitted frames are excluded from
// the constraint system (their delay says nothing about clock skew) but
// are counted, and an infeasible system — genuinely contradictory
// timestamps — is reported as causality violations with the best-effort
// offsets kept.
//
// The estimated offsets absorb the minimum one-way delay into the skew
// (nothing distinguishes a fast clock from a slow link without symmetric
// round trips), so absolute offsets are accurate only to the fastest
// observed flight per link; orderings, per-phase durations, and the
// critical-path decomposition are unaffected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_json.h"

namespace eppi::obs {

// One process's exported trace. `label` is diagnostic only (file name,
// "party2", ...); process identity in the merged output is the index into
// the input vector, stamped into TraceEvent::proc.
struct TraceFile {
  std::string label;
  std::vector<TraceEvent> events;
};

struct MergeReport {
  std::size_t processes = 0;
  std::size_t events = 0;
  std::size_t recv_events = 0;           // net.recv spans across all inputs
  std::size_t matched_edges = 0;         // recv whose parent span was found
  std::size_t cross_process_edges = 0;   // ... in a *different* input
  std::size_t unmatched_recv = 0;        // parent span not in any input
  std::size_t retransmit_edges = 0;      // rt=1 edges (not used for offsets)
  std::size_t causality_violations = 0;  // adjusted recv < adjusted send
  double max_violation_ms = 0.0;
  // Offset added to input i's clock, after the global shift that moves the
  // earliest merged event to t=0.
  std::vector<std::int64_t> offsets_ns;
  std::vector<std::string> labels;
};

// Merges `files` (consumed) into one timeline: stamps proc indices,
// estimates and applies per-process clock offsets, rewrites net.recv
// send_ns attributes into the merged clock, and returns all events sorted
// by adjusted start time. Details in the header comment above.
std::vector<TraceEvent> merge_traces(std::vector<TraceFile> files,
                                     MergeReport* report);

// Human-readable multi-line summary of a merge.
std::string render_merge_report(const MergeReport& report);

}  // namespace eppi::obs
