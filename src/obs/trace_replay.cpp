#include "obs/trace_replay.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <sstream>
#include <string_view>
#include <unordered_map>

namespace eppi::obs {

namespace {

constexpr std::string_view kPhasePrefix = "phase:";
constexpr std::string_view kRecvName = "net.recv";

// A message flight observed by a net.recv span, in the trace's (merged)
// clock. send may exceed recv on unmerged multi-process traces — those
// flights are ignored by the decomposition.
struct Flight {
  std::uint64_t send_ns = 0;
  std::uint64_t recv_ns = 0;
  bool retransmit = false;
};

// Total length of [lo, hi] ∩ union(flights' [send, recv] intervals), over
// the flights whose recv lands inside [lo, hi]. `flights` must be sorted by
// recv_ns. When `stall_only`, only retransmitted flights contribute.
double clipped_union_ms(const std::vector<Flight>& flights, std::uint64_t lo,
                        std::uint64_t hi, bool stall_only) {
  std::uint64_t covered = 0;
  std::uint64_t cursor = lo;  // everything below is already accounted
  for (const Flight& f : flights) {
    if (f.recv_ns < lo) continue;
    if (f.recv_ns > hi) break;
    if (stall_only && !f.retransmit) continue;
    if (f.send_ns >= f.recv_ns) continue;
    const std::uint64_t s = std::max(f.send_ns, cursor);
    if (f.recv_ns > s) {
      covered += f.recv_ns - s;
      cursor = f.recv_ns;
    }
  }
  return static_cast<double>(covered) / 1e6;
}

}  // namespace

ReplaySummary summarize(const std::vector<TraceEvent>& events,
                        std::size_t parse_errors) {
  ReplaySummary summary;
  summary.events = events.size();
  summary.parse_errors = parse_errors;

  // Index spans for parent resolution and collect per-process flights.
  std::unordered_map<std::uint64_t, const TraceEvent*> by_span;
  by_span.reserve(events.size());
  for (const TraceEvent& ev : events) by_span.emplace(ev.span, &ev);

  std::map<std::uint32_t, std::vector<Flight>> flights_by_proc;
  std::vector<const TraceEvent*> recvs;
  for (const TraceEvent& ev : events) {
    if (ev.name != kRecvName) continue;
    ++summary.recv_events;
    recvs.push_back(&ev);
    const auto parent = by_span.find(ev.parent);
    if (parent != by_span.end() && parent->second->proc != ev.proc) {
      ++summary.cross_process_edges;
    }
    Flight f;
    f.send_ns = ev.attr_u64("send_ns");
    f.recv_ns = ev.start_ns;
    f.retransmit = ev.attr_u64("rt") != 0;
    flights_by_proc[ev.proc].push_back(f);
  }
  for (auto& [proc, flights] : flights_by_proc) {
    std::sort(flights.begin(), flights.end(),
              [](const Flight& a, const Flight& b) {
                return a.recv_ns < b.recv_ns;
              });
  }

  // Preserve first-appearance order (the protocol's phase order) while
  // folding repeat spans of the same phase from other parties/attempts.
  std::map<std::string, std::size_t> index;
  const TraceEvent* last_phase = nullptr;  // latest-finishing phase span
  static const std::vector<Flight> kNoFlights;
  for (const TraceEvent& ev : events) {
    if (ev.name.rfind(kPhasePrefix, 0) != 0) continue;
    const std::string phase = ev.name.substr(kPhasePrefix.size());
    auto [it, inserted] = index.emplace(phase, summary.phases.size());
    if (inserted) {
      summary.phases.emplace_back();
      summary.phases.back().name = phase;
    }
    PhaseRow& row = summary.phases[it->second];
    ++row.spans;
    const double ms = ev.duration_ms();
    row.total_ms += ms;
    if (ms > row.max_ms) row.max_ms = ms;

    const auto fit = flights_by_proc.find(ev.proc);
    const std::vector<Flight>& flights =
        fit != flights_by_proc.end() ? fit->second : kNoFlights;
    const double wait =
        clipped_union_ms(flights, ev.start_ns, ev.end_ns, false);
    row.wait_ms += wait;
    row.stall_ms += clipped_union_ms(flights, ev.start_ns, ev.end_ns, true);
    row.compute_ms += std::max(0.0, ms - wait);

    const std::uint64_t bytes = ev.attr_u64("bytes");
    const std::uint64_t messages = ev.attr_u64("messages");
    const std::uint64_t rounds = ev.attr_u64("rounds");
    row.bytes += bytes;
    row.messages += messages;
    row.rounds += rounds;
    summary.total_bytes += bytes;
    summary.total_messages += messages;
    summary.total_rounds += rounds;
    if (last_phase == nullptr || ev.end_ns > last_phase->end_ns) {
      last_phase = &ev;
    }
  }

  // Cross-process critical path: walk backward from the end of the
  // last-finishing phase span. At each step, the latest message received
  // inside the current window hands the dependency chain to its sender —
  // the tail [recv, window end] was compute, the flight was wire time —
  // until a window with no matched incoming message bottoms out as pure
  // compute. Greedy on the latest recv: any later-arriving dependency
  // would, by construction, have pushed the window further.
  if (last_phase != nullptr) {
    std::vector<CriticalHop> path;
    const TraceEvent* cur = last_phase;
    std::uint64_t window_end = last_phase->end_ns;
    std::unordered_map<std::uint64_t, bool> visited;
    for (int depth = 0; depth < 256; ++depth) {
      if (visited[cur->span]) break;
      visited[cur->span] = true;
      // Latest matched, causally sane recv inside the current window.
      const TraceEvent* best = nullptr;
      const TraceEvent* best_sender = nullptr;
      for (const TraceEvent* r : recvs) {
        if (r->proc != cur->proc) continue;
        if (r->start_ns < cur->start_ns || r->start_ns > window_end) continue;
        const auto parent = by_span.find(r->parent);
        if (parent == by_span.end()) continue;
        if (parent->second->proc == r->proc) continue;
        const std::uint64_t send = r->attr_u64("send_ns");
        if (send == 0 || send > r->start_ns) continue;
        if (best == nullptr || r->start_ns > best->start_ns) {
          best = r;
          best_sender = parent->second;
        }
      }
      if (best == nullptr) {
        CriticalHop hop;
        hop.proc = cur->proc;
        hop.name = cur->name;
        hop.ms = window_end >= cur->start_ns
                     ? static_cast<double>(window_end - cur->start_ns) / 1e6
                     : 0.0;
        path.push_back(std::move(hop));
        break;
      }
      CriticalHop compute;
      compute.proc = cur->proc;
      compute.name = cur->name;
      compute.ms = static_cast<double>(window_end - best->start_ns) / 1e6;
      path.push_back(std::move(compute));

      const std::uint64_t send = best->attr_u64("send_ns");
      CriticalHop wire;
      wire.proc = best_sender->proc;
      wire.name = "wire " + std::to_string(best_sender->proc) + "->" +
                  std::to_string(best->proc);
      wire.ms = static_cast<double>(best->start_ns - send) / 1e6;
      wire.wire = true;
      path.push_back(std::move(wire));

      cur = best_sender;
      window_end = std::min(std::max(send, cur->start_ns), cur->end_ns);
    }
    std::reverse(path.begin(), path.end());
    summary.critical_path = std::move(path);
    for (const CriticalHop& hop : summary.critical_path) {
      summary.critical_path_ms += hop.ms;
    }
  }
  return summary;
}

ReplaySummary replay_trace(std::istream& in) {
  std::vector<TraceEvent> events;
  std::size_t parse_errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceEvent ev;
    if (parse_trace_line(line, &ev)) {
      events.push_back(std::move(ev));
    } else {
      ++parse_errors;
    }
  }
  return summarize(events, parse_errors);
}

std::string render_table(const ReplaySummary& summary) {
  std::ostringstream out;
  char buf[256];
  const bool decomposed = summary.recv_events > 0;
  if (decomposed) {
    std::snprintf(buf, sizeof buf,
                  "%-14s %6s %12s %10s %11s %10s %10s %12s %10s %8s\n",
                  "phase", "spans", "total_ms", "max_ms", "compute_ms",
                  "wait_ms", "stall_ms", "bytes", "messages", "rounds");
  } else {
    std::snprintf(buf, sizeof buf, "%-14s %6s %12s %10s %12s %10s %8s\n",
                  "phase", "spans", "total_ms", "max_ms", "bytes", "messages",
                  "rounds");
  }
  out << buf;
  for (const PhaseRow& row : summary.phases) {
    if (decomposed) {
      std::snprintf(
          buf, sizeof buf,
          "%-14s %6llu %12.3f %10.3f %11.3f %10.3f %10.3f %12llu %10llu "
          "%8llu\n",
          row.name.c_str(), static_cast<unsigned long long>(row.spans),
          row.total_ms, row.max_ms, row.compute_ms, row.wait_ms, row.stall_ms,
          static_cast<unsigned long long>(row.bytes),
          static_cast<unsigned long long>(row.messages),
          static_cast<unsigned long long>(row.rounds));
    } else {
      std::snprintf(buf, sizeof buf,
                    "%-14s %6llu %12.3f %10.3f %12llu %10llu %8llu\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.spans), row.total_ms,
                    row.max_ms, static_cast<unsigned long long>(row.bytes),
                    static_cast<unsigned long long>(row.messages),
                    static_cast<unsigned long long>(row.rounds));
    }
    out << buf;
  }
  if (decomposed) {
    std::snprintf(buf, sizeof buf,
                  "%-14s %6s %12s %10s %11s %10s %10s %12llu %10llu %8llu\n",
                  "total", "", "", "", "", "", "",
                  static_cast<unsigned long long>(summary.total_bytes),
                  static_cast<unsigned long long>(summary.total_messages),
                  static_cast<unsigned long long>(summary.total_rounds));
  } else {
    std::snprintf(buf, sizeof buf, "%-14s %6s %12s %10s %12llu %10llu %8llu\n",
                  "total", "", "", "",
                  static_cast<unsigned long long>(summary.total_bytes),
                  static_cast<unsigned long long>(summary.total_messages),
                  static_cast<unsigned long long>(summary.total_rounds));
  }
  out << buf;
  std::snprintf(buf, sizeof buf,
                "(%zu events, %zu parse errors, %zu recv spans, %zu "
                "cross-process edges)\n",
                summary.events, summary.parse_errors, summary.recv_events,
                summary.cross_process_edges);
  out << buf;
  if (!summary.critical_path.empty() && decomposed) {
    std::snprintf(buf, sizeof buf, "critical path: %.3f ms\n",
                  summary.critical_path_ms);
    out << buf;
    for (const CriticalHop& hop : summary.critical_path) {
      std::snprintf(buf, sizeof buf, "  [%s%u] %-22s %10.3f ms\n",
                    hop.wire ? "wire from proc " : "proc ", hop.proc,
                    hop.name.c_str(), hop.ms);
      out << buf;
    }
  }
  return out.str();
}

}  // namespace eppi::obs
