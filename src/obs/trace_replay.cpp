#include "obs/trace_replay.h"

#include <cctype>
#include <cstdio>
#include <istream>
#include <map>
#include <optional>
#include <sstream>
#include <string_view>

namespace eppi::obs {

namespace {

// Minimal recursive-descent reader for the flat shape to_jsonl() emits:
// one object per line, scalar values, one level of nesting for "attrs".
// Anything outside that shape is a parse error for the whole line.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  struct Value {
    enum class Type { kNumber, kString, kBool, kNull } type = Type::kNull;
    double number = 0.0;
    std::uint64_t uinteger = 0;  // valid when the number had no '.', 'e', '-'
    bool is_uinteger = false;
    std::string string;
    bool boolean = false;
  };

  // Parses {"key":value,...}; calls on_scalar(path, value) for scalars,
  // where path is "key" at top level and "attrs.key" inside attrs.
  template <typename Fn>
  bool parse_object(Fn&& on_scalar, std::string_view prefix = "") {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (peek() == '{') {
        // One nesting level only; deeper objects fail the line.
        if (!prefix.empty()) return false;
        if (!parse_object(on_scalar, key)) return false;
      } else {
        Value v;
        if (!parse_scalar(&v)) return false;
        std::string path = prefix.empty()
                               ? key
                               : std::string(prefix) + "." + key;
        on_scalar(path, v);
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      return consume('}');
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char esc = s_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'u': {
            // Exporter only emits \u00xx for control bytes.
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            if (std::sscanf(s_.substr(pos_, 4).data(), "%4x", &code) != 1) {
              return false;
            }
            pos_ += 4;
            *out += static_cast<char>(code & 0xff);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool parse_scalar(Value* v) {
    char c = peek();
    if (c == '"') {
      v->type = Value::Type::kString;
      return parse_string(&v->string);
    }
    if (c == 't' || c == 'f') {
      v->type = Value::Type::kBool;
      std::string_view want = c == 't' ? "true" : "false";
      if (s_.substr(pos_, want.size()) != want) return false;
      pos_ += want.size();
      v->boolean = c == 't';
      return true;
    }
    if (c == 'n') {
      v->type = Value::Type::kNull;
      if (s_.substr(pos_, 4) != "null") return false;
      pos_ += 4;
      return true;
    }
    // Number: capture the raw token, then decide integer vs double.
    const std::size_t start = pos_;
    bool plain_unsigned = true;
    while (pos_ < s_.size()) {
      c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E') {
        plain_unsigned = false;
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ == start) return false;
    const std::string token(s_.substr(start, pos_ - start));
    v->type = Value::Type::kNumber;
    try {
      v->number = std::stod(token);
      if (plain_unsigned) {
        v->uinteger = std::stoull(token);
        v->is_uinteger = true;
      }
    } catch (...) {
      return false;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

constexpr std::string_view kPhasePrefix = "phase:";

}  // namespace

ReplaySummary replay_trace(std::istream& in) {
  ReplaySummary summary;
  // Preserve first-appearance order (the protocol's phase order) while
  // folding repeat spans of the same phase from other parties/attempts.
  std::map<std::string, std::size_t> index;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;

    std::string name;
    std::uint64_t start_ns = 0, end_ns = 0;
    std::uint64_t bytes = 0, messages = 0, rounds = 0;
    LineParser parser(line);
    const bool ok = parser.parse_object([&](const std::string& path,
                                            const LineParser::Value& v) {
      if (path == "name" && v.type == LineParser::Value::Type::kString) {
        name = v.string;
      } else if (v.is_uinteger) {
        if (path == "start_ns") start_ns = v.uinteger;
        else if (path == "end_ns") end_ns = v.uinteger;
        else if (path == "attrs.bytes") bytes = v.uinteger;
        else if (path == "attrs.messages") messages = v.uinteger;
        else if (path == "attrs.rounds") rounds = v.uinteger;
      }
    });
    if (!ok || !parser.at_end()) {
      ++summary.parse_errors;
      continue;
    }
    ++summary.events;

    if (name.rfind(kPhasePrefix, 0) != 0) continue;
    const std::string phase = name.substr(kPhasePrefix.size());
    auto [it, inserted] = index.emplace(phase, summary.phases.size());
    if (inserted) {
      summary.phases.emplace_back();
      summary.phases.back().name = phase;
    }
    PhaseRow& row = summary.phases[it->second];
    ++row.spans;
    const double ms =
        end_ns >= start_ns ? static_cast<double>(end_ns - start_ns) / 1e6
                           : 0.0;
    row.total_ms += ms;
    if (ms > row.max_ms) row.max_ms = ms;
    row.bytes += bytes;
    row.messages += messages;
    row.rounds += rounds;
    summary.total_bytes += bytes;
    summary.total_messages += messages;
    summary.total_rounds += rounds;
  }
  return summary;
}

std::string render_table(const ReplaySummary& summary) {
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-14s %6s %12s %10s %12s %10s %8s\n",
                "phase", "spans", "total_ms", "max_ms", "bytes", "messages",
                "rounds");
  out << buf;
  for (const PhaseRow& row : summary.phases) {
    std::snprintf(buf, sizeof buf,
                  "%-14s %6llu %12.3f %10.3f %12llu %10llu %8llu\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.spans), row.total_ms,
                  row.max_ms, static_cast<unsigned long long>(row.bytes),
                  static_cast<unsigned long long>(row.messages),
                  static_cast<unsigned long long>(row.rounds));
    out << buf;
  }
  std::snprintf(buf, sizeof buf, "%-14s %6s %12s %10s %12llu %10llu %8llu\n",
                "total", "", "", "",
                static_cast<unsigned long long>(summary.total_bytes),
                static_cast<unsigned long long>(summary.total_messages),
                static_cast<unsigned long long>(summary.total_rounds));
  out << buf;
  std::snprintf(buf, sizeof buf, "(%zu events, %zu parse errors)\n",
                summary.events, summary.parse_errors);
  out << buf;
  return out.str();
}

}  // namespace eppi::obs
