// Replay of exported JSONL traces into the Fig. 6 per-phase breakdown.
//
// The paper's protocol-cost evaluation (Fig. 6) decomposes a construction
// run into phases — SecSumShare, the CountBelow and MixAndReveal MPC
// stages, broadcast — and attributes time and communication to each.
// Instrumented runs emit exactly that structure: every phase opens a span
// named "phase:<name>" carrying that party's CostMeter delta (bytes,
// messages, rounds) as attributes. replay_trace() parses the JSONL export
// (the to_jsonl() format; this is a targeted reader for our own exporter,
// not a general JSON library) and folds those spans into one row per phase.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace eppi::obs {

struct PhaseRow {
  std::string name;            // phase name with the "phase:" prefix dropped
  std::uint64_t spans = 0;     // phase spans folded in (≈ parties × attempts)
  double total_ms = 0.0;       // summed span durations across parties
  double max_ms = 0.0;         // slowest single span (≈ phase wall time)
  std::uint64_t bytes = 0;     // summed "bytes" attributes
  std::uint64_t messages = 0;  // summed "messages" attributes
  std::uint64_t rounds = 0;    // summed "rounds" attributes
};

struct ReplaySummary {
  std::vector<PhaseRow> phases;  // in order of first appearance
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_rounds = 0;
  std::size_t events = 0;        // events parsed, phase spans or not
  std::size_t parse_errors = 0;  // lines that did not parse (counted, kept)
};

ReplaySummary replay_trace(std::istream& in);

// Fixed-width text table, one row per phase plus a totals row.
std::string render_table(const ReplaySummary& summary);

}  // namespace eppi::obs
