// Replay of exported JSONL traces into the Fig. 6 per-phase breakdown.
//
// The paper's protocol-cost evaluation (Fig. 6) decomposes a construction
// run into phases — SecSumShare, the CountBelow and MixAndReveal MPC
// stages, broadcast — and attributes time and communication to each.
// Instrumented runs emit exactly that structure: every phase opens a span
// named "phase:<name>" carrying that party's CostMeter delta (bytes,
// messages, rounds) as attributes. replay_trace() parses the JSONL export
// (obs/trace_json.h) and folds those spans into one row per phase.
//
// Merged multi-process traces (obs/trace_merge.h) additionally carry
// per-message `net.recv` spans with cross-process parent links and in-clock
// send timestamps. For those, replay splits each phase's time into compute
// vs. network wait — the union of in-flight intervals of the messages the
// phase received — with the subset spent on retransmitted frames broken out
// as stall, and walks the cross-process critical path: the chain of
// compute segments and wire flights that ends at the last phase span to
// finish, i.e. the lower bound no amount of extra parallelism removes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_json.h"

namespace eppi::obs {

struct PhaseRow {
  std::string name;            // phase name with the "phase:" prefix dropped
  std::uint64_t spans = 0;     // phase spans folded in (≈ parties × attempts)
  double total_ms = 0.0;       // summed span durations across parties
  double max_ms = 0.0;         // slowest single span (≈ phase wall time)
  // Compute/wait decomposition, zero unless the trace carries net.recv
  // spans (socket runtime with trace export, usually post-merge):
  double wait_ms = 0.0;        // union of in-phase message flight intervals
  double stall_ms = 0.0;       // wait attributable to retransmitted frames
  double compute_ms = 0.0;     // total_ms − per-span wait (clamped at 0)
  std::uint64_t bytes = 0;     // summed "bytes" attributes
  std::uint64_t messages = 0;  // summed "messages" attributes
  std::uint64_t rounds = 0;    // summed "rounds" attributes
};

// One step of the cross-process critical path, ordered start → finish.
// Compute hops carry the span name; wire hops are named "wire a->b" and
// cover the matched flight between the two processes.
struct CriticalHop {
  std::uint32_t proc = 0;  // process executing the hop (sender, for wires)
  std::string name;
  double ms = 0.0;
  bool wire = false;
};

struct ReplaySummary {
  std::vector<PhaseRow> phases;  // in order of first appearance
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_rounds = 0;
  std::size_t events = 0;        // events parsed, phase spans or not
  std::size_t parse_errors = 0;  // lines that did not parse (counted, kept)
  std::size_t recv_events = 0;   // net.recv spans seen
  std::size_t cross_process_edges = 0;  // recv parented in another process
  std::vector<CriticalHop> critical_path;  // empty without phase spans
  double critical_path_ms = 0.0;
};

// Folds already-parsed events; `parse_errors` is carried into the summary.
ReplaySummary summarize(const std::vector<TraceEvent>& events,
                        std::size_t parse_errors = 0);

ReplaySummary replay_trace(std::istream& in);

// Fixed-width text table, one row per phase plus a totals row; merged
// traces append the wait/stall columns' critical-path breakdown.
std::string render_table(const ReplaySummary& summary);

}  // namespace eppi::obs
