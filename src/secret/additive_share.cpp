#include "secret/additive_share.h"

#include "common/error.h"

namespace eppi::secret {

std::vector<SecretU64> split_additive(std::uint64_t value, std::size_t c,
                                      const ModRing& ring, eppi::Rng& rng) {
  require(c >= 1, "split_additive: need at least one share");
  std::vector<SecretU64> shares(c);
  SecretU64 partial;
  for (std::size_t k = 0; k + 1 < c; ++k) {
    shares[k] = SecretU64(rng.next_below(ring.q()));
    partial = partial.add(shares[k], ring);
  }
  shares[c - 1] = SecretU64(value).sub(partial, ring);
  return shares;
}

std::uint64_t reconstruct_additive(std::span<const SecretU64> shares,
                                   const ModRing& ring) {
  require(!shares.empty(), "reconstruct_additive: no shares");
  SecretU64 total;
  for (const SecretU64& s : shares) total = total.add(s, ring);
  // All c shares combined: this is the opening the scheme is built for.
  return total.reveal();
}

std::vector<SecretU64> add_share_vectors(std::span<const SecretU64> a,
                                         std::span<const SecretU64> b,
                                         const ModRing& ring) {
  require(a.size() == b.size(), "add_share_vectors: size mismatch");
  std::vector<SecretU64> out(a.size());
  for (std::size_t k = 0; k < a.size(); ++k) out[k] = a[k].add(b[k], ring);
  return out;
}

}  // namespace eppi::secret
