#include "secret/additive_share.h"

#include "common/error.h"

namespace eppi::secret {

std::vector<std::uint64_t> split_additive(std::uint64_t value, std::size_t c,
                                          const ModRing& ring,
                                          eppi::Rng& rng) {
  require(c >= 1, "split_additive: need at least one share");
  std::vector<std::uint64_t> shares(c);
  std::uint64_t partial = 0;
  for (std::size_t k = 0; k + 1 < c; ++k) {
    shares[k] = rng.next_below(ring.q());
    partial = ring.add(partial, shares[k]);
  }
  shares[c - 1] = ring.sub(value, partial);
  return shares;
}

std::uint64_t reconstruct_additive(std::span<const std::uint64_t> shares,
                                   const ModRing& ring) {
  require(!shares.empty(), "reconstruct_additive: no shares");
  std::uint64_t total = 0;
  for (const std::uint64_t s : shares) total = ring.add(total, s);
  return total;
}

std::vector<std::uint64_t> add_share_vectors(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    const ModRing& ring) {
  require(a.size() == b.size(), "add_share_vectors: size mismatch");
  std::vector<std::uint64_t> out(a.size());
  for (std::size_t k = 0; k < a.size(); ++k) out[k] = ring.add(a[k], b[k]);
  return out;
}

}  // namespace eppi::secret
