// (c, c) additive secret sharing over Z_q.
//
// A value v is split into c shares, the first c-1 uniform in Z_q and the last
// chosen so the shares sum to v mod q. This is the sharing scheme underlying
// SecSumShare (paper §IV-B.1 step 1 and Theorem 4.1): recoverable from all c
// shares, and any c-1 shares reveal nothing (the conditional distribution of
// v given fewer than c shares equals the prior — verified empirically in
// tests/secret/additive_share_test.cpp).
//
// Shares are tainted SecretU64 values (secret/secret.h): they cannot be
// logged, compared, or implicitly converted; reconstruction is the audited
// opening.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "secret/mod_ring.h"
#include "secret/secret.h"

namespace eppi::secret {

// Splits `value` (reduced mod q) into `c` shares. Throws ConfigError if c==0.
std::vector<SecretU64> split_additive(std::uint64_t value, std::size_t c,
                                      const ModRing& ring, eppi::Rng& rng);

// Reconstructs the secret from all shares (a deliberate protocol opening).
std::uint64_t reconstruct_additive(std::span<const SecretU64> shares,
                                   const ModRing& ring);

// Pointwise sum of two share vectors (the additive homomorphism that makes
// the secure-sum protocol work: sharing(a) + sharing(b) = sharing(a+b)).
std::vector<SecretU64> add_share_vectors(std::span<const SecretU64> a,
                                         std::span<const SecretU64> b,
                                         const ModRing& ring);

}  // namespace eppi::secret
