#include "secret/mod_ring.h"

#include <bit>

#include "common/error.h"

namespace eppi::secret {

ModRing::ModRing(std::uint64_t q) : q_(q) {
  require(q >= 2, "ModRing: modulus must be at least 2");
}

bool ModRing::is_power_of_two() const noexcept {
  return std::has_single_bit(q_);
}

std::uint64_t ModRing::add(std::uint64_t a, std::uint64_t b) const noexcept {
  // a, b are residues < q <= 2^63 in practice; guard against wrap anyway via
  // 128-bit intermediate.
  const auto sum = static_cast<unsigned __int128>(a) + b;
  return static_cast<std::uint64_t>(sum % q_);
}

std::uint64_t ModRing::sub(std::uint64_t a, std::uint64_t b) const noexcept {
  return add(a % q_, neg(b));
}

std::uint64_t ModRing::neg(std::uint64_t a) const noexcept {
  const std::uint64_t r = a % q_;
  return r == 0 ? 0 : q_ - r;
}

std::uint64_t ModRing::mul(std::uint64_t a, std::uint64_t b) const noexcept {
  const auto prod = static_cast<unsigned __int128>(a % q_) * (b % q_);
  return static_cast<std::uint64_t>(prod % q_);
}

unsigned ModRing::bit_width() const noexcept {
  return static_cast<unsigned>(std::bit_width(q_ - 1));
}

ModRing ModRing::power_of_two_for(std::uint64_t max_sum) {
  // Once q reaches 2^63, q <<= 1 would shift into (and past) the sign bit of
  // the notional signed value and wrap to 0, looping forever. There is no
  // representable power of two above such a max_sum, so reject it.
  constexpr std::uint64_t kMaxSupported = (std::uint64_t{1} << 63) - 1;
  require(max_sum <= kMaxSupported,
          "ModRing::power_of_two_for: max_sum too large for a uint64 ring");
  std::uint64_t q = 2;
  while (q <= max_sum) q <<= 1;
  return ModRing(q);
}

}  // namespace eppi::secret
