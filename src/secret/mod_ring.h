// Arithmetic in the ring Z_q.
//
// SecSumShare (paper §IV-B.1) works over Z_q for any q larger than the
// maximum possible sum (the paper's walkthrough uses q = 5 for 5 providers).
// The distributed constructor defaults to q = 2^k because a power-of-two
// modulus makes the downstream CountBelow circuit a carry-free mod-2^k adder
// (an optimization ablated in bench_ablation_mpc), but the sharing layer is
// correct for arbitrary q and the paper's q = 5 example is reproduced in
// tests.
#pragma once

#include <cstdint>

namespace eppi::secret {

class ModRing {
 public:
  // Throws ConfigError if q < 2.
  explicit ModRing(std::uint64_t q);

  std::uint64_t q() const noexcept { return q_; }
  bool is_power_of_two() const noexcept;

  std::uint64_t reduce(std::uint64_t x) const noexcept { return x % q_; }
  std::uint64_t add(std::uint64_t a, std::uint64_t b) const noexcept;
  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const noexcept;
  std::uint64_t neg(std::uint64_t a) const noexcept;

  // (a * b) mod q without overflow: the product is formed in 128 bits before
  // reduction. Centralizes what used to be ad-hoc __int128 lambdas in the MPC
  // layer (and keeps the narrowing in one audited place).
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept;

  // Number of bits needed to represent any residue; equals k when q = 2^k.
  unsigned bit_width() const noexcept;

  // Smallest power-of-two ring that can hold sums of up to `max_sum`.
  // Throws ConfigError if max_sum >= 2^63 (the next power of two would
  // overflow uint64; the old implementation looped forever on such inputs).
  static ModRing power_of_two_for(std::uint64_t max_sum);

 private:
  std::uint64_t q_;
};

}  // namespace eppi::secret
