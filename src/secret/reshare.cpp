#include "secret/reshare.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"

namespace eppi::secret {

namespace {
constexpr std::uint32_t kTagReshare = eppi::net::kUserBase + 30;
}  // namespace

std::vector<SecretU64> run_reshare_party(
    eppi::net::PartyContext& ctx,
    const std::vector<eppi::net::PartyId>& parties,
    const std::vector<SecretU64>& my_shares, const ModRing& ring,
    std::uint64_t seq_base) {
  const std::size_t c = parties.size();
  require(c >= 2, "reshare: need at least two coordinators");
  const auto self = std::find(parties.begin(), parties.end(), ctx.id());
  require(self != parties.end(), "reshare: not a session party");
  const auto me = static_cast<std::size_t>(self - parties.begin());
  const std::size_t n = my_shares.size();
  require(n >= 1, "reshare: empty share vector");

  std::vector<SecretU64> updated = my_shares;

  // Draw and send a mask vector to every peer; subtract what I send, add
  // what I receive — a fresh sharing of zero overall. Masks carry the
  // Secret taint (each is the complement of a share adjustment) and leave
  // it only on the wire toward the peer that is supposed to hold it.
  for (std::size_t p = 0; p < c; ++p) {
    if (p == me) continue;
    std::vector<SecretU64> mask(n);
    for (auto& v : mask) v = SecretU64(ctx.rng().next_below(ring.q()));
    for (std::size_t j = 0; j < n; ++j) {
      updated[j] = updated[j].sub(mask[j], ring);
    }
    eppi::BinaryWriter w;
    w.write_u64_vector(wire_shares(mask));
    ctx.send(parties[p], kTagReshare, seq_base, w.take());
  }
  if (me == 0) ctx.mark_round();
  for (std::size_t p = 0; p < c; ++p) {
    if (p == me) continue;
    const auto payload = ctx.recv(parties[p], kTagReshare, seq_base);
    eppi::BinaryReader r(payload);
    const auto mask = r.read_u64_vector();
    if (mask.size() != n) {
      throw eppi::ProtocolError("reshare: mask vector size mismatch");
    }
    for (std::size_t j = 0; j < n; ++j) {
      updated[j] = updated[j].add(SecretU64(mask[j]), ring);
    }
  }
  return updated;
}

}  // namespace eppi::secret
