// Proactive re-randomization of coordinator share vectors.
//
// SecSumShare's (c,c)-secrecy holds against coalitions formed at one point
// in time; a *mobile* adversary that compromises different coordinators in
// different epochs could eventually collect all c views of the same sharing
// and reconstruct every frequency. The classic defense is proactive
// resharing: between epochs the coordinators re-randomize their shares by
// jointly adding a fresh sharing of zero —
//
//   coordinator i draws masks r_{i,k} for every peer k, sends r_{i,k} to k,
//   and updates  s'(i,·) = s(i,·) + Σ_k r_{k,i} − Σ_k r_{i,k}  (mod q).
//
// The per-identity sums are unchanged (each mask enters once positively and
// once negatively), but the new share vectors are independent of the old
// ones, so views stolen in different epochs do not combine. One round,
// c·(c−1) messages.
#pragma once

#include <cstdint>
#include <vector>

#include "net/cluster.h"
#include "secret/mod_ring.h"
#include "secret/secret.h"

namespace eppi::secret {

// Runs the resharing body for one coordinator. `parties` are the cluster
// ids of all coordinators (must include the caller); `my_shares` is this
// coordinator's current vector. Returns the re-randomized vector.
std::vector<SecretU64> run_reshare_party(
    eppi::net::PartyContext& ctx,
    const std::vector<eppi::net::PartyId>& parties,
    const std::vector<SecretU64>& my_shares, const ModRing& ring,
    std::uint64_t seq_base = 0);

}  // namespace eppi::secret
