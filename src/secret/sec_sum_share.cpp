#include "secret/sec_sum_share.h"

#include "common/error.h"
#include "common/serialize.h"
#include "secret/additive_share.h"

namespace eppi::secret {

namespace {

std::vector<std::uint8_t> encode_vector(
    std::span<const std::uint64_t> values) {
  eppi::BinaryWriter writer;
  writer.write_u64_vector(values);
  return writer.take();
}

std::vector<std::uint64_t> decode_vector(std::span<const std::uint8_t> bytes,
                                         std::size_t expected) {
  eppi::BinaryReader reader(bytes);
  auto values = reader.read_u64_vector();
  if (values.size() != expected) {
    throw eppi::ProtocolError("SecSumShare: share vector length mismatch");
  }
  return values;
}

}  // namespace

ModRing resolve_ring(const SecSumShareParams& params, std::size_t m) {
  if (params.q != 0) return ModRing(params.q);
  return ModRing::power_of_two_for(m);
}

std::vector<std::uint64_t> plain_frequency_sums(
    std::span<const std::vector<std::uint8_t>> provider_inputs,
    std::size_t n) {
  std::vector<std::uint64_t> sums(n, 0);
  for (const auto& row : provider_inputs) {
    require(row.size() == n, "plain_frequency_sums: row length mismatch");
    for (std::size_t j = 0; j < n; ++j) sums[j] += row[j];
  }
  return sums;
}

std::optional<std::vector<std::uint64_t>> run_sec_sum_share_party(
    eppi::net::PartyContext& ctx, const SecSumShareParams& params,
    std::span<const std::uint8_t> inputs) {
  using eppi::net::MessageTag;
  using eppi::net::PartyId;

  const std::size_t m = ctx.n_parties();
  const std::size_t c = params.c;
  const std::size_t n = params.n;
  require(c >= 2, "SecSumShare: c must be at least 2");
  require(c <= m, "SecSumShare: c cannot exceed the number of providers");
  require(inputs.size() == n, "SecSumShare: input vector length mismatch");

  const ModRing ring = resolve_ring(params, m);
  const PartyId me = ctx.id();

  // Step 1: split every input bit into c shares. shares_by_hop[k][j] is the
  // share of identity j destined for the k-th successor.
  std::vector<std::vector<std::uint64_t>> shares_by_hop(
      c, std::vector<std::uint64_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    require(inputs[j] <= 1, "SecSumShare: inputs must be Boolean");
    const auto shares = split_additive(inputs[j], c, ring, ctx.rng());
    for (std::size_t k = 0; k < c; ++k) shares_by_hop[k][j] = shares[k];
  }

  // Step 2: share k -> k-th ring successor (k = 1..c-1); share 0 stays local.
  for (std::size_t k = 1; k < c; ++k) {
    const auto to = static_cast<PartyId>((me + k) % m);
    ctx.send(to, MessageTag::kShareDistribute, k, encode_vector(shares_by_hop[k]));
  }
  if (me == 0) ctx.mark_round();

  // Step 3: super-share = own share 0 + the k-th share of each k-th ring
  // predecessor.
  std::vector<std::uint64_t> super_share = std::move(shares_by_hop[0]);
  for (std::size_t k = 1; k < c; ++k) {
    const auto from = static_cast<PartyId>((me + m - k) % m);
    const auto payload = ctx.recv(from, MessageTag::kShareDistribute, k);
    const auto incoming = decode_vector(payload, n);
    for (std::size_t j = 0; j < n; ++j) {
      super_share[j] = ring.add(super_share[j], incoming[j]);
    }
  }

  // Step 4: super-share -> coordinator p_{i mod c}; coordinators aggregate.
  const auto coordinator = static_cast<PartyId>(me % c);
  ctx.send(coordinator, MessageTag::kSuperShare, 0, encode_vector(super_share));
  if (me == 0) ctx.mark_round();

  if (me >= c) return std::nullopt;

  std::vector<std::uint64_t> aggregated(n, 0);
  for (std::size_t i = me; i < m; i += c) {
    const auto payload =
        ctx.recv(static_cast<PartyId>(i), MessageTag::kSuperShare, 0);
    const auto incoming = decode_vector(payload, n);
    for (std::size_t j = 0; j < n; ++j) {
      aggregated[j] = ring.add(aggregated[j], incoming[j]);
    }
  }
  return aggregated;
}

}  // namespace eppi::secret
