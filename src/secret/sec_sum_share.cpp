#include "secret/sec_sum_share.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/serialize.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "secret/additive_share.h"

namespace eppi::secret {

namespace {

// Wire path: shares leave the taint only to be serialized toward the party
// that is supposed to hold them, and are re-tainted on arrival.
std::vector<std::uint8_t> encode_vector(std::span<const SecretU64> values) {
  eppi::BinaryWriter writer;
  writer.write_u64_vector(wire_shares(values));
  return writer.take();
}

std::vector<SecretU64> decode_vector(std::span<const std::uint8_t> bytes,
                                     std::size_t expected) {
  eppi::BinaryReader reader(bytes);
  const auto values = reader.read_u64_vector();
  if (values.size() != expected) {
    throw eppi::ProtocolError("SecSumShare: share vector length mismatch");
  }
  return wrap_shares(values);
}

}  // namespace

ModRing resolve_ring(const SecSumShareParams& params, std::size_t m) {
  if (params.q != 0) return ModRing(params.q);
  return ModRing::power_of_two_for(m);
}

std::vector<std::uint64_t> plain_frequency_sums(
    std::span<const std::vector<std::uint8_t>> provider_inputs,
    std::size_t n) {
  std::vector<std::uint64_t> sums(n, 0);
  for (const auto& row : provider_inputs) {
    require(row.size() == n, "plain_frequency_sums: row length mismatch");
    for (std::size_t j = 0; j < n; ++j) sums[j] += row[j];
  }
  return sums;
}

std::optional<std::vector<SecretU64>> run_sec_sum_share_party(
    eppi::net::PartyContext& ctx, const SecSumShareParams& params,
    std::span<const std::uint8_t> inputs) {
  using eppi::net::MessageTag;
  using eppi::net::PartyId;

  const std::size_t m = ctx.n_parties();
  const std::size_t c = params.c;
  const std::size_t n = params.n;
  require(c >= 2, "SecSumShare: c must be at least 2");
  require(c <= m, "SecSumShare: c cannot exceed the number of providers");
  require(inputs.size() == n, "SecSumShare: input vector length mismatch");

  const ModRing ring = resolve_ring(params, m);
  const PartyId me = ctx.id();

  // Step 1: split every input bit into c shares. shares_by_hop[k][j] is the
  // share of identity j destined for the k-th successor.
  std::vector<std::vector<SecretU64>> shares_by_hop(
      c, std::vector<SecretU64>(n));
  for (std::size_t j = 0; j < n; ++j) {
    require(inputs[j] <= 1, "SecSumShare: inputs must be Boolean");
    const auto shares = split_additive(inputs[j], c, ring, ctx.rng());
    for (std::size_t k = 0; k < c; ++k) shares_by_hop[k][j] = shares[k];
  }

  std::vector<SecretU64> super_share;
  {
    // One round trip: shares out to ring successors, predecessors' shares in.
    eppi::obs::Span rt("secsum.distribute");
    rt.attr("party", static_cast<std::uint64_t>(me));

    // Step 2: share k -> k-th ring successor (k = 1..c-1); share 0 stays
    // local.
    for (std::size_t k = 1; k < c; ++k) {
      const auto to = static_cast<PartyId>((me + k) % m);
      ctx.send(to, MessageTag::kShareDistribute, k,
               encode_vector(shares_by_hop[k]));
    }
    if (me == 0) ctx.mark_round();

    // Step 3: super-share = own share 0 + the k-th share of each k-th ring
    // predecessor.
    super_share = std::move(shares_by_hop[0]);
    for (std::size_t k = 1; k < c; ++k) {
      const auto from = static_cast<PartyId>((me + m - k) % m);
      const auto payload = ctx.recv(from, MessageTag::kShareDistribute, k);
      const auto incoming = decode_vector(payload, n);
      for (std::size_t j = 0; j < n; ++j) {
        super_share[j] = super_share[j].add(incoming[j], ring);
      }
    }
  }

  // Second round trip: super-shares converge on the coordinators.
  eppi::obs::Span rt("secsum.aggregate");
  rt.attr("party", static_cast<std::uint64_t>(me));

  // Step 4: super-share -> coordinator p_{i mod c}; coordinators aggregate.
  const auto coordinator = static_cast<PartyId>(me % c);
  ctx.send(coordinator, MessageTag::kSuperShare, 0, encode_vector(super_share));
  if (me == 0) ctx.mark_round();

  if (me >= c) return std::nullopt;

  std::vector<SecretU64> aggregated(n);
  for (std::size_t i = me; i < m; i += c) {
    const auto payload =
        ctx.recv(static_cast<PartyId>(i), MessageTag::kSuperShare, 0);
    const auto incoming = decode_vector(payload, n);
    for (std::size_t j = 0; j < n; ++j) {
      aggregated[j] = aggregated[j].add(incoming[j], ring);
    }
  }
  return aggregated;
}

// --- Dropout-tolerant variant -------------------------------------------

namespace {

using eppi::net::MessageTag;
using eppi::net::PartyId;

// Each restart attempt gets a disjoint seq range so stale frames from an
// abandoned attempt can never satisfy a later attempt's selective receive.
constexpr std::uint64_t kAttemptStride = std::uint64_t{1} << 20;

enum class ViewDecision : std::uint8_t { kCommit = 0, kRestart = 1, kAbort = 2 };

std::vector<std::uint8_t> encode_ids(const std::set<PartyId>& ids) {
  eppi::BinaryWriter w;
  w.write_varint(ids.size());
  for (const PartyId id : ids) w.write_varint(id);
  return w.take();
}

std::set<PartyId> decode_ids(eppi::BinaryReader& r) {
  const std::uint64_t count = r.read_varint();
  std::set<PartyId> ids;
  for (std::uint64_t i = 0; i < count; ++i) {
    ids.insert(static_cast<PartyId>(r.read_varint()));
  }
  return ids;
}

struct ViewMessage {
  ViewDecision decision = ViewDecision::kCommit;
  std::vector<PartyId> alive;
  PartyId blamed = eppi::PartyFailure::kUnknownParty;
};

std::vector<std::uint8_t> encode_view(const ViewMessage& view) {
  eppi::BinaryWriter w;
  w.write_u8(static_cast<std::uint8_t>(view.decision));
  w.write_varint(view.blamed);
  w.write_varint(view.alive.size());
  for (const PartyId id : view.alive) w.write_varint(id);
  return w.take();
}

ViewMessage decode_view(std::span<const std::uint8_t> payload) {
  eppi::BinaryReader r(payload);
  ViewMessage view;
  const std::uint8_t code = r.read_u8();
  if (code > static_cast<std::uint8_t>(ViewDecision::kAbort)) {
    throw eppi::ProtocolError("SecSumShare: malformed view decision");
  }
  view.decision = static_cast<ViewDecision>(code);
  view.blamed = static_cast<PartyId>(r.read_varint());
  const std::uint64_t count = r.read_varint();
  view.alive.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    view.alive.push_back(static_cast<PartyId>(r.read_varint()));
  }
  return view;
}

}  // namespace

SecSumShareOutcome run_sec_sum_share_party_ft(
    eppi::net::PartyContext& ctx, const SecSumShareParams& params,
    std::span<const std::uint8_t> inputs,
    const SecSumShareFtOptions& options) {
  const std::size_t m0 = ctx.n_parties();
  const std::size_t c = params.c;
  const std::size_t n = params.n;
  require(c >= 2, "SecSumShare: c must be at least 2");
  require(c <= m0, "SecSumShare: c cannot exceed the number of providers");
  require(inputs.size() == n, "SecSumShare: input vector length mismatch");
  require(options.max_attempts >= 1, "SecSumShare: need at least one attempt");
  const PartyId me = ctx.id();

  // Derived waits: the control plane must not produce false suspicions just
  // because a peer is itself sitting out data-plane timeouts. A survivor can
  // lag by up to c stage timeouts (steps 3-4), and party 0 collects reports
  // sequentially, so the view broadcast can trail the fastest party by the
  // whole collection budget.
  const auto report_timeout = options.stage_timeout * (c + 2);
  const auto view_timeout = options.stage_timeout * (m0 + c + 4);

  std::vector<PartyId> alive(m0);
  for (std::size_t i = 0; i < m0; ++i) alive[i] = static_cast<PartyId>(i);

  // Protocol-level outcomes count once (party 0 decides restart/abort);
  // attempt spans below are per party so traces show every restart's cost.
  auto& restarts = eppi::obs::Registry::global().counter(
      "eppi_secsum_restarts_total", {},
      "SecSumShare view-change restarts decided by party 0");
  auto& aborts = eppi::obs::Registry::global().counter(
      "eppi_secsum_aborts_total", {},
      "SecSumShare runs abandoned as unrecoverable");

  for (std::size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    eppi::obs::Span attempt_span("secsum.attempt");
    attempt_span.attr("party", static_cast<std::uint64_t>(me));
    attempt_span.attr("attempt", attempt + 1);
    attempt_span.attr("alive", alive.size());
    const std::uint64_t seqb = kAttemptStride * attempt;
    const std::size_t m = alive.size();
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(alive.begin(), alive.end(), me) - alive.begin());
    const ModRing ring = resolve_ring(params, m);
    std::set<PartyId> suspects;

    // Steps 1-2: fresh shares (new randomness per attempt — shares from an
    // abandoned attempt reveal nothing on their own) to survivor-relative
    // ring successors.
    std::vector<std::vector<SecretU64>> shares_by_hop(
        c, std::vector<SecretU64>(n));
    for (std::size_t j = 0; j < n; ++j) {
      require(inputs[j] <= 1, "SecSumShare: inputs must be Boolean");
      const auto shares = split_additive(inputs[j], c, ring, ctx.rng());
      for (std::size_t k = 0; k < c; ++k) shares_by_hop[k][j] = shares[k];
    }
    for (std::size_t k = 1; k < c; ++k) {
      const PartyId to = alive[(pos + k) % m];
      ctx.send(to, MessageTag::kShareDistribute, seqb + k,
               encode_vector(shares_by_hop[k]));
    }
    if (me == 0) ctx.mark_round();

    // Step 3: bounded receives from ring predecessors; silence = suspicion.
    std::vector<SecretU64> super_share = std::move(shares_by_hop[0]);
    for (std::size_t k = 1; k < c; ++k) {
      const PartyId from = alive[(pos + m - k) % m];
      auto payload = ctx.recv_for(from, MessageTag::kShareDistribute,
                                  seqb + k, options.stage_timeout);
      if (!payload) {
        suspects.insert(from);
        continue;
      }
      const auto incoming = decode_vector(*payload, n);
      for (std::size_t j = 0; j < n; ++j) {
        super_share[j] = super_share[j].add(incoming[j], ring);
      }
    }

    // Step 4: super-share to the survivor-relative coordinator. The first c
    // survivors are always ids 0..c-1 (a lost coordinator aborts), so
    // coordinators keep their identities across restarts.
    ctx.send(alive[pos % c], MessageTag::kSuperShare, seqb,
             encode_vector(super_share));
    if (me == 0) ctx.mark_round();

    std::vector<SecretU64> aggregated;
    if (me < c) {
      aggregated.assign(n, SecretU64());
      for (std::size_t i = pos; i < m; i += c) {
        const PartyId from = alive[i];
        auto payload = ctx.recv_for(from, MessageTag::kSuperShare, seqb,
                                    options.stage_timeout);
        if (!payload) {
          suspects.insert(from);
          continue;
        }
        const auto incoming = decode_vector(*payload, n);
        for (std::size_t j = 0; j < n; ++j) {
          aggregated[j] = aggregated[j].add(incoming[j], ring);
        }
      }
    }

    // Failure-detection round: suspects converge on party 0, which decides
    // and broadcasts the view for the next attempt.
    ViewMessage view;
    if (me == 0) {
      for (const PartyId p : alive) {
        if (p == 0) continue;
        auto payload = ctx.recv_for(p, MessageTag::kFailureReport, seqb,
                                    report_timeout);
        if (!payload) {
          suspects.insert(p);
          continue;
        }
        eppi::BinaryReader r(*payload);
        const auto reported = decode_ids(r);
        suspects.insert(reported.begin(), reported.end());
      }

      if (suspects.empty()) {
        view.decision = ViewDecision::kCommit;
        view.alive = alive;
      } else {
        view.blamed = *suspects.begin();
        std::vector<PartyId> next_alive;
        for (const PartyId p : alive) {
          if (suspects.count(p) == 0) next_alive.push_back(p);
        }
        const bool coordinator_lost = *suspects.begin() < c;
        const bool too_few = next_alive.size() < c;
        const bool out_of_attempts = attempt + 1 >= options.max_attempts;
        view.decision = (coordinator_lost || too_few || out_of_attempts)
                            ? ViewDecision::kAbort
                            : ViewDecision::kRestart;
        view.alive = std::move(next_alive);
      }
      // Broadcast to every member of the old view — including suspects, so
      // a falsely-suspected live party learns its eviction instead of
      // hanging.
      const auto payload = encode_view(view);
      for (const PartyId p : alive) {
        if (p != 0) ctx.send(p, MessageTag::kViewChange, seqb, payload);
      }
      ctx.mark_round();
    } else {
      ctx.send(0, MessageTag::kFailureReport, seqb, encode_ids(suspects));
      auto payload =
          ctx.recv_for(0, MessageTag::kViewChange, seqb, view_timeout);
      if (!payload) {
        throw eppi::PartyFailure(
            "SecSumShare: coordinator 0 went silent during view change", 0);
      }
      view = decode_view(*payload);
    }

    switch (view.decision) {
      case ViewDecision::kCommit: {
        SecSumShareOutcome outcome;
        if (me < c) outcome.shares = std::move(aggregated);
        outcome.survivors = std::move(view.alive);
        outcome.q = ring.q();
        outcome.attempts = attempt + 1;
        return outcome;
      }
      case ViewDecision::kAbort:
        attempt_span.event("secsum.abort");
        if (me == 0) aborts.add();
        throw eppi::PartyFailure(
            "SecSumShare: unrecoverable dropout (coordinator lost, fewer "
            "than c survivors, or attempts exhausted); first failed party " +
                std::to_string(view.blamed),
            view.blamed);
      case ViewDecision::kRestart:
        attempt_span.event("secsum.restart");
        if (me == 0) restarts.add();
        if (!std::binary_search(view.alive.begin(), view.alive.end(), me)) {
          throw eppi::PartyFailure(
              "SecSumShare: this party was evicted from the view on a "
              "false suspicion",
              me);
        }
        alive = std::move(view.alive);
        break;
    }
  }
  // Party 0 converts attempt exhaustion into kAbort above; reaching here
  // means a decode produced an inconsistent view.
  throw eppi::ProtocolError("SecSumShare: view protocol did not converge");
}

}  // namespace eppi::secret
