// SecSumShare: the parallel secure-sum protocol of paper §IV-B.1.
//
// Given m providers each holding a private Boolean vector M_i(·) over n
// identities, SecSumShare outputs, on c coordinator providers (p_0..p_{c-1}),
// c share vectors s(0,·)..s(c-1,·) whose per-identity sum over Z_q equals the
// identity frequency sum_i M(i,j) — without revealing any provider's input
// or the sum itself (Theorem 4.1: (c,c)-secret output; (2c-3)-secrecy of
// inputs).
//
// The four steps, exactly as in the paper's Fig. 3 walkthrough:
//   1. Generating shares: each provider splits each input bit into c
//      additive shares mod q.
//   2. Distributing shares: the k-th share goes to the k-th ring successor
//      p_{(i+k) mod m}; share 0 stays local.
//   3. Summing shares: each provider adds the c shares it holds (its own
//      share 0 plus one from each of its c-1 ring predecessors) into a
//      super-share.
//   4. Aggregating super-shares: provider i sends its super-share vector to
//      coordinator p_{i mod c}; each coordinator adds what it receives.
//
// The protocol runs in 2 communication rounds regardless of m, and each
// provider sends exactly c-1 share messages plus 1 super-share message —
// this is what keeps the expensive generic MPC confined to c parties.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/cluster.h"
#include "secret/mod_ring.h"

namespace eppi::secret {

struct SecSumShareParams {
  std::size_t c = 3;       // number of shares / coordinators
  std::uint64_t q = 0;     // ring modulus; 0 = auto power-of-two > m
  std::size_t n = 0;       // number of identities (vector length)
};

// Runs the protocol body for one party inside a Cluster whose first
// `m = ctx.n_parties()` parties are the providers. `inputs` is this
// provider's Boolean membership vector (length params.n, values 0/1).
//
// Returns the coordinator's aggregated share vector s(i,·) if this party is
// a coordinator (id < c), std::nullopt otherwise.
//
// Throws ConfigError when c < 2, c > m, or input sizes mismatch.
std::optional<std::vector<std::uint64_t>> run_sec_sum_share_party(
    eppi::net::PartyContext& ctx, const SecSumShareParams& params,
    std::span<const std::uint8_t> inputs);

// Resolves params.q: the explicit modulus, or the smallest power of two
// exceeding m (so sums of m bits cannot wrap).
ModRing resolve_ring(const SecSumShareParams& params, std::size_t m);

// Centralized reference: what the coordinators' share vectors must sum to.
// Used by tests to validate the distributed run.
std::vector<std::uint64_t> plain_frequency_sums(
    std::span<const std::vector<std::uint8_t>> provider_inputs, std::size_t n);

}  // namespace eppi::secret
