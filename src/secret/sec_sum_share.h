// SecSumShare: the parallel secure-sum protocol of paper §IV-B.1.
//
// Given m providers each holding a private Boolean vector M_i(·) over n
// identities, SecSumShare outputs, on c coordinator providers (p_0..p_{c-1}),
// c share vectors s(0,·)..s(c-1,·) whose per-identity sum over Z_q equals the
// identity frequency sum_i M(i,j) — without revealing any provider's input
// or the sum itself (Theorem 4.1: (c,c)-secret output; (2c-3)-secrecy of
// inputs).
//
// The four steps, exactly as in the paper's Fig. 3 walkthrough:
//   1. Generating shares: each provider splits each input bit into c
//      additive shares mod q.
//   2. Distributing shares: the k-th share goes to the k-th ring successor
//      p_{(i+k) mod m}; share 0 stays local.
//   3. Summing shares: each provider adds the c shares it holds (its own
//      share 0 plus one from each of its c-1 ring predecessors) into a
//      super-share.
//   4. Aggregating super-shares: provider i sends its super-share vector to
//      coordinator p_{i mod c}; each coordinator adds what it receives.
//
// The protocol runs in 2 communication rounds regardless of m, and each
// provider sends exactly c-1 share messages plus 1 super-share message —
// this is what keeps the expensive generic MPC confined to c parties.
// Dropout tolerance (this reproduction's extension): the paper assumes all m
// providers stay up; run_sec_sum_share_party_ft adds bounded receives, a
// coordinator-led failure detector, and a restart path that re-runs the
// round over the survivors (recomputing ring successors and re-resolving the
// modulus) as long as all c coordinators and at least c providers survive.
// A dead coordinator is unrecoverable — the (c,c) output sharing needs every
// coordinator's share — so that case aborts fast with a typed PartyFailure.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/cluster.h"
#include "secret/mod_ring.h"
#include "secret/secret.h"

namespace eppi::secret {

struct SecSumShareParams {
  std::size_t c = 3;       // number of shares / coordinators
  std::uint64_t q = 0;     // ring modulus; 0 = auto power-of-two > m
  std::size_t n = 0;       // number of identities (vector length)
};

// Runs the protocol body for one party inside a Cluster whose first
// `m = ctx.n_parties()` parties are the providers. `inputs` is this
// provider's Boolean membership vector (length params.n, values 0/1).
//
// Returns the coordinator's aggregated share vector s(i,·) — tainted
// SecretU64 values — if this party is a coordinator (id < c), std::nullopt
// otherwise.
//
// Throws ConfigError when c < 2, c > m, or input sizes mismatch.
std::optional<std::vector<SecretU64>> run_sec_sum_share_party(
    eppi::net::PartyContext& ctx, const SecSumShareParams& params,
    std::span<const std::uint8_t> inputs);

// Resolves params.q: the explicit modulus, or the smallest power of two
// exceeding m (so sums of m bits cannot wrap).
ModRing resolve_ring(const SecSumShareParams& params, std::size_t m);

// Centralized reference: what the coordinators' share vectors must sum to.
// Used by tests to validate the distributed run.
std::vector<std::uint64_t> plain_frequency_sums(
    std::span<const std::vector<std::uint8_t>> provider_inputs, std::size_t n);

// --- Dropout-tolerant variant -------------------------------------------

struct SecSumShareFtOptions {
  // Bound on every receive within one protocol stage; a peer silent past
  // this is suspected dead.
  std::chrono::milliseconds stage_timeout{250};
  // Restarts (over shrinking survivor sets) before giving up.
  std::size_t max_attempts = 3;
};

struct SecSumShareOutcome {
  // Aggregated share vector on coordinators (id < c), nullopt otherwise —
  // identical contract to run_sec_sum_share_party, plus the committed view.
  std::optional<std::vector<SecretU64>> shares;
  // Sorted ids of the providers whose inputs the committed attempt covers;
  // all survivors agree on this list. The first c entries are always
  // 0..c-1.
  std::vector<eppi::net::PartyId> survivors;
  // The ring the committed attempt used (re-resolved from the survivor
  // count when params.q is auto).
  std::uint64_t q = 0;
  std::size_t attempts = 1;
};

// Fault-tolerant SecSumShare. Differences from the plain variant:
//  * every receive is bounded by options.stage_timeout;
//  * after steps 1-4 each party reports its suspect set to party 0, which
//    aggregates, decides COMMIT / RESTART(survivors) / ABORT, and broadcasts
//    the decision (a silent party 0 means coordinator death: PartyFailure);
//  * RESTART re-runs the whole round over the survivor list with fresh
//    shares, survivor-relative ring successors, and a re-resolved modulus;
//  * ABORT (a coordinator among the suspects, fewer than c survivors, or
//    max_attempts exhausted) throws PartyFailure naming a failed party.
// An alive party evicted on a false suspicion learns its eviction from the
// view broadcast and throws PartyFailure for itself (it cannot rejoin the
// committed view).
SecSumShareOutcome run_sec_sum_share_party_ft(
    eppi::net::PartyContext& ctx, const SecSumShareParams& params,
    std::span<const std::uint8_t> inputs, const SecSumShareFtOptions& options);

}  // namespace eppi::secret
