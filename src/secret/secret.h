// Tainted secret-share type.
//
// ε-PPI's secrecy guarantees (SecSumShare is (2c−3)-secret for inputs and
// c-secret for the output sum, paper §IV Theorem 4.1) hold only if share
// values never leak outside the protocol. Historically a share was a bare
// uint64_t that any call site could log, compare, or branch on; Secret<T>
// makes those operations build errors:
//
//   - construction is explicit (no accidental wrapping of public values);
//   - comparisons and stream insertion are deleted, and a catch-all deleted
//     conversion operator kills implicit conversion to anything (including
//     bool, so `if (share)` does not compile);
//   - arithmetic is only available through the mod-ring / XOR operations a
//     linear secret-sharing scheme actually needs.
//
// The only ways out of the taint are two audited escape hatches, confined by
// lint rule `escape-hatch` (tools/eppi_lint.py) to the protocol layers,
// tests, benches, and the attack simulations:
//
//   unwrap_for_wire()  serializing a share onto the wire toward the party
//                      that is supposed to hold it (not an information leak:
//                      the recipient owns this share by protocol design);
//   reveal()           a deliberate protocol opening (reconstruction) or a
//                      test/attack-simulation assertion.
//
// See docs/static_analysis.md for the full taint discipline.
#pragma once

#include <concepts>
#include <cstdint>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "secret/mod_ring.h"

namespace eppi {

template <typename T>
class [[nodiscard]] Secret {
 public:
  // Default construction value-initializes the payload (share of zero);
  // needed so containers of shares can be sized before the protocol fills
  // them in.
  Secret() : value_() {}
  explicit Secret(T value) : value_(std::move(value)) {}

  Secret(const Secret&) = default;
  Secret(Secret&&) noexcept = default;
  Secret& operator=(const Secret&) = default;
  Secret& operator=(Secret&&) noexcept = default;

  // --- audited escape hatches (see file comment) ---------------------------
  const T& unwrap_for_wire() const noexcept { return value_; }
  T reveal() const { return value_; }

  // --- everything below here is deleted: secrets don't leak ----------------

  // Catch-all: no implicit or explicit conversion to any type (kills
  // `if (share)`, `uint64_t x = share`, printf-style varargs, ...).
  template <typename U>
  operator U() const = delete;

  friend bool operator==(const Secret&, const Secret&) = delete;
  friend bool operator!=(const Secret&, const Secret&) = delete;
  friend bool operator<(const Secret&, const Secret&) = delete;
  friend bool operator<=(const Secret&, const Secret&) = delete;
  friend bool operator>(const Secret&, const Secret&) = delete;
  friend bool operator>=(const Secret&, const Secret&) = delete;

  // Stream insertion of a share is the leak this PR exists to prevent; the
  // deleted friend is found by ADL, so `EPPI_LOG(... << share)` reports "use
  // of deleted function" instead of silently printing.
  friend std::ostream& operator<<(std::ostream&, const Secret&) = delete;

  // Raw built-in arithmetic is deleted too: share math must go through the
  // ring so reductions cannot be forgotten.
  friend Secret operator+(const Secret&, const Secret&) = delete;
  friend Secret operator-(const Secret&, const Secret&) = delete;
  friend Secret operator*(const Secret&, const Secret&) = delete;

  // --- ring arithmetic (additive shares over Z_q) --------------------------
  // Linear operations commute with sharing, so applying them share-wise is
  // exactly how SecSumShare/reshare/ArithSession compute on secrets.

  Secret add(const Secret& other, const secret::ModRing& ring) const
    requires std::same_as<T, std::uint64_t>
  {
    return Secret(ring.add(value_, other.value_));
  }

  Secret sub(const Secret& other, const secret::ModRing& ring) const
    requires std::same_as<T, std::uint64_t>
  {
    return Secret(ring.sub(value_, other.value_));
  }

  Secret neg(const secret::ModRing& ring) const
    requires std::same_as<T, std::uint64_t>
  {
    return Secret(ring.neg(value_));
  }

  // Multiply by a public scalar.
  Secret scale(std::uint64_t k, const secret::ModRing& ring) const
    requires std::same_as<T, std::uint64_t>
  {
    return Secret(ring.mul(value_, k));
  }

  // Add a public constant (protocol code must apply this on exactly one
  // party for additive shares — that is protocol logic, not type logic).
  Secret add_public(std::uint64_t k, const secret::ModRing& ring) const
    requires std::same_as<T, std::uint64_t>
  {
    return Secret(ring.add(value_, ring.reduce(k)));
  }

  // --- boolean (XOR) sharing ops, for GMW wires ----------------------------

  Secret operator^(const Secret& other) const
    requires std::same_as<T, bool>
  {
    return Secret(static_cast<bool>(value_ ^ other.value_));
  }

  // XOR with a public bit (apply on one party only for XOR shares).
  Secret operator^(bool plain) const
    requires std::same_as<T, bool>
  {
    return Secret(static_cast<bool>(value_ ^ plain));
  }

  // AND with a *public* bit is linear, hence share-local. AND of two secret
  // bits is deliberately absent: it needs a Beaver triple (see gmw.cpp).
  Secret operator&(bool plain) const
    requires std::same_as<T, bool>
  {
    return Secret(value_ && plain);
  }

  Secret& operator^=(const Secret& other)
    requires std::same_as<T, bool>
  {
    value_ = static_cast<bool>(value_ ^ other.value_);
    return *this;
  }

 private:
  T value_;
};

using SecretU64 = Secret<std::uint64_t>;
using SecretBit = Secret<bool>;
// A packed XOR-share buffer (GMW wire shares, Beaver triple shares).
using SecretBytes = Secret<std::vector<std::uint8_t>>;

// --- bulk helpers -----------------------------------------------------------

// Taint a freshly produced share vector.
inline std::vector<SecretU64> wrap_shares(std::span<const std::uint64_t> raw) {
  std::vector<SecretU64> out;
  out.reserve(raw.size());
  for (const std::uint64_t v : raw) out.emplace_back(v);
  return out;
}

// Serialization path: flatten shares for a wire message addressed to the
// party that is supposed to hold them. Confined to src/secret + src/mpc by
// the escape-hatch lint rule.
inline std::vector<std::uint64_t> wire_shares(
    std::span<const SecretU64> shares) {
  std::vector<std::uint64_t> out;
  out.reserve(shares.size());
  for (const SecretU64& s : shares) out.push_back(s.unwrap_for_wire());
  return out;
}

// Audited bulk reveal for tests, benches, and attack simulations (e.g.
// handing a coordinator's view to CollusionObserver deliberately models the
// adversary pooling shares).
inline std::vector<std::uint64_t> reveal_shares(
    std::span<const SecretU64> shares) {
  std::vector<std::uint64_t> out;
  out.reserve(shares.size());
  for (const SecretU64& s : shares) out.push_back(s.reveal());
  return out;
}

}  // namespace eppi

namespace eppi::secret {
// The share types live in the top-level namespace (they are used by mpc and
// core too); re-export them where the sharing primitives are defined.
using eppi::Secret;
using eppi::SecretBit;
using eppi::SecretBytes;
using eppi::SecretU64;
using eppi::reveal_shares;
using eppi::wire_shares;
using eppi::wrap_shares;
}  // namespace eppi::secret
