#include "secret/secure_aggregates.h"

#include <algorithm>

#include "common/error.h"
#include "mpc/arith.h"

namespace eppi::secret {

ModRing aggregates_ring_for(std::size_t m, std::size_t n) {
  const auto m64 = static_cast<std::uint64_t>(m);
  const auto n64 = static_cast<std::uint64_t>(n);
  require(m64 == 0 || n64 <= (~std::uint64_t{0}) / (m64 * m64),
          "aggregates_ring_for: network too large for 64-bit ring");
  return ModRing::power_of_two_for(n64 * m64 * m64);
}

AggregateResult plain_aggregates(
    std::span<const std::uint64_t> frequencies) {
  AggregateResult result;
  result.identities = frequencies.size();
  for (const std::uint64_t f : frequencies) {
    result.total += f;
    result.total_squares += f * f;
  }
  if (result.identities > 0) {
    const auto n = static_cast<double>(result.identities);
    result.mean = static_cast<double>(result.total) / n;
    result.variance =
        static_cast<double>(result.total_squares) / n -
        result.mean * result.mean;
    result.variance = std::max(0.0, result.variance);
  }
  return result;
}

AggregateResult run_secure_aggregates_party(
    eppi::net::PartyContext& ctx,
    const std::vector<eppi::net::PartyId>& parties,
    std::span<const SecretU64> my_shares, const ModRing& ring,
    std::uint64_t seq_base) {
  const std::size_t n = my_shares.size();
  require(n >= 1, "secure_aggregates: empty share vector");

  // SecSumShare outputs *are* arithmetic shares, so the generic engine
  // (mpc/arith.h) consumes them directly: squares via one batched Beaver
  // multiplication, then a single batched opening of the two scalar sums.
  eppi::mpc::ArithSession session(ctx, parties, ring, seq_base);

  eppi::mpc::ArithSession::Share sum_share;
  for (const auto& x : my_shares) sum_share = session.add(sum_share, x);

  const auto squares = session.mul_batch(my_shares, my_shares);
  eppi::mpc::ArithSession::Share sq_share;
  for (const auto& z : squares) sq_share = session.add(sq_share, z);

  const std::vector<eppi::mpc::ArithSession::Share> scalars{sum_share,
                                                            sq_share};
  const auto opened = session.open_batch(scalars);

  AggregateResult result;
  result.identities = n;
  result.total = opened[0];
  result.total_squares = opened[1];
  const auto dn = static_cast<double>(n);
  result.mean = static_cast<double>(result.total) / dn;
  result.variance = std::max(
      0.0, static_cast<double>(result.total_squares) / dn -
               result.mean * result.mean);
  return result;
}

}  // namespace eppi::secret
