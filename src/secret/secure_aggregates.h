// Secure aggregate statistics over SecSumShare outputs.
//
// After SecSumShare, the c coordinators hold additive shares of every
// identity's frequency. Network operators legitimately want aggregate
// health metrics — total memberships, mean and variance of the frequency
// distribution (e.g. to pick Zipf parameters, capacity-plan the PPI server,
// or sanity-check a construction run) — but opening per-identity
// frequencies would leak exactly what ε-PPI protects.
//
// This protocol computes Σ f_j and Σ f_j² *under the sharing* and opens
// only those two scalars:
//   * Σ f_j: each party sums its own share vector (additive homomorphism),
//     then the scalar shares are opened — one round, no preprocessing.
//   * Σ f_j²: squaring needs multiplication of shared values; we use
//     arithmetic Beaver triples (a, b, ab) dealt in a preprocessing round
//     (same semi-honest dealer simulation as the Boolean engine,
//     mpc/beaver.h), one masked opening round for all identities, then a
//     scalar opening of the summed squares.
// Mean and variance derive publicly from the two scalars.
//
// Ring caveat: the arithmetic wraps mod q, so the caller must have run
// SecSumShare over a ring large enough for Σ f_j² (q > n·m²); see
// aggregates_ring_for().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/cluster.h"
#include "secret/mod_ring.h"
#include "secret/secret.h"

namespace eppi::secret {

struct AggregateResult {
  std::uint64_t identities = 0;
  std::uint64_t total = 0;        // Σ f_j
  std::uint64_t total_squares = 0;  // Σ f_j²
  double mean = 0.0;
  double variance = 0.0;  // population variance over identities
};

// Smallest power-of-two ring that keeps Σ f_j² from wrapping for a network
// of m providers and n identities.
ModRing aggregates_ring_for(std::size_t m, std::size_t n);

// Runs the protocol body for one session party. `parties` are the cluster
// ids of the coordinators (my id must be among them); `my_shares` is this
// coordinator's SecSumShare output vector over `ring`. All parties learn
// the result. seq_base namespaces the messages (use distinct bases for
// consecutive protocols in one cluster).
AggregateResult run_secure_aggregates_party(
    eppi::net::PartyContext& ctx,
    const std::vector<eppi::net::PartyId>& parties,
    std::span<const SecretU64> my_shares, const ModRing& ring,
    std::uint64_t seq_base = 0);

// Plain reference over raw frequencies.
AggregateResult plain_aggregates(std::span<const std::uint64_t> frequencies);

}  // namespace eppi::secret
