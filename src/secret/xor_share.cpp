#include "secret/xor_share.h"

#include "common/error.h"

namespace eppi::secret {

namespace {
std::size_t packed_size(std::uint64_t bits) noexcept {
  return static_cast<std::size_t>((bits + 7) / 8);
}
}  // namespace

std::vector<SecretBit> split_xor_bit(bool value, std::size_t n,
                                     eppi::Rng& rng) {
  require(n >= 1, "split_xor_bit: need at least one share");
  std::vector<bool> raw(n);
  bool acc = false;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    raw[i] = rng.bernoulli(0.5);
    acc = acc != raw[i];
  }
  raw[n - 1] = acc != value;
  std::vector<SecretBit> shares;
  shares.reserve(n);
  for (const bool b : raw) shares.emplace_back(b);
  return shares;
}

bool reconstruct_xor_bit(std::span<const SecretBit> shares) {
  require(!shares.empty(), "reconstruct_xor_bit: no shares");
  SecretBit value;
  for (const SecretBit& s : shares) value ^= s;
  // All n shares combined: the opening the scheme is built for.
  return value.reveal();
}

std::vector<SecretBytes> split_xor_packed(std::span<const std::uint8_t> bits,
                                          std::uint64_t bit_count,
                                          std::size_t n, eppi::Rng& rng) {
  require(n >= 1, "split_xor_packed: need at least one share");
  require(bits.size() >= packed_size(bit_count),
          "split_xor_packed: buffer smaller than bit_count");
  const std::size_t bytes = packed_size(bit_count);
  std::vector<std::vector<std::uint8_t>> raw(
      n, std::vector<std::uint8_t>(bytes, 0));
  for (std::size_t byte = 0; byte < bytes; ++byte) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      std::uint8_t r;
      rng.fill_bytes(&r, 1);
      raw[i][byte] = r;
      acc ^= r;
    }
    raw[n - 1][byte] = acc ^ bits[byte];
  }
  // Mask tail bits beyond bit_count so shares carry no stray information.
  const unsigned tail = bit_count % 8;
  if (bytes > 0 && tail != 0) {
    const auto mask = static_cast<std::uint8_t>((1u << tail) - 1);
    for (auto& share : raw) share[bytes - 1] &= mask;
    // Re-fix the last share so the XOR still matches the masked input.
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) acc ^= raw[i][bytes - 1];
    raw[n - 1][bytes - 1] =
        static_cast<std::uint8_t>((acc ^ bits[bytes - 1]) & mask);
  }
  std::vector<SecretBytes> shares;
  shares.reserve(n);
  for (auto& buf : raw) shares.emplace_back(std::move(buf));
  return shares;
}

std::vector<std::uint8_t> reconstruct_xor_packed(
    std::span<const SecretBytes> shares) {
  require(!shares.empty(), "reconstruct_xor_packed: no shares");
  // All n shares combined: the opening the scheme is built for.
  std::vector<std::uint8_t> value = shares[0].reveal();
  for (std::size_t i = 1; i < shares.size(); ++i) {
    const std::vector<std::uint8_t>& s = shares[i].unwrap_for_wire();
    require(s.size() == value.size(),
            "reconstruct_xor_packed: share size mismatch");
    for (std::size_t byte = 0; byte < value.size(); ++byte) {
      value[byte] ^= s[byte];
    }
  }
  return value;
}

}  // namespace eppi::secret
