// (n, n) XOR (Boolean) secret sharing.
//
// The Boolean counterpart of additive_share.h: a bit (or packed bit vector)
// splits into n shares whose XOR is the secret; any n−1 shares are jointly
// uniform. This is the wire-sharing the GMW engine uses internally
// (mpc/gmw.cpp); it is exposed here as a first-class primitive so protocol
// code outside the circuit engine (input pre-sharing, tests, custom
// protocols) can use the same scheme.
//
// Shares carry the Secret taint (secret/secret.h): SecretBit for single
// bits, SecretBytes for packed buffers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "secret/secret.h"

namespace eppi::secret {

// Splits one bit into n XOR shares.
std::vector<SecretBit> split_xor_bit(bool value, std::size_t n,
                                     eppi::Rng& rng);

// Reconstructs a bit from all its shares (a deliberate opening).
bool reconstruct_xor_bit(std::span<const SecretBit> shares);

// Packed-vector variants: `bits` is a packed bit buffer (bit_count valid
// bits); returns one packed share buffer per party.
std::vector<SecretBytes> split_xor_packed(std::span<const std::uint8_t> bits,
                                          std::uint64_t bit_count,
                                          std::size_t n, eppi::Rng& rng);

std::vector<std::uint8_t> reconstruct_xor_packed(
    std::span<const SecretBytes> shares);

}  // namespace eppi::secret
