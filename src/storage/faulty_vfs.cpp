#include "storage/faulty_vfs.h"

namespace eppi::storage {

bool FaultyVfs::gate(bool is_write) {
  const std::uint64_t op = ops_++;
  if (scenario_.crash_at_op && op == *scenario_.crash_at_op) {
    throw SimulatedStorageCrash(op);
  }
  if (scenario_.fail_at_op && op == *scenario_.fail_at_op) {
    throw StorageError("injected storage failure at op " +
                       std::to_string(op));
  }
  if (scenario_.torn_at_op && op == *scenario_.torn_at_op) {
    if (is_write) return true;
    throw SimulatedStorageCrash(op);
  }
  return false;
}

void FaultyVfs::make_dir(const std::string& dir) {
  gate(false);
  inner_.make_dir(dir);
}

void FaultyVfs::write_file(const std::string& path,
                           std::span<const std::uint8_t> data) {
  if (gate(true)) {
    inner_.write_file(path,
                      data.subspan(0, std::min(scenario_.torn_bytes,
                                               data.size())));
    // The cut happens after the partial sectors reached the platter: flush
    // them so the torn prefix is what recovery finds, not a clean absence.
    inner_.fsync_file(path);
    throw SimulatedStorageCrash(ops_ - 1);
  }
  inner_.write_file(path, data);
}

void FaultyVfs::append_file(const std::string& path,
                            std::span<const std::uint8_t> data) {
  if (gate(true)) {
    inner_.append_file(path,
                       data.subspan(0, std::min(scenario_.torn_bytes,
                                                data.size())));
    inner_.fsync_file(path);
    throw SimulatedStorageCrash(ops_ - 1);
  }
  inner_.append_file(path, data);
}

void FaultyVfs::fsync_file(const std::string& path) {
  gate(false);
  inner_.fsync_file(path);
}

void FaultyVfs::fsync_dir(const std::string& dir) {
  gate(false);
  inner_.fsync_dir(dir);
}

void FaultyVfs::rename_file(const std::string& from, const std::string& to) {
  gate(false);
  inner_.rename_file(from, to);
}

void FaultyVfs::remove_file(const std::string& path) {
  gate(false);
  inner_.remove_file(path);
}

}  // namespace eppi::storage
