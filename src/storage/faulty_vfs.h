// Storage fault injection, mirroring the network FaultScenario framework.
//
// FaultyVfs decorates any Vfs and interprets a StorageFaultScenario against
// a deterministic count of *mutating* operations (write, append, fsync,
// rename, remove, make_dir — reads are free), so a recovery test can kill
// the commit protocol at every boundary:
//
//   for (k = 0; k < total_ops; ++k) {
//     MemVfs disk;
//     FaultyVfs faulty(disk, StorageFaultScenario::crash_at(k));
//     try { run_commit(faulty); } catch (const SimulatedStorageCrash&) {}
//     disk.crash();              // power loss: drop un-fsynced state
//     recover_and_check(disk);   // must find a valid store
//   }
//
// Besides kill points, scenarios model torn writes (a write persists only a
// prefix, then the machine dies — what a sector-level power cut does to an
// in-place write) and transient fsync failures (the op throws StorageError
// and does not take effect; the caller must treat the commit as failed).
#pragma once

#include <optional>

#include "storage/vfs.h"

namespace eppi::storage {

struct StorageFaultScenario {
  // Kill before executing mutating op #k (0-based): ops [0, k) succeed,
  // op k throws SimulatedStorageCrash without taking effect.
  std::optional<std::uint64_t> crash_at_op;

  // Torn write: if mutating op #k is a write/append, only the first
  // `torn_bytes` bytes reach the file, then SimulatedStorageCrash. For any
  // other op kind this behaves like crash_at_op.
  std::optional<std::uint64_t> torn_at_op;
  std::size_t torn_bytes = 0;

  // Transient failure: mutating op #k throws StorageError and does not take
  // effect. No crash — the caller survives and must handle a failed commit.
  std::optional<std::uint64_t> fail_at_op;

  static StorageFaultScenario crash_at(std::uint64_t op) {
    StorageFaultScenario s;
    s.crash_at_op = op;
    return s;
  }

  static StorageFaultScenario torn_at(std::uint64_t op, std::size_t bytes) {
    StorageFaultScenario s;
    s.torn_at_op = op;
    s.torn_bytes = bytes;
    return s;
  }

  static StorageFaultScenario fail_at(std::uint64_t op) {
    StorageFaultScenario s;
    s.fail_at_op = op;
    return s;
  }
};

class FaultyVfs final : public Vfs {
 public:
  explicit FaultyVfs(Vfs& inner, StorageFaultScenario scenario = {})
      : inner_(inner), scenario_(scenario) {}

  bool exists(const std::string& path) const override {
    return inner_.exists(path);
  }
  std::vector<std::uint8_t> read_file(const std::string& path) const override {
    return inner_.read_file(path);
  }
  std::vector<std::string> list_dir(const std::string& dir) const override {
    return inner_.list_dir(dir);
  }
  void make_dir(const std::string& dir) override;
  void write_file(const std::string& path,
                  std::span<const std::uint8_t> data) override;
  void append_file(const std::string& path,
                   std::span<const std::uint8_t> data) override;
  void fsync_file(const std::string& path) override;
  void fsync_dir(const std::string& dir) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;

  // Mutating ops performed (or attempted) so far; run a workload once
  // fault-free to size a kill-at-every-op matrix.
  std::uint64_t ops() const noexcept { return ops_; }

 private:
  // Returns true if this op should be torn (write/append only); throws for
  // crash/fail points. Advances the op counter.
  bool gate(bool is_write);

  Vfs& inner_;
  StorageFaultScenario scenario_;
  std::uint64_t ops_ = 0;
};

}  // namespace eppi::storage
