#include "storage/mem_vfs.h"

#include <algorithm>

namespace eppi::storage {

namespace {

void check_parent(const std::set<std::string>& dirs, const std::string& path,
                  const char* op) {
  const std::string parent = parent_dir(path);
  if (!parent.empty() && !dirs.count(parent)) {
    throw StorageError(std::string(op) + " " + path +
                       ": parent directory does not exist");
  }
}

}  // namespace

bool MemVfs::exists(const std::string& path) const {
  return cache_.count(path) != 0 || dirs_.count(path) != 0;
}

std::vector<std::uint8_t> MemVfs::read_file(const std::string& path) const {
  const auto it = cache_.find(path);
  if (it == cache_.end()) {
    throw StorageError("read " + path + ": no such file");
  }
  return it->second.content;
}

std::vector<std::string> MemVfs::list_dir(const std::string& dir) const {
  if (!dirs_.count(dir)) {
    throw StorageError("list_dir " + dir + ": no such directory");
  }
  std::vector<std::string> names;
  for (const auto& [path, file] : cache_) {
    if (parent_dir(path) == dir) {
      names.push_back(path.substr(dir.size() + 1));
    }
  }
  return names;  // std::map iteration is already sorted
}

void MemVfs::make_dir(const std::string& dir) {
  // mkdir -p: create every ancestor. Directory creation is modelled as
  // immediately durable (see header).
  std::string prefix;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      prefix = dir.substr(0, i);
      if (!prefix.empty()) dirs_.insert(prefix);
    }
  }
}

void MemVfs::write_file(const std::string& path,
                        std::span<const std::uint8_t> data) {
  check_parent(dirs_, path, "write");
  cache_[path] = File{{data.begin(), data.end()}, {}};
  removed_.erase(path);
}

void MemVfs::append_file(const std::string& path,
                         std::span<const std::uint8_t> data) {
  check_parent(dirs_, path, "append");
  File& f = cache_[path];  // O_CREAT semantics
  f.content.insert(f.content.end(), data.begin(), data.end());
  removed_.erase(path);
}

void MemVfs::fsync_file(const std::string& path) {
  const auto it = cache_.find(path);
  if (it == cache_.end()) {
    throw StorageError("fsync " + path + ": no such file");
  }
  it->second.synced_content = it->second.content;
  // Data reaches the inode; the *entry* is durable only if it already was
  // (a brand-new or renamed entry still needs fsync_dir on the parent).
  if (durable_.count(path)) durable_[path] = it->second.content;
}

void MemVfs::fsync_dir(const std::string& dir) {
  if (!dirs_.count(dir)) {
    throw StorageError("fsync dir " + dir + ": no such directory");
  }
  for (auto it = removed_.begin(); it != removed_.end();) {
    if (parent_dir(*it) == dir) {
      durable_.erase(*it);
      it = removed_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, file] : cache_) {
    // The entry is now durable, carrying whatever content was fsynced to
    // the inode — possibly nothing, if fsync_file was skipped.
    if (parent_dir(path) == dir) durable_[path] = file.synced_content;
  }
}

void MemVfs::rename_file(const std::string& from, const std::string& to) {
  const auto it = cache_.find(from);
  if (it == cache_.end()) {
    throw StorageError("rename " + from + ": no such file");
  }
  check_parent(dirs_, to, "rename");
  cache_[to] = std::move(it->second);
  cache_.erase(from);
  removed_.insert(from);
  removed_.erase(to);
  // durable_ is untouched: until fsync_dir, a crash reverts the rename.
}

void MemVfs::remove_file(const std::string& path) {
  if (cache_.erase(path) == 0) {
    throw StorageError("unlink " + path + ": no such file");
  }
  removed_.insert(path);
}

void MemVfs::crash() {
  cache_.clear();
  for (const auto& [path, bytes] : durable_) {
    cache_[path] = File{bytes, bytes};
  }
  removed_.clear();
}

}  // namespace eppi::storage
