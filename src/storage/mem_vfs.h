// In-memory Vfs with power-loss semantics, for crash-recovery tests.
//
// MemVfs models the OS page cache the way crash-consistency harnesses
// (ALICE, CrashMonkey) do: every mutation lands in a volatile cache, and a
// separate durable image only advances on fsync. crash() discards the cache
// and reverts to the durable image — the state a machine would reboot with
// after power loss. The model is deliberately strict where it matters for
// the commit protocol:
//
//  * fsync_file makes a file's *content* durable, but a newly created (or
//    renamed) directory entry only becomes durable on fsync_dir of the
//    parent — skipping the directory fsync loses the whole file on crash;
//  * fsync_dir persists entries but only the content that was fsynced:
//    an entry synced before its data models as an empty file after crash
//    (metadata landed, data was still in cache);
//  * rename is atomic in the cache but durable only after fsync_dir.
//
// Simplifications (noted, conservative for our protocol): make_dir is
// durable immediately, and remove+recreate of the same path between dir
// fsyncs collapses to the new inode.
#pragma once

#include <map>
#include <set>

#include "storage/vfs.h"

namespace eppi::storage {

class MemVfs final : public Vfs {
 public:
  bool exists(const std::string& path) const override;
  std::vector<std::uint8_t> read_file(const std::string& path) const override;
  std::vector<std::string> list_dir(const std::string& dir) const override;
  void make_dir(const std::string& dir) override;
  void write_file(const std::string& path,
                  std::span<const std::uint8_t> data) override;
  void append_file(const std::string& path,
                   std::span<const std::uint8_t> data) override;
  void fsync_file(const std::string& path) override;
  void fsync_dir(const std::string& dir) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;

  // Power loss: every un-fsynced mutation is gone; the filesystem reverts
  // to the durable image. Call after catching SimulatedStorageCrash to see
  // what a rebooted process would find.
  void crash();

  // Introspection for tests.
  std::size_t file_count() const { return cache_.size(); }

 private:
  struct File {
    std::vector<std::uint8_t> content;         // current (cached) content
    std::vector<std::uint8_t> synced_content;  // durably on the inode
  };

  std::map<std::string, File> cache_;
  std::map<std::string, std::vector<std::uint8_t>> durable_;  // post-crash view
  std::set<std::string> removed_;  // cache removals not yet durable
  std::set<std::string> dirs_;
};

}  // namespace eppi::storage
