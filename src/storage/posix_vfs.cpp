#include "storage/posix_vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace eppi::storage {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw StorageError(op + " " + path + ": " + std::strerror(errno));
}

void write_all(int fd, std::span<const std::uint8_t> data,
               const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

void open_write_close(const std::string& path, int flags,
                      std::span<const std::uint8_t> data) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) fail("open", path);
  write_all(fd, data, path);
  if (::close(fd) != 0) fail("close", path);
}

}  // namespace

bool PosixVfs::exists(const std::string& path) const {
  std::error_code ec;
  return fs::exists(path, ec);
}

std::vector<std::uint8_t> PosixVfs::read_file(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path);
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("read", path);
    }
    if (n == 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  ::close(fd);
  return out;
}

std::vector<std::string> PosixVfs::list_dir(const std::string& dir) const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) throw StorageError("list_dir " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

void PosixVfs::make_dir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw StorageError("make_dir " + dir + ": " + ec.message());
}

void PosixVfs::write_file(const std::string& path,
                          std::span<const std::uint8_t> data) {
  open_write_close(path, O_WRONLY | O_CREAT | O_TRUNC, data);
}

void PosixVfs::append_file(const std::string& path,
                           std::span<const std::uint8_t> data) {
  open_write_close(path, O_WRONLY | O_CREAT | O_APPEND, data);
}

void PosixVfs::fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync", path);
  }
  if (::close(fd) != 0) fail("close", path);
}

void PosixVfs::fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("open dir", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync dir", dir);
  }
  if (::close(fd) != 0) fail("close dir", dir);
}

void PosixVfs::rename_file(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) fail("rename", from);
}

void PosixVfs::remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0) fail("unlink", path);
}

}  // namespace eppi::storage
