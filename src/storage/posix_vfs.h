// Real-filesystem Vfs backed by POSIX file descriptors.
//
// Used by the CLI and any production embedding. fsync_file/fsync_dir issue
// real fsync(2) calls — fsyncing the parent directory after a rename is what
// makes the epoch commit survive power loss, not just process death.
#pragma once

#include "storage/vfs.h"

namespace eppi::storage {

class PosixVfs final : public Vfs {
 public:
  bool exists(const std::string& path) const override;
  std::vector<std::uint8_t> read_file(const std::string& path) const override;
  std::vector<std::string> list_dir(const std::string& dir) const override;
  void make_dir(const std::string& dir) override;
  void write_file(const std::string& path,
                  std::span<const std::uint8_t> data) override;
  void append_file(const std::string& path,
                   std::span<const std::uint8_t> data) override;
  void fsync_file(const std::string& path) override;
  void fsync_dir(const std::string& dir) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
};

}  // namespace eppi::storage
