#include "storage/vfs.h"

namespace eppi::storage {

Vfs::~Vfs() = default;

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash);
}

void atomic_write_file(Vfs& vfs, const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  vfs.write_file(tmp, data);
  vfs.fsync_file(tmp);
  vfs.rename_file(tmp, path);
  const std::string dir = parent_dir(path);
  if (!dir.empty()) vfs.fsync_dir(dir);
}

void durable_append(Vfs& vfs, const std::string& path,
                    std::span<const std::uint8_t> data) {
  vfs.append_file(path, data);
  vfs.fsync_file(path);
}

}  // namespace eppi::storage
