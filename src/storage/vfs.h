// Storage abstraction for the durable epoch store.
//
// All raw index/manifest file writes in the library go through a Vfs (the
// eppi-lint `raw-file-write` rule enforces this), for two reasons:
//
//  * crash-safety is a protocol over primitive operations — write temp,
//    fsync file, rename, fsync directory — and centralizing the primitives
//    makes the commit protocol auditable in one place
//    (atomic_write_file / durable_append below);
//  * the same protocol must be testable under injected storage faults.
//    MemVfs (mem_vfs.h) models an OS page cache whose un-fsynced state is
//    lost on power failure, and FaultyVfs (faulty_vfs.h) injects short
//    writes, torn writes, fsync failures and kill-at-op-k crashes, so the
//    recovery tests can kill the commit at every boundary.
//
// PosixVfs (posix_vfs.h) is the real implementation used by the CLI and any
// production embedding.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace eppi::storage {

// An I/O operation failed (disk full, permission, fsync error...). Distinct
// from corruption: a StorageError means the operation did not take effect
// and may be retried; corruption is detected at load time by checksums.
class StorageError : public std::runtime_error {
 public:
  explicit StorageError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown by FaultyVfs at a configured kill point. Deliberately NOT derived
// from StorageError: a simulated crash is part of the test harness, and no
// recovery code may catch-and-continue past it (mirrors net::SimulatedCrash).
class SimulatedStorageCrash : public std::exception {
 public:
  explicit SimulatedStorageCrash(std::uint64_t op) {
    what_ = "simulated storage crash at op " + std::to_string(op);
  }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

// Minimal filesystem surface needed by the epoch store. Paths use '/'
// separators; relative paths are resolved by the implementation (PosixVfs:
// process cwd; MemVfs: a flat namespace).
class Vfs {
 public:
  virtual ~Vfs();

  virtual bool exists(const std::string& path) const = 0;
  virtual std::vector<std::uint8_t> read_file(const std::string& path)
      const = 0;  // throws StorageError if unreadable
  // Names (not full paths) of regular files in `dir`, sorted.
  virtual std::vector<std::string> list_dir(const std::string& dir) const = 0;

  virtual void make_dir(const std::string& dir) = 0;  // mkdir -p, idempotent
  // Creates or truncates `path`. NOT durable until fsync_file + a parent
  // fsync_dir; a crash before then may leave the file absent or partial.
  virtual void write_file(const std::string& path,
                          std::span<const std::uint8_t> data) = 0;
  virtual void append_file(const std::string& path,
                           std::span<const std::uint8_t> data) = 0;
  virtual void fsync_file(const std::string& path) = 0;
  virtual void fsync_dir(const std::string& dir) = 0;
  // Atomic replace (POSIX rename semantics). Durable after fsync_dir on the
  // parent of `to`.
  virtual void rename_file(const std::string& from, const std::string& to) = 0;
  virtual void remove_file(const std::string& path) = 0;
};

// The sanctioned crash-safe full-file write: write `path`.tmp, fsync it,
// rename over `path`, fsync the parent directory. After it returns the new
// content is durable; if it throws (or the process dies inside it), recovery
// sees either the old content or a quarantinable .tmp — never a half-written
// `path`.
void atomic_write_file(Vfs& vfs, const std::string& path,
                       std::span<const std::uint8_t> data);

// Appends `data` and fsyncs the file: used for journal records. A crash can
// leave a torn tail record (detected by the record CRC at recovery), but
// never damages previously synced records.
void durable_append(Vfs& vfs, const std::string& path,
                    std::span<const std::uint8_t> data);

// Parent directory of `path` ("" when none).
std::string parent_dir(const std::string& path);

}  // namespace eppi::storage
