// Seeded violations: blocking primitives reachable from loop-affine code —
// one direct (a potentially-blocking ::recv in the readable handler), one
// interprocedural (a sleep inside an unannotated helper the handler calls).
#include <chrono>
#include <sys/socket.h>
#include <thread>

#include "../../src/common/thread_annotations.h"

namespace fixture_br {

class PollerBad {
 public:
  void on_readable(int fd) EPPI_LOOP_AFFINE;

 private:
  void backoff();

  char buf_[256] = {};
  long received_ = 0;
};

void PollerBad::on_readable(int fd) {
  long n = ::recv(fd, buf_, sizeof(buf_), 0);  // eppi-analyze-expect: blocking-in-reactor
  received_ += n;
  backoff();
}

void PollerBad::backoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // eppi-analyze-expect: blocking-in-reactor
}

}  // namespace fixture_br
