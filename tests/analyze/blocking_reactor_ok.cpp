// Clean twin: the readable handler uses a nonblocking ::recv, and the only
// sleep lives in a worker entry point that is not reachable from the loop.
#include <chrono>
#include <sys/socket.h>
#include <thread>

#include "../../src/common/thread_annotations.h"

namespace fixture_br {

class PollerOk {
 public:
  void on_readable(int fd) EPPI_LOOP_AFFINE;
  void worker_entry();  // runs on its own std::thread, never on the loop

 private:
  char buf_[256] = {};
  long received_ = 0;
};

void PollerOk::on_readable(int fd) {
  long n = ::recv(fd, buf_, sizeof(buf_), MSG_DONTWAIT);
  if (n > 0) {
    received_ += n;
  }
}

void PollerOk::worker_entry() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace fixture_br
