// Seeded violation: two objects acquire their mutexes in opposite orders —
// PeerBad::ping holds PeerBad::mu_ and calls into RouterBad::notify (which
// takes RouterBad::mu_), while RouterBad::route holds RouterBad::mu_ and
// calls back into PeerBad::on_ping (which takes PeerBad::mu_). Two threads
// running ping() and route() concurrently can deadlock.
#include "../../src/common/mutex.h"

namespace fixture_lo {

class RouterBad;

class PeerBad {
 public:
  void ping();
  void on_ping();

 private:
  eppi::Mutex mu_;
  RouterBad* router_ = nullptr;
  int pings_ = 0;
  int seq_ = 0;
};

class RouterBad {
 public:
  void route();
  void notify();

 private:
  eppi::Mutex mu_;
  PeerBad* peer_ = nullptr;
  int events_ = 0;
};

void PeerBad::ping() {
  eppi::MutexLock lock(mu_);
  ++seq_;
  router_->notify();  // eppi-analyze-expect: lock-order
}

void PeerBad::on_ping() {
  eppi::MutexLock lock(mu_);
  ++pings_;
}

void RouterBad::notify() {
  eppi::MutexLock lock(mu_);
  ++events_;
}

void RouterBad::route() {
  eppi::MutexLock lock(mu_);
  peer_->on_ping();
}

}  // namespace fixture_lo
