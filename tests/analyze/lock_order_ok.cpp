// Clean twin: same shape, but PeerOk::ping drops its own lock before calling
// into the router — the transports' documented drop-the-lock idiom — so the
// only acquisition edge is RouterOk::mu_ -> PeerOk::mu_ and the graph stays
// acyclic. This is a direct regression test for the analyzer's mid-scope
// lock.unlock()/lock.lock() region tracking: if that breaks, a phantom
// Peer -> Router edge appears and the self-test fails on a bogus cycle.
#include "../../src/common/mutex.h"

namespace fixture_lo {

class RouterOk;

class PeerOk {
 public:
  void ping();
  void on_ping();

 private:
  eppi::Mutex mu_;
  RouterOk* router_ = nullptr;
  int pings_ = 0;
  int seq_ = 0;
  int last_acked_ = 0;
};

class RouterOk {
 public:
  void route();
  void notify();

 private:
  eppi::Mutex mu_;
  PeerOk* peer_ = nullptr;
  int events_ = 0;
};

void PeerOk::ping() {
  eppi::MutexLock lock(mu_);
  int seq = ++seq_;
  lock.unlock();
  router_->notify();  // called with no locks held
  lock.lock();
  last_acked_ = seq;
}

void PeerOk::on_ping() {
  eppi::MutexLock lock(mu_);
  ++pings_;
}

void RouterOk::notify() {
  eppi::MutexLock lock(mu_);
  ++events_;
}

void RouterOk::route() {
  eppi::MutexLock lock(mu_);
  peer_->on_ping();
}

}  // namespace fixture_lo
