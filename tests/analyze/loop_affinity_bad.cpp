// Seeded violation: an EPPI_LOOP_AFFINE internal invoked directly from a
// cross-thread entry point. Loop-owned state may only be touched from the
// loop thread; the correct route is a post() hand-off (see the _ok twin).
#include <functional>

#include "../../src/common/thread_annotations.h"

namespace fixture_la {

class ReactorBad {
 public:
  void run() EPPI_LOOP_ENTRY;
  void post(std::function<void()> fn);
  void request_watch(int fd);  // callable from any thread

 private:
  void add_watch(int fd) EPPI_LOOP_AFFINE;

  int epoll_fd_ = -1;
  std::function<void()> pending_;
};

void ReactorBad::run() {
  add_watch(0);  // fine: run() establishes loop context
}

void ReactorBad::post(std::function<void()> fn) {
  pending_ = fn;
}

void ReactorBad::add_watch(int fd) {
  epoll_fd_ = fd;
}

void ReactorBad::request_watch(int fd) {
  add_watch(fd);  // eppi-analyze-expect: loop-affinity
}

}  // namespace fixture_la
