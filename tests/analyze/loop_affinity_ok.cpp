// Clean twin: the cross-thread entry point reaches the loop-affine internal
// through a post() hand-off, so the closure runs on the loop thread.
#include <functional>

#include "../../src/common/thread_annotations.h"

namespace fixture_la {

class ReactorOk {
 public:
  void run() EPPI_LOOP_ENTRY;
  void post(std::function<void()> fn);
  void request_watch(int fd);  // callable from any thread

 private:
  void add_watch(int fd) EPPI_LOOP_AFFINE;

  int epoll_fd_ = -1;
  std::function<void()> pending_;
};

void ReactorOk::run() {
  add_watch(0);
}

void ReactorOk::post(std::function<void()> fn) {
  pending_ = fn;
}

void ReactorOk::add_watch(int fd) {
  epoll_fd_ = fd;
}

void ReactorOk::request_watch(int fd) {
  post([this, fd] { add_watch(fd); });  // runs on the loop thread
}

}  // namespace fixture_la
