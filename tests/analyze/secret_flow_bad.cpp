// Seeded violations: opened secret values flowing into exported surfaces
// (trace attrs, metrics, logs) through locals, a returning helper, and a
// one-call-hop into a logging helper — the flows the same-line lint rules
// (escape-hatch, secret-trace-attr) cannot see.
#include <cstdint>
#include <string>

#include "../../src/common/logging.h"
#include "../../src/obs/trace.h"
#include "../../src/secret/secret.h"

namespace fixture_sf {

class TelemetryBad {
 public:
  void record_query(const eppi::Secret<std::uint64_t>& cost);
  void count_cost(const eppi::Secret<std::uint64_t>& cost);
  void emit(const eppi::Secret<std::uint64_t>& cost);
  void tally(const eppi::Secret<std::uint64_t>& cost);

 private:
  std::uint64_t open_cost(const eppi::Secret<std::uint64_t>& c);
  void log_value(std::uint64_t v);

  eppi::obs::Span span_;
  eppi::obs::Counter* counter_ = nullptr;
  eppi::obs::Histogram* hist_ = nullptr;
};

// Local taint: the revealed value lands in a trace attribute.
void TelemetryBad::record_query(const eppi::Secret<std::uint64_t>& cost) {
  std::uint64_t raw = cost.reveal();
  span_.attr("cost", raw);  // eppi-analyze-expect: secret-flow
}

// Direct: the unwrap happens inside the sink's argument list.
void TelemetryBad::count_cost(const eppi::Secret<std::uint64_t>& cost) {
  counter_->add(cost.unwrap_for_wire());  // eppi-analyze-expect: secret-flow
}

// One call hop: the tainted value is handed to a helper whose parameter
// reaches a log statement.
void TelemetryBad::log_value(std::uint64_t v) {
  EPPI_WARN("observed value " << v);
}

void TelemetryBad::emit(const eppi::Secret<std::uint64_t>& cost) {
  std::uint64_t raw = cost.reveal();
  log_value(raw);  // eppi-analyze-expect: secret-flow
}

// Return hop: a helper whose return value carries the opened secret.
std::uint64_t TelemetryBad::open_cost(
    const eppi::Secret<std::uint64_t>& c) {
  return c.reveal();
}

void TelemetryBad::tally(const eppi::Secret<std::uint64_t>& cost) {
  std::uint64_t opened = open_cost(cost);
  hist_->record(opened);  // eppi-analyze-expect: secret-flow
}

}  // namespace fixture_sf
