// Clean twin: telemetry records aggregate, non-secret quantities, and the
// revealed value is used only for protocol math — it never reaches a trace,
// metric, log, or storage sink.
#include <cstdint>
#include <string>

#include "../../src/common/logging.h"
#include "../../src/obs/trace.h"
#include "../../src/secret/secret.h"

namespace fixture_sf {

class TelemetryOk {
 public:
  void record_query(const eppi::Secret<std::uint64_t>& cost);
  std::uint64_t open_for_protocol(const eppi::Secret<std::uint64_t>& c);

 private:
  eppi::obs::Span span_;
  std::uint64_t query_count_ = 0;
  std::uint64_t protocol_sum_ = 0;
};

void TelemetryOk::record_query(const eppi::Secret<std::uint64_t>& cost) {
  // Counting queries is fine; only the secret value itself may not leak.
  ++query_count_;
  span_.attr("queries", query_count_);
  (void)cost;
}

std::uint64_t TelemetryOk::open_for_protocol(
    const eppi::Secret<std::uint64_t>& c) {
  std::uint64_t opened = c.reveal();
  protocol_sum_ += opened;  // protocol arithmetic, not an exported surface
  return opened;
}

}  // namespace fixture_sf
