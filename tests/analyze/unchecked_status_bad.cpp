// Seeded violations: error returns dropped on the floor — a POSIX fd op,
// a status-returning Vfs read, and a repo function declared [[nodiscard]].
#include <string>
#include <unistd.h>

#include "../../src/storage/vfs.h"

namespace fixture_us {

[[nodiscard]] bool flush_index(int fd);

class StoreBad {
 public:
  void touch(int fd);
  void probe(const std::string& path);
  void close_all(int fd);

 private:
  eppi::storage::Vfs vfs_;
  int errors_ = 0;
};

void StoreBad::touch(int fd) {
  ::ftruncate(fd, 0);  // eppi-analyze-expect: unchecked-status
}

void StoreBad::probe(const std::string& path) {
  vfs_.exists(path);  // eppi-analyze-expect: unchecked-status
}

void StoreBad::close_all(int fd) {
  flush_index(fd);  // eppi-analyze-expect: unchecked-status
}

}  // namespace fixture_us
