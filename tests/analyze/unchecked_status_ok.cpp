// Clean twin: every status return is checked, bound, (void)-acknowledged,
// or suppressed with a reasoned allow — the four accepted idioms.
#include <string>
#include <sys/epoll.h>
#include <unistd.h>

#include "../../src/storage/vfs.h"

namespace fixture_us {

[[nodiscard]] bool flush_index_ok(int fd);

class StoreOk {
 public:
  void touch(int fd);
  void probe(const std::string& path);
  void close_all(int fd);
  void drop_watch(int epfd, int fd);

 private:
  eppi::storage::Vfs vfs_;
  int errors_ = 0;
  bool flushed_ = false;
};

void StoreOk::touch(int fd) {
  if (::ftruncate(fd, 0) != 0) {
    ++errors_;
  }
}

void StoreOk::probe(const std::string& path) {
  (void)vfs_.exists(path);  // probe only warms the dentry cache
}

void StoreOk::close_all(int fd) {
  flushed_ = flush_index_ok(fd);
}

void StoreOk::drop_watch(int epfd, int fd) {
  ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr);  // eppi-analyze: allow(unchecked-status): kernel drops the watch on close; delete is advisory
}

}  // namespace fixture_us
