#include <gtest/gtest.h>

#include "attack/collusion.h"
#include "attack/common_identity_attack.h"
#include "attack/primary_attack.h"
#include "attack/privacy_degree.h"
#include "common/error.h"
#include "core/constructor.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"
#include "secret/sec_sum_share.h"

namespace eppi::attack {
namespace {

TEST(PrimaryAttackTest, NoNoiseMeansCertainSuccess) {
  eppi::Rng rng(1);
  const auto net = eppi::dataset::make_network_with_frequencies(
      20, std::vector<std::uint64_t>{5}, rng);
  // Publishing the truth directly (NoProtect scenario).
  const auto result =
      primary_attack(net.membership, net.membership, 0, 100, rng);
  EXPECT_EQ(result.trials, 100u);
  EXPECT_EQ(result.successes, 100u);
  EXPECT_DOUBLE_EQ(exact_confidence(net.membership, net.membership, 0), 1.0);
}

TEST(PrimaryAttackTest, NoiseBoundsConfidence) {
  eppi::Rng rng(2);
  constexpr std::size_t kM = 500;
  const auto net = eppi::dataset::make_network_with_frequencies(
      kM, std::vector<std::uint64_t>{50}, rng);
  // Publish with β chosen for ε = 0.8.
  const std::vector<double> betas{
      eppi::core::beta_chernoff(0.1, 0.8, 0.95, kM)};
  const auto published =
      eppi::core::publish_matrix(net.membership, betas, rng);
  const double confidence = exact_confidence(net.membership, published, 0);
  EXPECT_LE(confidence, 0.25);  // 1 − ε with slack
  const auto empirical =
      primary_attack(net.membership, published, 0, 4000, rng);
  EXPECT_NEAR(empirical.empirical_confidence(), confidence, 0.03);
}

TEST(PrimaryAttackTest, UnclaimedIdentityYieldsNoTrials) {
  eppi::Rng rng(3);
  const eppi::BitMatrix truth(5, 1);
  const auto result = primary_attack(truth, truth, 0, 50, rng);
  EXPECT_EQ(result.trials, 0u);
  EXPECT_EQ(result.empirical_confidence(), 0.0);
}

TEST(PrimaryAttackTest, ExactConfidencesPerIdentity) {
  eppi::BitMatrix truth(4, 2);
  truth.set(0, 0, true);
  eppi::BitMatrix claims(4, 2);
  claims.set(0, 0, true);
  claims.set(1, 0, true);
  const auto confs = exact_confidences(truth, claims);
  EXPECT_DOUBLE_EQ(confs[0], 0.5);
  EXPECT_EQ(confs[1], 0.0);
}

TEST(CommonAttackTest, ExactKnowledgeIdentifiesPerfectly) {
  // SS-PPI scenario: attacker knows exact frequencies.
  eppi::Rng rng(4);
  std::vector<std::uint64_t> freqs(20, 2);
  freqs[0] = 19;
  freqs[1] = 18;
  const auto net =
      eppi::dataset::make_network_with_frequencies(20, freqs, rng);
  const auto result =
      common_identity_attack(net.membership, freqs, 15, 50, rng);
  EXPECT_EQ(result.candidates, 2u);
  EXPECT_EQ(result.identity_hits, 2u);
  EXPECT_DOUBLE_EQ(result.identification_confidence(), 1.0);
  // Claims against near-ubiquitous identities almost always succeed.
  EXPECT_GT(result.claim_confidence(), 0.8);
}

TEST(CommonAttackTest, MixedDecoysDiluteConfidence) {
  // ε-PPI scenario: the attacker only sees the apparent-common set, which
  // contains λ-mixed decoys.
  eppi::Rng rng(5);
  std::vector<std::uint64_t> freqs(40, 2);
  freqs[0] = 39;
  const auto net =
      eppi::dataset::make_network_with_frequencies(40, freqs, rng);
  // Apparent knowledge: true common + 3 decoys all look maximal.
  std::vector<std::uint64_t> knowledge(40, 2);
  knowledge[0] = 40;
  knowledge[5] = 40;
  knowledge[6] = 40;
  knowledge[7] = 40;
  const auto result =
      common_identity_attack(net.membership, knowledge, 35, 10, rng);
  EXPECT_EQ(result.candidates, 4u);
  EXPECT_EQ(result.identity_hits, 1u);
  EXPECT_DOUBLE_EQ(result.identification_confidence(), 0.25);
}

TEST(CommonAttackTest, TrulyCommonFlags) {
  eppi::Rng rng(6);
  const auto net = eppi::dataset::make_network_with_frequencies(
      10, std::vector<std::uint64_t>{9, 3}, rng);
  const auto flags = truly_common_flags(net.membership, 8);
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
}

TEST(PrivacyDegreeTest, ClassifiesEpsPrivate) {
  const std::vector<double> confidences{0.2, 0.3, 0.1};
  const std::vector<double> epsilons{0.7, 0.6, 0.8};
  EXPECT_EQ(classify_degree(confidences, epsilons),
            PrivacyDegree::kEpsPrivate);
}

TEST(PrivacyDegreeTest, ClassifiesNoProtect) {
  const std::vector<double> confidences{1.0, 1.0, 0.9999};
  const std::vector<double> epsilons{0.7, 0.6, 0.8};
  EXPECT_EQ(classify_degree(confidences, epsilons),
            PrivacyDegree::kNoProtect);
}

TEST(PrivacyDegreeTest, ClassifiesNoGuarantee) {
  const std::vector<double> confidences{0.9, 0.1, 0.95, 0.2};
  const std::vector<double> epsilons{0.8, 0.8, 0.8, 0.8};
  EXPECT_EQ(classify_degree(confidences, epsilons),
            PrivacyDegree::kNoGuarantee);
}

TEST(PrivacyDegreeTest, EmptyIsUnleaked) {
  EXPECT_EQ(classify_degree({}, {}), PrivacyDegree::kUnleaked);
}

TEST(PrivacyDegreeTest, BoundSatisfactionFraction) {
  const std::vector<double> confidences{0.2, 0.9};
  const std::vector<double> epsilons{0.5, 0.5};
  EXPECT_DOUBLE_EQ(bound_satisfaction(confidences, epsilons), 0.5);
}

TEST(PrivacyDegreeTest, ToStringNames) {
  EXPECT_EQ(to_string(PrivacyDegree::kEpsPrivate), "eps-PRIVATE");
  EXPECT_EQ(to_string(PrivacyDegree::kNoProtect), "NoProtect");
  EXPECT_EQ(to_string(PrivacyDegree::kNoGuarantee), "NoGuarantee");
  EXPECT_EQ(to_string(PrivacyDegree::kUnleaked), "Unleaked");
}

TEST(CollusionObserverTest, FewerThanCSharesLookUniform) {
  // Run SecSumShare over a network whose identity frequencies are all equal;
  // if partial views leaked the sum, the pooled statistic would concentrate.
  constexpr std::size_t kM = 12;
  constexpr std::size_t kC = 3;
  constexpr std::size_t kN = 512;
  std::vector<std::vector<std::uint8_t>> inputs(
      kM, std::vector<std::uint8_t>(kN, 1));  // every frequency = 12
  eppi::net::Cluster cluster(kM, 7);
  std::vector<std::vector<std::uint64_t>> views(kC);
  const eppi::secret::SecSumShareParams params{kC, 0, kN};
  cluster.run([&](eppi::net::PartyContext& ctx) {
    const auto result =
        eppi::secret::run_sec_sum_share_party(ctx, params, inputs[ctx.id()]);
    // The observer models an adversary pooling coordinator views: a
    // deliberate opening of each colluder's shares.
    if (ctx.id() < kC) views[ctx.id()] = eppi::secret::reveal_shares(*result);
  });
  const auto ring = eppi::secret::resolve_ring(params, kM);
  const CollusionObserver observer(views, ring.q());

  // Any 2-of-3 coalition: partial sums spread over Z_q (chi2 below a loose
  // 4x-buckets bound); with all 3 views the sum is constant (=12).
  const std::size_t coalition_a[] = {0, 1};
  const std::size_t coalition_b[] = {1, 2};
  EXPECT_LT(observer.uniformity_chi2(coalition_a, 4), 30.0);
  EXPECT_LT(observer.uniformity_chi2(coalition_b, 4), 30.0);
  const std::size_t all[] = {0, 1, 2};
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_EQ(observer.partial_sum(all, j), 12u);
  }
}

TEST(CollusionObserverTest, Validates) {
  EXPECT_THROW(CollusionObserver({}, 8), eppi::ConfigError);
  std::vector<std::vector<std::uint64_t>> views{{1, 2}, {3}};
  EXPECT_THROW(CollusionObserver(views, 8), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::attack
