#include "attack/beta_inversion.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/constructor.h"
#include "dataset/synthetic.h"

namespace eppi::attack {
namespace {

using eppi::core::BetaPolicy;

TEST(BetaInversionTest, BasicClosedFormRoundTrip) {
  const BetaPolicy policy = BetaPolicy::basic();
  for (const double sigma : {0.01, 0.05, 0.2, 0.4}) {
    for (const double eps : {0.3, 0.5, 0.8}) {
      const double beta = eppi::core::beta_raw(policy, sigma, eps, 1000);
      if (beta >= 1.0) continue;
      const auto recovered = invert_beta(policy, beta, eps, 1000);
      ASSERT_TRUE(recovered.has_value());
      EXPECT_NEAR(*recovered, sigma, 1e-9)
          << "sigma=" << sigma << " eps=" << eps;
    }
  }
}

TEST(BetaInversionTest, IncExpRoundTrip) {
  const BetaPolicy policy = BetaPolicy::inc_exp(0.02);
  const double beta = eppi::core::beta_raw(policy, 0.1, 0.5, 500);
  const auto recovered = invert_beta(policy, beta, 0.5, 500);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_NEAR(*recovered, 0.1, 1e-9);
}

TEST(BetaInversionTest, ChernoffBisectionRoundTrip) {
  const BetaPolicy policy = BetaPolicy::chernoff(0.9);
  for (const double sigma : {0.02, 0.1, 0.3}) {
    const double beta = eppi::core::beta_raw(policy, sigma, 0.5, 2000);
    if (beta >= 1.0) continue;
    const auto recovered = invert_beta(policy, beta, 0.5, 2000);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_NEAR(*recovered, sigma, 1e-6) << "sigma=" << sigma;
  }
}

TEST(BetaInversionTest, FrequencyRecoveryIsExact) {
  const BetaPolicy policy = BetaPolicy::chernoff(0.9);
  constexpr std::size_t kM = 1000;
  for (const std::uint64_t freq : {7ull, 42ull, 150ull}) {
    const double sigma = static_cast<double>(freq) / kM;
    const double beta = eppi::core::beta_raw(policy, sigma, 0.6, kM);
    if (beta >= 1.0) continue;
    const auto recovered = invert_beta_frequency(policy, beta, 0.6, kM);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(*recovered, freq);
  }
}

TEST(BetaInversionTest, SaturatedBetaIsUninvertible) {
  // β = 1 (mixed / common) has no point preimage — the defense.
  const BetaPolicy policy = BetaPolicy::basic();
  EXPECT_FALSE(invert_beta(policy, 1.0, 0.5, 100).has_value());
  EXPECT_FALSE(invert_beta(policy, 1.7, 0.5, 100).has_value());
  EXPECT_FALSE(invert_beta(policy, 0.0, 0.5, 100).has_value());
}

TEST(BetaInversionTest, ValidatesInput) {
  EXPECT_THROW(invert_beta(BetaPolicy::basic(), 0.5, 1.5, 100),
               eppi::ConfigError);
  EXPECT_THROW(invert_beta(BetaPolicy::basic(), 0.5, 0.5, 0),
               eppi::ConfigError);
}

// End-to-end: the β vector released by construction reveals unmixed
// frequencies exactly, and nothing about mixed ones — the quantitative
// version of §IV-C's "β does not carry any private information" claim.
TEST(BetaInversionTest, ConstructionBetasInvertOnlyForUnmixed) {
  eppi::Rng rng(9);
  constexpr std::size_t kM = 400;
  std::vector<std::uint64_t> freqs(50, 0);
  for (auto& f : freqs) f = 1 + rng.next_below(40);
  freqs[0] = 399;  // common
  const auto net = eppi::dataset::make_network_with_frequencies(kM, freqs, rng);
  const std::vector<double> eps(50, 0.7);
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto info =
      eppi::core::calculate_betas(net.membership, eps, options, rng);
  for (std::size_t j = 0; j < 50; ++j) {
    const auto recovered =
        invert_beta_frequency(options.policy, info.betas[j], eps[j], kM);
    if (info.is_apparent_common[j]) {
      EXPECT_FALSE(recovered.has_value()) << "identity " << j;
    } else {
      ASSERT_TRUE(recovered.has_value()) << "identity " << j;
      EXPECT_EQ(*recovered, freqs[j]) << "identity " << j;
    }
  }
}

}  // namespace
}  // namespace eppi::attack
