#include "attack/collusion_attack.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/beta_policy.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi::attack {
namespace {

struct AttackSetup {
  eppi::BitMatrix truth;
  eppi::BitMatrix published;
};

AttackSetup make_setup(std::size_t m, std::size_t freq, double eps,
                 std::uint64_t seed) {
  eppi::Rng rng(seed);
  const auto net = eppi::dataset::make_network_with_frequencies(
      m, std::vector<std::uint64_t>{freq}, rng);
  const double sigma = static_cast<double>(freq) / static_cast<double>(m);
  const std::vector<double> betas{eppi::core::beta_clamped(
      eppi::core::BetaPolicy::chernoff(0.9), sigma, eps, m)};
  AttackSetup s{net.membership,
          eppi::core::publish_matrix(net.membership, betas, rng)};
  return s;
}

TEST(CollusionAttackTest, EmptyCoalitionEqualsPrimaryAttack) {
  const AttackSetup s = make_setup(500, 25, 0.6, 1);
  const auto result =
      colluding_primary_attack(s.truth, s.published, 0, {});
  std::size_t claims = 0;
  std::size_t true_pos = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    if (!s.published.get(i, 0)) continue;
    ++claims;
    if (s.truth.get(i, 0)) ++true_pos;
  }
  EXPECT_EQ(result.outside_claims, claims);
  EXPECT_EQ(result.outside_true, true_pos);
  EXPECT_EQ(result.coalition_claims, 0u);
}

TEST(CollusionAttackTest, FullCoalitionLeavesNoOutsideClaims) {
  const AttackSetup s = make_setup(100, 10, 0.5, 2);
  std::vector<std::size_t> everyone(100);
  for (std::size_t i = 0; i < 100; ++i) everyone[i] = i;
  const auto result =
      colluding_primary_attack(s.truth, s.published, 0, everyone);
  EXPECT_EQ(result.outside_claims, 0u);
  EXPECT_EQ(result.outside_confidence(), 0.0);
}

TEST(CollusionAttackTest, IndependentNoiseKeepsOutsideConfidenceBounded) {
  // The paper's independence argument: because providers flip coins
  // independently, excluding a random coalition leaves the remaining
  // false-positive rate at ~eps, so outside confidence stays ~1 - eps.
  const AttackSetup s = make_setup(2000, 40, 0.7, 3);
  eppi::Rng rng(4);
  const std::vector<std::size_t> sizes{0, 100, 500, 1000};
  const auto curve = collusion_confidence_curve(s.truth, s.published, 0,
                                                sizes, 10, rng);
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    EXPECT_LE(curve[k], 0.3 + 0.1) << "coalition size " << sizes[k];
  }
}

TEST(CollusionAttackTest, TargetedCoalitionOfTruePositivesRaisesNothing) {
  // Even a coalition containing every true positive only learns its own
  // records; claims against outsiders are then *always* wrong.
  const AttackSetup s = make_setup(300, 15, 0.5, 5);
  std::vector<std::size_t> holders;
  for (std::size_t i = 0; i < 300; ++i) {
    if (s.truth.get(i, 0)) holders.push_back(i);
  }
  const auto result =
      colluding_primary_attack(s.truth, s.published, 0, holders);
  EXPECT_EQ(result.outside_true, 0u);
  EXPECT_EQ(result.outside_confidence(), 0.0);
}

TEST(CollusionAttackTest, Validates) {
  const AttackSetup s = make_setup(50, 5, 0.5, 6);
  const std::vector<std::size_t> bad{50};
  EXPECT_THROW(colluding_primary_attack(s.truth, s.published, 0, bad),
               eppi::ConfigError);
  EXPECT_THROW(colluding_primary_attack(s.truth, s.published, 1, {}),
               eppi::ConfigError);
  eppi::Rng rng(7);
  const std::vector<std::size_t> too_big{51};
  EXPECT_THROW(collusion_confidence_curve(s.truth, s.published, 0, too_big,
                                          1, rng),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::attack
