#include "attack/threat_report.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/constructor.h"
#include "dataset/synthetic.h"

namespace eppi::attack {
namespace {

struct World {
  eppi::dataset::Network network;
  std::vector<double> epsilons;
  eppi::core::ConstructionResult eppi_result;
};

World make_world(std::uint64_t seed) {
  eppi::Rng rng(seed);
  World w;
  std::vector<std::uint64_t> freqs(100, 2);
  // Six true common identities so the expected decoy count
  // (xi/(1-xi) * |common|) is large enough to concentrate.
  for (std::size_t j = 0; j < 6; ++j) freqs[j] = 195 - j;
  w.network = eppi::dataset::make_network_with_frequencies(200, freqs, rng);
  w.epsilons = eppi::dataset::random_epsilons(100, rng, 0.4, 0.8);
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.95);
  w.eppi_result = eppi::core::construct_centralized(w.network.membership,
                                                    w.epsilons, options, rng);
  return w;
}

TEST(ThreatReportTest, EpsPpiAuditsAsEpsPrivate) {
  World w = make_world(1);
  eppi::Rng rng(2);
  const auto report =
      audit_index(w.network.membership, w.eppi_result.index.matrix(),
                  w.epsilons, w.eppi_result.info.is_common, rng);
  EXPECT_EQ(report.primary_degree, PrivacyDegree::kEpsPrivate);
  EXPECT_EQ(report.common_degree, PrivacyDegree::kEpsPrivate);
  EXPECT_GE(report.bound_satisfaction, 0.95);
  EXPECT_LE(report.common_identification_confidence,
            1.0 - report.xi + 0.15);
  EXPECT_GT(report.common_candidates, report.common_hits);
}

TEST(ThreatReportTest, NaiveIndexAuditsAsNoProtect) {
  World w = make_world(3);
  eppi::Rng rng(4);
  // Publishing the truth: every primary attack succeeds with certainty.
  const auto report =
      audit_index(w.network.membership, w.network.membership, w.epsilons,
                  w.eppi_result.info.is_common, rng);
  EXPECT_EQ(report.primary_degree, PrivacyDegree::kNoProtect);
  EXPECT_NEAR(report.primary_mean_confidence, 1.0, 1e-9);
  // Only the true commons have (nearly) full columns: identification is
  // certain.
  EXPECT_EQ(report.common_degree, PrivacyDegree::kUnleaked);
}

TEST(ThreatReportTest, InfeasibleOwnersAreExcluded) {
  World w = make_world(5);
  eppi::Rng rng(6);
  const auto with_filter =
      audit_index(w.network.membership, w.eppi_result.index.matrix(),
                  w.epsilons, w.eppi_result.info.is_common, rng);
  ThreatReportOptions no_filter;
  no_filter.exclude_infeasible = false;
  const auto without_filter =
      audit_index(w.network.membership, w.eppi_result.index.matrix(),
                  w.epsilons, w.eppi_result.info.is_common, rng, no_filter);
  EXPECT_LE(with_filter.owners_classified,
            without_filter.owners_classified);
  EXPECT_EQ(without_filter.owners_classified, 100u);
}

TEST(ThreatReportTest, XiIsMaxEpsilonOverCommons) {
  World w = make_world(7);
  eppi::Rng rng(8);
  const auto report =
      audit_index(w.network.membership, w.eppi_result.index.matrix(),
                  w.epsilons, w.eppi_result.info.is_common, rng);
  double expected = 0.0;
  for (std::size_t j = 0; j < 100; ++j) {
    if (w.eppi_result.info.is_common[j]) {
      expected = std::max(expected, w.epsilons[j]);
    }
  }
  EXPECT_DOUBLE_EQ(report.xi, expected);
}

TEST(ThreatReportTest, ValidatesShapes) {
  World w = make_world(9);
  eppi::Rng rng(10);
  const std::vector<double> wrong_eps(3, 0.5);
  EXPECT_THROW(audit_index(w.network.membership,
                           w.eppi_result.index.matrix(), wrong_eps,
                           w.eppi_result.info.is_common, rng),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::attack
