#include "baseline/grouping_ppi.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "dataset/synthetic.h"

namespace eppi::baseline {
namespace {

eppi::BitMatrix sample_truth(eppi::Rng& rng, std::size_t m = 20,
                             std::size_t n = 10) {
  eppi::BitMatrix truth(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.15)) truth.set(i, j, true);
    }
  }
  return truth;
}

TEST(GroupingPpiTest, GroupSizesAreBalanced) {
  eppi::Rng rng(1);
  const auto truth = sample_truth(rng, 23, 5);
  const GroupingPpi ppi(truth, 5, rng);
  std::vector<std::size_t> sizes(5, 0);
  for (std::size_t i = 0; i < 23; ++i) ++sizes[ppi.group_of(i)];
  for (const std::size_t s : sizes) {
    EXPECT_GE(s, 4u);
    EXPECT_LE(s, 5u);
  }
}

TEST(GroupingPpiTest, QueryCoversAllTruePositives) {
  eppi::Rng rng(2);
  const auto truth = sample_truth(rng);
  const GroupingPpi ppi(truth, 4, rng);
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    const auto result = ppi.query(static_cast<eppi::core::IdentityId>(j));
    const std::set<eppi::core::ProviderId> contacted(result.begin(),
                                                     result.end());
    for (std::size_t i = 0; i < truth.rows(); ++i) {
      if (truth.get(i, j)) {
        EXPECT_TRUE(contacted.count(static_cast<eppi::core::ProviderId>(i)))
            << "provider " << i << " identity " << j;
      }
    }
  }
}

TEST(GroupingPpiTest, QueryReturnsWholeGroups) {
  eppi::Rng rng(3);
  const auto truth = sample_truth(rng);
  const GroupingPpi ppi(truth, 4, rng);
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    const auto result = ppi.query(static_cast<eppi::core::IdentityId>(j));
    const std::set<eppi::core::ProviderId> contacted(result.begin(),
                                                     result.end());
    // If any member of a group is contacted, all members are.
    for (const auto p : result) {
      for (std::size_t i = 0; i < truth.rows(); ++i) {
        if (ppi.group_of(i) == ppi.group_of(p)) {
          EXPECT_TRUE(contacted.count(static_cast<eppi::core::ProviderId>(i)));
        }
      }
    }
  }
}

TEST(GroupingPpiTest, ProviderViewMatchesQueries) {
  eppi::Rng rng(4);
  const auto truth = sample_truth(rng);
  const GroupingPpi ppi(truth, 4, rng);
  const auto& view = ppi.provider_view();
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    const auto result = ppi.query(static_cast<eppi::core::IdentityId>(j));
    const std::set<eppi::core::ProviderId> contacted(result.begin(),
                                                     result.end());
    for (std::size_t i = 0; i < truth.rows(); ++i) {
      EXPECT_EQ(view.get(i, j),
                contacted.count(static_cast<eppi::core::ProviderId>(i)) > 0);
    }
  }
}

TEST(GroupingPpiTest, SingleGroupBroadcastsEverything) {
  eppi::Rng rng(5);
  const auto truth = sample_truth(rng);
  const GroupingPpi ppi(truth, 1, rng);
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    if (truth.col_count(j) > 0) {
      EXPECT_EQ(ppi.query(static_cast<eppi::core::IdentityId>(j)).size(),
                truth.rows());
    }
  }
}

TEST(GroupingPpiTest, GroupsOfOneLeakEverything) {
  // Degenerate grouping (m groups): the view equals the truth — the privacy
  // failure mode of grouping taken to the limit.
  eppi::Rng rng(6);
  const auto truth = sample_truth(rng);
  const GroupingPpi ppi(truth, truth.rows(), rng);
  EXPECT_EQ(ppi.provider_view(), truth);
}

TEST(GroupingPpiTest, ValidatesParameters) {
  eppi::Rng rng(7);
  const auto truth = sample_truth(rng);
  EXPECT_THROW(GroupingPpi(truth, 0, rng), eppi::ConfigError);
  EXPECT_THROW(GroupingPpi(truth, truth.rows() + 1, rng), eppi::ConfigError);
  const GroupingPpi ppi(truth, 4, rng);
  EXPECT_THROW(ppi.group_of(truth.rows()), eppi::ConfigError);
  EXPECT_THROW(ppi.query(static_cast<eppi::core::IdentityId>(truth.cols())),
               eppi::ConfigError);
}

TEST(SsPpiTest, LeaksExactFrequencies) {
  eppi::Rng rng(8);
  const auto truth = sample_truth(rng);
  const SsPpi ppi(truth, 4, rng);
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    EXPECT_EQ(ppi.leaked_frequencies[j], truth.col_count(j));
  }
}

TEST(GroupingPpiTest, ApparentFrequencyNeverBelowTrue) {
  eppi::Rng rng(9);
  const auto truth = sample_truth(rng);
  const GroupingPpi ppi(truth, 5, rng);
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    EXPECT_GE(ppi.apparent_frequency(static_cast<eppi::core::IdentityId>(j)),
              truth.col_count(j));
  }
}

}  // namespace
}  // namespace eppi::baseline
