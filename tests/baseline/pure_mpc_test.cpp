#include "baseline/pure_mpc_runner.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dataset/synthetic.h"
#include "mpc/gmw.h"

namespace eppi::baseline {
namespace {

TEST(PureMpcRunnerTest, ComputesCorrectCountAndFrequencies) {
  eppi::Rng rng(1);
  const auto net = eppi::dataset::make_network_with_frequencies(
      5, std::vector<std::uint64_t>{4, 1, 2}, rng);
  const std::vector<std::uint64_t> thresholds{3, 3, 3};
  PureMpcRunOptions options;
  options.lambda = 0.0;
  const auto result = run_pure_mpc(net.membership, thresholds, options);
  EXPECT_EQ(result.output.common_count, 1u);
  ASSERT_EQ(result.output.identities.size(), 3u);
  EXPECT_TRUE(result.output.identities[0].mixed);
  EXPECT_EQ(result.output.identities[0].frequency, 0u);  // hidden
  EXPECT_FALSE(result.output.identities[1].mixed);
  EXPECT_EQ(result.output.identities[1].frequency, 1u);
  EXPECT_EQ(result.output.identities[2].frequency, 2u);
}

TEST(PureMpcRunnerTest, CostGrowsWithProviders) {
  eppi::Rng rng(2);
  const std::vector<std::uint64_t> thresholds{2};
  PureMpcRunOptions options;
  const auto small = run_pure_mpc(
      eppi::dataset::make_network_with_frequencies(
          3, std::vector<std::uint64_t>{1}, rng)
          .membership,
      thresholds, options);
  const auto large = run_pure_mpc(
      eppi::dataset::make_network_with_frequencies(
          9, std::vector<std::uint64_t>{1}, rng)
          .membership,
      thresholds, options);
  EXPECT_GT(large.stats.total_gates(), small.stats.total_gates());
  EXPECT_GT(large.cost.messages, small.cost.messages);
  EXPECT_GT(large.cost.bytes, small.cost.bytes);
}

TEST(PureMpcRunnerTest, ValidatesInput) {
  eppi::Rng rng(3);
  const auto net = eppi::dataset::make_network_with_frequencies(
      4, std::vector<std::uint64_t>{1}, rng);
  const std::vector<std::uint64_t> wrong_thresholds{1, 2};
  EXPECT_THROW(run_pure_mpc(net.membership, wrong_thresholds, {}),
               eppi::ConfigError);
}

TEST(PureMpcRunnerTest, LambdaOneMixesEverything) {
  eppi::Rng rng(4);
  const auto net = eppi::dataset::make_network_with_frequencies(
      4, std::vector<std::uint64_t>{1, 2}, rng);
  const std::vector<std::uint64_t> thresholds{4, 4};
  PureMpcRunOptions options;
  options.lambda = 1.0;
  const auto result = run_pure_mpc(net.membership, thresholds, options);
  for (const auto& id : result.output.identities) {
    EXPECT_TRUE(id.mixed);
    EXPECT_EQ(id.frequency, 0u);
  }
}

}  // namespace
}  // namespace eppi::baseline
