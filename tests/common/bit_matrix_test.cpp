#include "common/bit_matrix.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace eppi {
namespace {

TEST(BitMatrixTest, StartsAllZero) {
  const BitMatrix m(4, 70);  // spans two words per row
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 70; ++j) {
      EXPECT_FALSE(m.get(i, j));
    }
  }
  EXPECT_EQ(m.popcount(), 0u);
}

TEST(BitMatrixTest, SetAndClear) {
  BitMatrix m(3, 65);
  m.set(1, 64, true);
  EXPECT_TRUE(m.get(1, 64));
  EXPECT_FALSE(m.get(0, 64));
  EXPECT_FALSE(m.get(1, 63));
  m.set(1, 64, false);
  EXPECT_FALSE(m.get(1, 64));
}

TEST(BitMatrixTest, CountsAreConsistent) {
  BitMatrix m(10, 100);
  Rng rng(99);
  std::size_t total = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 100; ++j) {
      if (rng.bernoulli(0.3)) {
        m.set(i, j, true);
        ++total;
      }
    }
  }
  EXPECT_EQ(m.popcount(), total);
  std::size_t via_rows = 0;
  for (std::size_t i = 0; i < 10; ++i) via_rows += m.row_count(i);
  EXPECT_EQ(via_rows, total);
  std::size_t via_cols = 0;
  for (std::size_t j = 0; j < 100; ++j) via_cols += m.col_count(j);
  EXPECT_EQ(via_cols, total);
}

TEST(BitMatrixTest, OutOfRangeThrows) {
  BitMatrix m(2, 3);
  EXPECT_THROW(m.get(2, 0), ConfigError);
  EXPECT_THROW(m.get(0, 3), ConfigError);
  EXPECT_THROW(m.set(5, 5, true), ConfigError);
  EXPECT_THROW(m.col_count(3), ConfigError);
  EXPECT_THROW(m.row_count(2), ConfigError);
}

TEST(BitMatrixTest, OrWithMergesBits) {
  BitMatrix a(2, 10);
  BitMatrix b(2, 10);
  a.set(0, 1, true);
  b.set(1, 2, true);
  b.set(0, 1, true);
  a.or_with(b);
  EXPECT_TRUE(a.get(0, 1));
  EXPECT_TRUE(a.get(1, 2));
  EXPECT_EQ(a.popcount(), 2u);
}

TEST(BitMatrixTest, OrWithShapeMismatchThrows) {
  BitMatrix a(2, 10);
  BitMatrix b(2, 11);
  EXPECT_THROW(a.or_with(b), ConfigError);
}

TEST(BitMatrixTest, EqualityComparesContent) {
  BitMatrix a(2, 10);
  BitMatrix b(2, 10);
  EXPECT_EQ(a, b);
  a.set(1, 9, true);
  EXPECT_NE(a, b);
  b.set(1, 9, true);
  EXPECT_EQ(a, b);
}

TEST(BitMatrixTest, RowWordsExposePackedBits) {
  BitMatrix m(1, 128);
  m.set(0, 0, true);
  m.set(0, 64, true);
  EXPECT_EQ(m.words_per_row(), 2u);
  EXPECT_EQ(m.row_words(0)[0], 1u);
  EXPECT_EQ(m.row_words(0)[1], 1u);
}

}  // namespace
}  // namespace eppi
