#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace eppi {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return {s, s + std::strlen(s)};
}

TEST(Crc32cTest, StandardCheckValue) {
  // The published check value for the Castagnoli polynomial.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  const auto base = bytes_of("the quick brown fox");
  const std::uint32_t reference = crc32c(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = base;
      flipped[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(flipped), reference) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const auto data = bytes_of("split me anywhere and the crc must agree");
  const std::uint32_t whole = crc32c(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    const std::span<const std::uint8_t> all(data);
    const std::uint32_t chained =
        crc32c(all.subspan(cut), crc32c(all.subspan(0, cut)));
    EXPECT_EQ(chained, whole) << "cut at " << cut;
  }
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (const std::uint32_t crc :
       {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xDEADBEEFu}) {
    EXPECT_EQ(crc32c_unmask(crc32c_mask(crc)), crc);
    EXPECT_NE(crc32c_mask(crc), crc);  // stored form differs from raw CRC
  }
}

}  // namespace
}  // namespace eppi
