// Pins the EPPI_LOG cost/semantics contract (logging.h):
//   - the stream expression is evaluated only when the level passes, so side
//     effects inside a suppressed log statement never fire;
//   - level filtering is a total order over kDebug < kInfo < kWarn < kError;
//   - set_log_level is observed by subsequent log statements.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

namespace eppi {
namespace {

// Restores the global level, since tests in this binary share it.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

int noisy_counter = 0;
int noisy() { return ++noisy_counter; }

TEST_F(LoggingTest, SuppressedStatementHasNoSideEffects) {
  set_log_level(LogLevel::kError);
  noisy_counter = 0;
  EPPI_DEBUG("value " << noisy());
  EPPI_INFO("value " << noisy());
  EPPI_WARN("value " << noisy());
  EXPECT_EQ(noisy_counter, 0) << "suppressed EPPI_LOG evaluated its argument";
}

TEST_F(LoggingTest, EnabledStatementEvaluatesOnce) {
  set_log_level(LogLevel::kDebug);
  noisy_counter = 0;
  ::testing::internal::CaptureStderr();
  EPPI_DEBUG("value " << noisy());
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(noisy_counter, 1);
  EXPECT_NE(err.find("value 1"), std::string::npos);
}

TEST_F(LoggingTest, LevelFilteringIsAtLeastSemantics) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));

  ::testing::internal::CaptureStderr();
  EPPI_INFO("below");
  EPPI_WARN("at");
  EPPI_ERROR("above");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("below"), std::string::npos);
  EXPECT_NE(err.find("at"), std::string::npos);
  EXPECT_NE(err.find("above"), std::string::npos);
}

TEST_F(LoggingTest, SetLevelTakesEffectImmediately) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  ::testing::internal::CaptureStderr();
  EPPI_WARN("hidden");
  set_log_level(LogLevel::kDebug);
  EPPI_WARN("shown");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("shown"), std::string::npos);
}

TEST_F(LoggingTest, MessagesCarryLevelPrefix) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  EPPI_ERROR("boom");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[eppi "), std::string::npos);
  EXPECT_NE(err.find("boom"), std::string::npos);
}

TEST_F(LoggingTest, PrefixCarriesMonotonicTimestampAndThreadIndex) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  EPPI_ERROR("stamped");
  const std::string err = ::testing::internal::GetCapturedStderr();
  // "[eppi ERROR +<ms since process start>ms t<thread index>] stamped"
  const std::regex shape(
      R"(\[eppi ERROR \+[0-9]+\.[0-9]{3}ms t[0-9]+\] stamped)");
  EXPECT_TRUE(std::regex_search(err, shape)) << "got: " << err;
}

TEST_F(LoggingTest, TimestampsAreMonotoneAcrossStatements) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  EPPI_ERROR("first");
  EPPI_ERROR("second");
  const std::string err = ::testing::internal::GetCapturedStderr();
  const std::regex stamp(R"(\+([0-9]+\.[0-9]{3})ms)");
  std::vector<double> stamps;
  for (auto it = std::sregex_iterator(err.begin(), err.end(), stamp);
       it != std::sregex_iterator(); ++it) {
    stamps.push_back(std::stod((*it)[1].str()));
  }
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_LE(stamps[0], stamps[1]);
}

TEST_F(LoggingTest, OutputGoesToStderrOnly) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  EPPI_ERROR("stream check");
  const std::string out = ::testing::internal::GetCapturedStdout();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << "logger wrote to stdout: " << out;
  EXPECT_NE(err.find("stream check"), std::string::npos);
}

}  // namespace
}  // namespace eppi
