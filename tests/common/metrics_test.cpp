// Pins ServingMetrics quantile/edge semantics (common/metrics.h):
//   - quantile_us on an empty histogram is 0, not bucket 0's upper edge;
//   - q is clamped into [0,1], with q=0 meaning "the first sample";
//   - bucket boundaries: a sample at exactly 2^k lands in bucket k and is
//     reported as that bucket's upper edge 2^(k+1);
//   - instances registered on the metrics registry stay independent.
#include "common/metrics.h"

#include <gtest/gtest.h>

namespace eppi {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramQuantileIsZero) {
  LatencyHistogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.quantile_us(0.0), 0.0);
  EXPECT_EQ(snap.quantile_us(0.5), 0.0);
  EXPECT_EQ(snap.quantile_us(0.99), 0.0);
  EXPECT_EQ(snap.quantile_us(1.0), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleOwnsEveryQuantile) {
  LatencyHistogram h;
  h.record(3.0);  // bucket 1: [2, 4)
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.quantile_us(0.0), 4.0);  // rank clamps up to sample 1
  EXPECT_EQ(snap.quantile_us(0.5), 4.0);
  EXPECT_EQ(snap.quantile_us(1.0), 4.0);
}

TEST(LatencyHistogramTest, OutOfRangeQIsClamped) {
  LatencyHistogram h;
  h.record(3.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.quantile_us(-1.0), snap.quantile_us(0.0));
  EXPECT_EQ(snap.quantile_us(2.0), snap.quantile_us(1.0));
}

TEST(LatencyHistogramTest, BucketBoundarySamplesReportUpperEdges) {
  LatencyHistogram h;
  h.record(1.0);  // bucket 0 (sub-2us), upper edge 2
  h.record(2.0);  // bucket 1: [2, 4), upper edge 4
  h.record(4.0);  // bucket 2: [4, 8), upper edge 8
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  // rank(q) = ceil(q * 3), clamped to >= 1: ranks 1, 1, 2, 3.
  EXPECT_EQ(snap.quantile_us(0.0), 2.0);
  EXPECT_EQ(snap.quantile_us(1.0 / 3.0), 2.0);
  EXPECT_EQ(snap.quantile_us(0.5), 4.0);
  EXPECT_EQ(snap.quantile_us(1.0), 8.0);
}

TEST(LatencyHistogramTest, SubMicrosecondAndGarbageLandInBucketZero) {
  LatencyHistogram h;
  h.record(0.5);
  h.record(-7.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.quantile_us(1.0), 2.0);
}

TEST(ServingMetricsTest, SnapshotReflectsRecordedCalls) {
  ServingMetrics m;
  m.record_query(3.0);
  m.record_batch(5, 10.0);
  m.record_unknown_owner();
  m.record_epoch_swap();
  m.record_degraded_serve();
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.queries, 1u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.owners_resolved, 6u);
  EXPECT_EQ(snap.unknown_owners, 1u);
  EXPECT_EQ(snap.epoch_swaps, 1u);
  EXPECT_EQ(snap.degraded_serves, 1u);
  EXPECT_EQ(snap.latency.total, 2u);
}

TEST(ServingMetricsTest, InstancesAreIndependentOnTheRegistry) {
  // Both live in obs::Registry::global() under distinct `instance` labels
  // (common in tests: many LocatorServices per process); recording into one
  // must not bleed into the other.
  ServingMetrics a;
  ServingMetrics b;
  a.record_query(3.0);
  a.record_query(3.0);
  EXPECT_EQ(a.snapshot().queries, 2u);
  EXPECT_EQ(b.snapshot().queries, 0u);
  EXPECT_EQ(b.snapshot().latency.total, 0u);
}

}  // namespace
}  // namespace eppi
