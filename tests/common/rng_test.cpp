#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace eppi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 5ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBound = 10;
  constexpr int kTrials = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[rng.next_below(kBound)];
  const double expected = static_cast<double>(kTrials) / kBound;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(RngTest, NextInInclusiveRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(29);
  for (const double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kTrials = 50000;
    for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / kTrials, p, 0.01);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuing stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(RngTest, FillBytesFillsExactly) {
  Rng rng(41);
  std::vector<std::uint8_t> buf(13, 0xEE);
  rng.fill_bytes(buf.data(), buf.size());
  // Very unlikely all bytes stay 0xEE.
  int unchanged = 0;
  for (const auto b : buf) unchanged += b == 0xEE ? 1 : 0;
  EXPECT_LT(unchanged, 13);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, MeanNearHalfBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.next_below(bound));
  }
  const double mean = sum / kTrials;
  const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
  EXPECT_NEAR(mean, expected, static_cast<double>(bound) * 0.02 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 5, 16, 100, 1024, 65536));

}  // namespace
}  // namespace eppi
