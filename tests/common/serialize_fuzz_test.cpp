// Robustness fuzzing for every binary decoder: random corruption of valid
// payloads must produce SerializeError (or a successful parse of a
// different value) — never a crash, hang, or unbounded allocation.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/index_io.h"
#include "mpc/circuit_builder.h"
#include "mpc/circuit_io.h"

namespace eppi {
namespace {

template <typename ParseFn>
void fuzz_decoder(std::vector<std::uint8_t> valid, ParseFn parse,
                  std::uint64_t seed, int mutations = 300) {
  Rng rng(seed);
  for (int round = 0; round < mutations; ++round) {
    std::vector<std::uint8_t> corrupted = valid;
    switch (rng.next_below(3)) {
      case 0: {  // flip random bytes
        const int flips = 1 + static_cast<int>(rng.next_below(4));
        for (int f = 0; f < flips && !corrupted.empty(); ++f) {
          corrupted[rng.next_below(corrupted.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      }
      case 1: {  // truncate
        if (!corrupted.empty()) {
          corrupted.resize(rng.next_below(corrupted.size()));
        }
        break;
      }
      default: {  // append garbage
        const int extra = 1 + static_cast<int>(rng.next_below(16));
        for (int e = 0; e < extra; ++e) {
          corrupted.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        break;
      }
    }
    try {
      parse(corrupted);  // either parses or throws SerializeError
    } catch (const SerializeError&) {
      // expected for malformed input
    }
  }
}

TEST(SerializeFuzzTest, BinaryReaderSurvivesCorruption) {
  BinaryWriter w;
  w.write_varint(17);
  const std::vector<std::uint64_t> values{1, 2, 3, 1000000};
  w.write_u64_vector(values);
  const std::vector<std::uint8_t> bytes{9, 8, 7};
  w.write_bytes(bytes);
  w.write_u64(0xDEADBEEF);
  fuzz_decoder(w.take(),
               [](const std::vector<std::uint8_t>& bytes) {
                 BinaryReader r(bytes);
                 (void)r.read_varint();
                 (void)r.read_u64_vector();
                 (void)r.read_bytes();
                 (void)r.read_u64();
               },
               101);
}

TEST(SerializeFuzzTest, IndexLoaderSurvivesCorruption) {
  Rng rng(5);
  BitMatrix matrix(9, 70);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 70; ++j) {
      if (rng.bernoulli(0.3)) matrix.set(i, j, true);
    }
  }
  std::stringstream ss;
  core::save_index(ss, core::PpiIndex(std::move(matrix)));
  const std::string str = ss.str();
  std::vector<std::uint8_t> valid(str.begin(), str.end());
  fuzz_decoder(valid,
               [](const std::vector<std::uint8_t>& bytes) {
                 std::stringstream in(
                     std::string(bytes.begin(), bytes.end()));
                 (void)core::load_index(in);
               },
               102);
}

core::PpiIndex fuzz_index() {
  Rng rng(6);
  BitMatrix matrix(7, 50);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 50; ++j) {
      if (rng.bernoulli(0.4)) matrix.set(i, j, true);
    }
  }
  return core::PpiIndex(std::move(matrix));
}

TEST(SerializeFuzzTest, IndexLoaderSurvivesV2Corruption) {
  fuzz_decoder(core::save_index_bytes(fuzz_index()),
               [](const std::vector<std::uint8_t>& bytes) {
                 (void)core::load_index_bytes(bytes);
               },
               104);
}

TEST(SerializeFuzzTest, IndexLoaderSurvivesV3Corruption) {
  const core::PpiIndex index = fuzz_index();
  std::vector<std::pair<std::string, core::IdentityId>> names;
  for (std::size_t t = 0; t < index.identities(); ++t) {
    names.emplace_back("owner-" + std::to_string(t),
                       static_cast<core::IdentityId>(t));
  }
  const core::Lexicon lexicon(std::move(names));
  fuzz_decoder(
      core::save_index_v3_bytes(core::PostingIndex(index), &lexicon),
      [](const std::vector<std::uint8_t>& bytes) {
        (void)core::load_postings_bytes(bytes);
      },
      105);
}

// Truncation at *every* byte boundary — not just random cuts — for all
// format versions: a torn write can stop anywhere, including mid-magic,
// mid-dimension and mid-shard, and the loader must reject each prefix,
// never crash or over-allocate.
TEST(SerializeFuzzTest, IndexLoaderRejectsEveryTruncationPoint) {
  const core::PpiIndex index = fuzz_index();

  std::stringstream v1;
  core::save_index_v1(v1, index);
  const std::string v1_str = v1.str();
  const std::vector<std::uint8_t> v1_bytes(v1_str.begin(), v1_str.end());
  const std::vector<std::uint8_t> v2_bytes = core::save_index_bytes(index);
  const std::vector<std::uint8_t> v3_bytes =
      core::save_index_v3_bytes(core::PostingIndex(index), nullptr);

  for (const auto& valid : {v1_bytes, v2_bytes, v3_bytes}) {
    for (std::size_t cut = 0; cut < valid.size(); ++cut) {
      const std::vector<std::uint8_t> torn(valid.begin(),
                                           valid.begin() + cut);
      EXPECT_THROW((void)core::load_index_bytes(torn), SerializeError)
          << "prefix of " << cut << " bytes parsed";
      const auto report = core::validate_index(torn);
      EXPECT_FALSE(report.ok) << "validate accepted a " << cut
                              << "-byte prefix";
    }
  }
}

TEST(SerializeFuzzTest, IndexCrossVersionLoads) {
  const core::PpiIndex index = fuzz_index();

  // v1 bytes load through the same entry point as v2.
  std::stringstream v1;
  core::save_index_v1(v1, index);
  const std::string v1_str = v1.str();
  const std::vector<std::uint8_t> v1_bytes(v1_str.begin(), v1_str.end());
  EXPECT_EQ(core::load_index_bytes(v1_bytes).matrix(), index.matrix());
  EXPECT_EQ(core::validate_index(v1_bytes).version, 1);

  // A v1 header with a v2 body (and vice versa) must be rejected, not
  // misparsed: the magic decides the layout and the checksums do the rest.
  const std::vector<std::uint8_t> v2_bytes = core::save_index_bytes(index);
  std::vector<std::uint8_t> relabeled_v1 = v2_bytes;
  std::memcpy(relabeled_v1.data(), "eppiidx1", 8);
  EXPECT_THROW((void)core::load_index_bytes(relabeled_v1), SerializeError);
  std::vector<std::uint8_t> relabeled_v2 = v1_bytes;
  std::memcpy(relabeled_v2.data(), "eppiidx2", 8);
  EXPECT_THROW((void)core::load_index_bytes(relabeled_v2), SerializeError);

  // v3 bytes relabeled as v2 (and vice versa) must likewise be rejected:
  // the shard-table layout is nothing like a packed row payload, and the
  // section checksums catch the mismatch before any decode runs.
  const std::vector<std::uint8_t> v3_bytes =
      core::save_index_v3_bytes(core::PostingIndex(index), nullptr);
  std::vector<std::uint8_t> relabeled_v3 = v2_bytes;
  std::memcpy(relabeled_v3.data(), "eppiidx3", 8);
  EXPECT_THROW((void)core::load_index_bytes(relabeled_v3), SerializeError);
  std::vector<std::uint8_t> downlabeled = v3_bytes;
  std::memcpy(downlabeled.data(), "eppiidx2", 8);
  EXPECT_THROW((void)core::load_index_bytes(downlabeled), SerializeError);
}

TEST(SerializeFuzzTest, CircuitLoaderSurvivesCorruption) {
  mpc::CircuitBuilder cb;
  const auto a = cb.input_bits(0, 6);
  const auto b = cb.input_bits(1, 6);
  cb.output_vec(cb.add_trunc(a, b));
  cb.output(cb.lt(a, b));
  std::stringstream ss;
  mpc::save_circuit(ss, cb.take());
  const std::string str = ss.str();
  std::vector<std::uint8_t> valid(str.begin(), str.end());
  fuzz_decoder(valid,
               [](const std::vector<std::uint8_t>& bytes) {
                 std::stringstream in(
                     std::string(bytes.begin(), bytes.end()));
                 (void)mpc::load_circuit(in);
               },
               103);
}

}  // namespace
}  // namespace eppi
