#include "common/serialize.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"

namespace eppi {
namespace {

TEST(SerializeTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, VarintRoundTripEdgeValues) {
  const std::uint64_t values[] = {
      0,    1,    127,  128,   255,   16383, 16384,
      1u << 20, std::numeric_limits<std::uint64_t>::max()};
  BinaryWriter w;
  for (const auto v : values) w.write_varint(v);
  BinaryReader r(w.buffer());
  for (const auto v : values) EXPECT_EQ(r.read_varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, VarintIsCompactForSmallValues) {
  BinaryWriter w;
  w.write_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.write_varint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(SerializeTest, BytesRoundTrip) {
  BinaryWriter w;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  w.write_bytes(payload);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_bytes(), payload);
}

TEST(SerializeTest, EmptyBytesRoundTrip) {
  BinaryWriter w;
  w.write_bytes({});
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.read_bytes().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, U64VectorRoundTrip) {
  BinaryWriter w;
  const std::vector<std::uint64_t> values{0, 42, 1u << 30, 7};
  w.write_u64_vector(values);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_u64_vector(), values);
}

TEST(SerializeTest, TruncatedInputThrows) {
  BinaryWriter w;
  w.write_u64(12345);
  const auto& buf = w.buffer();
  BinaryReader r(std::span<const std::uint8_t>(buf.data(), 4));
  EXPECT_THROW(r.read_u64(), SerializeError);
}

TEST(SerializeTest, TruncatedBytesThrows) {
  BinaryWriter w;
  w.write_varint(100);  // claims 100 bytes follow
  BinaryReader r(w.buffer());
  EXPECT_THROW(r.read_bytes(), SerializeError);
}

TEST(SerializeTest, MalformedVarintThrows) {
  // 10 continuation bytes exceed the 64-bit budget.
  std::vector<std::uint8_t> bad(11, 0x80);
  BinaryReader r(bad);
  EXPECT_THROW(r.read_varint(), SerializeError);
}

TEST(SerializeTest, TakeMovesBuffer) {
  BinaryWriter w;
  w.write_u8(9);
  auto buf = w.take();
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace eppi
