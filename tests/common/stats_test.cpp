#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace eppi {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{7.0};
  EXPECT_EQ(variance(xs), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(StatsTest, PercentileValidatesInput) {
  EXPECT_THROW(percentile({}, 0.5), ConfigError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, 1.5), ConfigError);
  EXPECT_THROW(percentile(xs, -0.1), ConfigError);
}

TEST(StatsTest, RunningStatMatchesBatch) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStat rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(StatsTest, RunningStatEmpty) {
  const RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(StatsTest, FractionTrue) {
  const std::vector<bool> storage{true, false, true, true};
  // span<const bool> cannot bind to vector<bool>; use a plain array.
  const bool xs[] = {true, false, true, true};
  EXPECT_DOUBLE_EQ(fraction_true(std::span<const bool>(xs, 4)), 0.75);
  EXPECT_EQ(fraction_true({}), 0.0);
  (void)storage;
}

}  // namespace
}  // namespace eppi
