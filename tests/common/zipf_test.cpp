#include "common/zipf.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace eppi {
namespace {

TEST(ZipfTest, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ConfigError);
  EXPECT_THROW(ZipfSampler(10, -0.1), ConfigError);
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < zipf.size(); ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  const ZipfSampler zipf(50, 1.2);
  for (std::size_t r = 1; r < zipf.size(); ++r) {
    EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1) + 1e-12);
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-9);
  }
}

TEST(ZipfTest, PmfRankOutOfRangeThrows) {
  const ZipfSampler zipf(10, 1.0);
  EXPECT_THROW(zipf.pmf(10), ConfigError);
}

TEST(ZipfTest, SamplingMatchesPmf) {
  const ZipfSampler zipf(20, 1.0);
  Rng rng(123);
  constexpr int kTrials = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kTrials; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 20; ++r) {
    const double observed = static_cast<double>(counts[r]) / kTrials;
    EXPECT_NEAR(observed, zipf.pmf(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfTest, SampleAlwaysInRange) {
  const ZipfSampler zipf(7, 2.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 7u);
  }
}

}  // namespace
}  // namespace eppi
