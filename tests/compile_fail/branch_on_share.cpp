// MUST NOT COMPILE: using a share as a branch condition (deleted conversion
// to bool). Control flow that depends on a share value is a timing /
// trace side channel.
#include "secret/secret.h"

int main() {
  const eppi::SecretBit share(true);
  if (share) {  // use of deleted function
    return 1;
  }
  return 0;
}
