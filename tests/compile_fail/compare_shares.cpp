// MUST NOT COMPILE: comparing shares (deleted friend comparisons). Branching
// on share order leaks one bit per comparison; protocols that need ordering
// go through the GMW comparison circuits instead.
#include "secret/secret.h"

int main() {
  const eppi::SecretU64 a(1), b(2);
  return a < b ? 0 : 1;  // use of deleted function
}
