// Positive control for the compile-fail harness: this file uses the same
// headers and flags as the probes and MUST compile. If it stops compiling,
// the WILL_FAIL probes would "pass" for the wrong reason (broken include
// paths instead of the taint type doing its job).
#include <cstdint>

#include "common/logging.h"
#include "obs/trace.h"
#include "secret/secret.h"

int main() {
  const eppi::SecretU64 share(41);
  const eppi::secret::ModRing ring(1 << 10);
  const eppi::SecretU64 sum = share.add(eppi::SecretU64(1), ring);
  // Logging the *public* opening is fine; logging the share is not (see
  // log_share.cpp).
  EPPI_DEBUG("opened value " << sum.reveal());
  // Same contract for trace attributes: a public value is fine; a Secret is
  // rejected at compile time (see trace_secret_attr.cpp). This also keeps
  // the probe honest — if obs/trace.h stopped compiling here, the WILL_FAIL
  // probe would "pass" for the wrong reason.
  eppi::obs::Span span("harness.ok");
  span.attr("opened", std::uint64_t{41});
  return sum.reveal() == 42 ? 0 : 1;
}
