// MUST NOT COMPILE: implicit conversion of a share back to its payload type
// (deleted catch-all conversion operator). The only exits from the taint are
// the audited unwrap_for_wire()/reveal() escape hatches.
#include <cstdint>

#include "secret/secret.h"

int main() {
  const eppi::SecretU64 share(7);
  const std::uint64_t leaked = share;  // use of deleted function
  return static_cast<int>(leaked);
}
