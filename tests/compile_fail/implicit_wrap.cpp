// MUST NOT COMPILE: implicitly wrapping a public value as a share (explicit
// constructor). Taint must be introduced deliberately — a public value that
// silently becomes a "share" would corrupt the protocol's secrecy ledger.
#include "secret/secret.h"

eppi::SecretU64 f() {
  return 42;  // explicit constructor: no implicit conversion
}

int main() {
  (void)f();
  return 0;
}
