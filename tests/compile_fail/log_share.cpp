// MUST NOT COMPILE: streaming a Secret share into EPPI_LOG is the exact
// leak the taint type exists to prevent (deleted friend operator<<).
#include "common/logging.h"
#include "secret/secret.h"

int main() {
  const eppi::SecretU64 share(7);
  // use of deleted function — the deliberate violation under test
  EPPI_INFO("my share is " << share);  // eppi-lint: allow(secret-logging): deliberate violation this probe exists to reject
  return 0;
}
