// Misuse probe: an EPPI_LOOP_AFFINE method invoked from a detached worker
// thread. This COMPILES (the attribute is metadata, not a type error) —
// tests/CMakeLists.txt registers a positive syntax-only control plus an
// eppi_analyze run over this file with WILL_FAIL, so the gate is that the
// analyzer rejects it with a loop-affinity finding.
#include <thread>

#include "common/thread_annotations.h"

namespace eppi::probe {

class DetachedMisuse {
 public:
  // Loop-owned state: only the loop thread may arm the timer.
  void arm_timer() EPPI_LOOP_AFFINE { armed_ = true; }

  // WRONG: hands the affine method to a detached thread. The fix would be
  // posting the closure to the owning EventLoop instead.
  void spawn() {
    std::thread([this] { arm_timer(); }).detach();
  }

 private:
  bool armed_ = false;
};

}  // namespace eppi::probe

int main() {
  eppi::probe::DetachedMisuse m;
  m.spawn();
  return 0;
}
