// MUST NOT COMPILE: raw built-in arithmetic on shares (deleted friend
// operator+). Share math must go through Secret::add(..., ring) so the mod-q
// reduction cannot be forgotten.
#include "secret/secret.h"

int main() {
  const eppi::SecretU64 a(1), b(2);
  const eppi::SecretU64 c = a + b;  // use of deleted function
  return static_cast<int>(c.reveal());
}
