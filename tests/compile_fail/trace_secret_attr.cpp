// MUST NOT COMPILE: recording a Secret share as a trace-span attribute
// would export it through the JSONL trace / `eppi_cli trace` pipeline.
// Span::attr has a deleted Secret<T> overload (the same taint pattern as
// Secret's deleted operator<<); the runtime lint rule secret-trace-attr
// covers the unwrap-then-record laundering this type check cannot see.
#include "obs/trace.h"
#include "secret/secret.h"

int main() {
  const eppi::SecretU64 share(7);
  eppi::obs::Span span("phase:probe");
  // use of deleted function — the deliberate violation under test
  span.attr("share", share);
  return 0;
}
