#include "core/advisor.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

TEST(AdvisorTest, EpsilonForConfidenceBound) {
  EXPECT_DOUBLE_EQ(epsilon_for_confidence_bound(0.2), 0.8);
  EXPECT_DOUBLE_EQ(epsilon_for_confidence_bound(1.0), 0.0);
  EXPECT_DOUBLE_EQ(epsilon_for_confidence_bound(0.0), 1.0);
  EXPECT_THROW(epsilon_for_confidence_bound(1.2), eppi::ConfigError);
}

TEST(AdvisorTest, OverheadGrowsWithEpsilon) {
  const BetaPolicy policy = BetaPolicy::chernoff(0.9);
  double prev = -1.0;
  for (const double eps : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double overhead = expected_overhead(policy, 0.01, eps, 1000);
    EXPECT_GT(overhead, prev);
    prev = overhead;
  }
}

TEST(AdvisorTest, OverheadCapsAtBroadcast) {
  // A common identity is mixed to β = 1: overhead = every negative provider.
  const double overhead =
      expected_overhead(BetaPolicy::basic(), 0.6, 0.9, 100);
  EXPECT_DOUBLE_EQ(overhead, 40.0);
}

TEST(AdvisorTest, ResultSizeIsTruePlusNoise) {
  const BetaPolicy policy = BetaPolicy::basic();
  const double size = expected_result_size(policy, 0.1, 0.5, 1000);
  const double overhead = expected_overhead(policy, 0.1, 0.5, 1000);
  EXPECT_DOUBLE_EQ(size, 100.0 + overhead);
}

TEST(AdvisorTest, OverheadPredictionMatchesSimulation) {
  // The advisor's expectation should match the measured average list size.
  constexpr std::size_t kM = 2000;
  constexpr double kSigma = 0.02;
  constexpr double kEps = 0.6;
  const BetaPolicy policy = BetaPolicy::chernoff(0.9);
  eppi::Rng rng(3);
  eppi::BitMatrix truth(kM, 1);
  for (std::size_t i = 0; i < kM * kSigma; ++i) truth.set(i, 0, true);
  const std::vector<double> betas{
      beta_clamped(policy, kSigma, kEps, kM)};
  double total = 0.0;
  constexpr int kRuns = 20;
  for (int run = 0; run < kRuns; ++run) {
    const auto published = publish_matrix(truth, betas, rng);
    total += static_cast<double>(published.col_count(0)) -
             static_cast<double>(kM) * kSigma;
  }
  const double measured = total / kRuns;
  const double predicted = expected_overhead(policy, kSigma, kEps, kM);
  EXPECT_NEAR(measured, predicted, predicted * 0.1);
}

TEST(AdvisorTest, PriceReflectsTariff) {
  const Tariff tariff{10.0, 0.5};
  const BetaPolicy policy = BetaPolicy::basic();
  const double price = delegation_price(tariff, policy, 0.1, 0.5, 1000);
  EXPECT_DOUBLE_EQ(price,
                   10.0 + 0.5 * expected_overhead(policy, 0.1, 0.5, 1000));
  // Footnote 3: more privacy costs more.
  EXPECT_GT(delegation_price(tariff, policy, 0.1, 0.9, 1000), price);
}

TEST(AdvisorTest, NegativeTariffRejected) {
  const Tariff bad{-1.0, 0.5};
  EXPECT_THROW(delegation_price(bad, BetaPolicy::basic(), 0.1, 0.5, 100),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::core
