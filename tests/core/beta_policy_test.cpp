#include "core/beta_policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"

namespace eppi::core {
namespace {

TEST(BetaBasicTest, ClosedFormValues) {
  // Eq. 3: β_b = [(σ⁻¹−1)(ε⁻¹−1)]⁻¹. σ = 0.5, ε = 0.5 -> 1/(1*1) = 1.
  EXPECT_DOUBLE_EQ(beta_basic(0.5, 0.5), 1.0);
  // σ = 0.2, ε = 0.5 -> 1/(4*1) = 0.25.
  EXPECT_DOUBLE_EQ(beta_basic(0.2, 0.5), 0.25);
  // σ = 0.1, ε = 0.8 -> 1/(9 * 0.25) = 4/9.
  EXPECT_NEAR(beta_basic(0.1, 0.8), 4.0 / 9.0, 1e-12);
}

TEST(BetaBasicTest, EdgeCases) {
  EXPECT_EQ(beta_basic(0.0, 0.5), 0.0);
  EXPECT_EQ(beta_basic(0.5, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(beta_basic(1.0, 0.5)));
  EXPECT_TRUE(std::isinf(beta_basic(0.5, 1.0)));
}

TEST(BetaBasicTest, RejectsOutOfRange) {
  EXPECT_THROW(beta_basic(-0.1, 0.5), eppi::ConfigError);
  EXPECT_THROW(beta_basic(0.5, 1.1), eppi::ConfigError);
}

TEST(BetaBasicTest, MonotoneInSigmaAndEpsilon) {
  double prev = 0.0;
  for (double sigma = 0.05; sigma < 0.95; sigma += 0.05) {
    const double b = beta_basic(sigma, 0.5);
    EXPECT_GE(b, prev);
    prev = b;
  }
  prev = 0.0;
  for (double eps = 0.05; eps < 0.95; eps += 0.05) {
    const double b = beta_basic(0.3, eps);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(BetaIncExpTest, AddsDelta) {
  EXPECT_DOUBLE_EQ(beta_inc_exp(0.2, 0.5, 0.02), 0.25 + 0.02);
  EXPECT_THROW(beta_inc_exp(0.2, 0.5, -0.01), eppi::ConfigError);
}

TEST(BetaChernoffTest, ExceedsBasic) {
  for (const double sigma : {0.01, 0.1, 0.3}) {
    for (const double eps : {0.2, 0.5, 0.8}) {
      const double bb = beta_basic(sigma, eps);
      const double bc = beta_chernoff(sigma, eps, 0.9, 10000);
      EXPECT_GT(bc, bb) << "sigma=" << sigma << " eps=" << eps;
    }
  }
}

TEST(BetaChernoffTest, CorrectionShrinksWithProviders) {
  const double small_m = beta_chernoff(0.1, 0.5, 0.9, 100);
  const double large_m = beta_chernoff(0.1, 0.5, 0.9, 100000);
  EXPECT_GT(small_m, large_m);
  EXPECT_NEAR(large_m, beta_basic(0.1, 0.5), 0.01);
}

TEST(BetaChernoffTest, HigherGammaNeedsMoreNoise) {
  const double g90 = beta_chernoff(0.1, 0.5, 0.90, 1000);
  const double g99 = beta_chernoff(0.1, 0.5, 0.99, 1000);
  EXPECT_GT(g99, g90);
}

TEST(BetaChernoffTest, RejectsBadGamma) {
  EXPECT_THROW(beta_chernoff(0.1, 0.5, 0.5, 100), eppi::ConfigError);
  EXPECT_THROW(beta_chernoff(0.1, 0.5, 1.0, 100), eppi::ConfigError);
}

TEST(BetaRawTest, DispatchesOnPolicy) {
  const std::size_t m = 1000;
  EXPECT_DOUBLE_EQ(beta_raw(BetaPolicy::basic(), 0.2, 0.5, m),
                   beta_basic(0.2, 0.5));
  EXPECT_DOUBLE_EQ(beta_raw(BetaPolicy::inc_exp(0.05), 0.2, 0.5, m),
                   beta_basic(0.2, 0.5) + 0.05);
  EXPECT_DOUBLE_EQ(beta_raw(BetaPolicy::chernoff(0.9), 0.2, 0.5, m),
                   beta_chernoff(0.2, 0.5, 0.9, m));
}

TEST(BetaClampedTest, StaysInUnitInterval) {
  EXPECT_DOUBLE_EQ(beta_clamped(BetaPolicy::basic(), 0.9, 0.9, 100), 1.0);
  EXPECT_DOUBLE_EQ(beta_clamped(BetaPolicy::basic(), 0.0, 0.5, 100), 0.0);
  const double b = beta_clamped(BetaPolicy::basic(), 0.2, 0.5, 100);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 1.0);
}

TEST(CommonThresholdTest, BasicPolicySaturatesAtOneMinusEpsilon) {
  // β_b >= 1 iff σ >= 1−ε, so the threshold is ceil((1−ε)m).
  const std::size_t m = 1000;
  for (const double eps : {0.2, 0.5, 0.8}) {
    const auto t = common_threshold(BetaPolicy::basic(), eps, m);
    const double sigma_at = static_cast<double>(t) / m;
    EXPECT_GE(beta_basic(sigma_at, eps), 1.0);
    if (t > 0) {
      const double sigma_below = static_cast<double>(t - 1) / m;
      EXPECT_LT(beta_basic(sigma_below, eps), 1.0);
    }
    EXPECT_NEAR(static_cast<double>(t), (1.0 - eps) * m, 1.5);
  }
}

TEST(CommonThresholdTest, ChernoffSaturatesEarlierThanBasic) {
  const std::size_t m = 1000;
  const auto tb = common_threshold(BetaPolicy::basic(), 0.5, m);
  const auto tc = common_threshold(BetaPolicy::chernoff(0.9), 0.5, m);
  EXPECT_LE(tc, tb);
}

TEST(CommonThresholdTest, EpsilonZeroNeverCommon) {
  const std::size_t m = 100;
  // ε=0 means the owner wants no noise: β=0 at every frequency, so the
  // identity never saturates and the sentinel m+1 is returned.
  const auto t = common_threshold(BetaPolicy::basic(), 0.0, m);
  EXPECT_EQ(t, m + 1);
}

TEST(CommonThresholdTest, EpsilonOneCommonAtAnyPositiveFrequency) {
  const std::size_t m = 100;
  const auto t = common_threshold(BetaPolicy::basic(), 1.0, m);
  // β saturates at any σ > 0 (ε = 1 means broadcast); σ = 0 identities have
  // nothing to protect and stay at β = 0.
  EXPECT_EQ(t, 1u);
}

TEST(CommonThresholdsTest, VectorizedMatchesScalar) {
  const std::size_t m = 500;
  const std::vector<double> eps{0.1, 0.5, 0.9};
  const auto ts = common_thresholds(BetaPolicy::chernoff(0.9), eps, m);
  ASSERT_EQ(ts.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(ts[j], common_threshold(BetaPolicy::chernoff(0.9), eps[j], m));
  }
}

// Theorem 3.1, empirically: publishing with β_c achieves fp >= ε with
// probability >= γ. This is the paper's core quantitative guarantee.
class ChernoffGuaranteeSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ChernoffGuaranteeSweep, SuccessRatioMeetsGamma) {
  const auto [sigma, eps] = GetParam();
  constexpr std::size_t kM = 2000;
  constexpr double kGamma = 0.9;
  const double beta = beta_chernoff(sigma, eps, kGamma, kM);
  if (beta >= 1.0) GTEST_SKIP() << "saturated configuration";
  eppi::Rng rng(42);
  const auto positives = static_cast<std::size_t>(sigma * kM);
  const std::size_t negatives = kM - positives;
  constexpr int kRuns = 400;
  int successes = 0;
  for (int run = 0; run < kRuns; ++run) {
    std::size_t false_pos = 0;
    for (std::size_t i = 0; i < negatives; ++i) {
      false_pos += rng.bernoulli(beta) ? 1 : 0;
    }
    const double fp =
        static_cast<double>(false_pos) /
        static_cast<double>(false_pos + positives);
    if (fp >= eps) ++successes;
  }
  const double ratio = static_cast<double>(successes) / kRuns;
  EXPECT_GE(ratio, kGamma - 0.05)
      << "sigma=" << sigma << " eps=" << eps << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChernoffGuaranteeSweep,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.1),
                       ::testing::Values(0.3, 0.5, 0.8)));

// The basic policy only meets the requirement about half the time — the
// motivation for the Chernoff policy (paper Fig. 5).
TEST(BetaBasicTest, SuccessRatioIsAboutHalf) {
  constexpr std::size_t kM = 2000;
  const double sigma = 0.05;
  const double eps = 0.5;
  const double beta = beta_basic(sigma, eps);
  eppi::Rng rng(7);
  const auto positives = static_cast<std::size_t>(sigma * kM);
  constexpr int kRuns = 600;
  int successes = 0;
  for (int run = 0; run < kRuns; ++run) {
    std::size_t false_pos = 0;
    for (std::size_t i = 0; i < kM - positives; ++i) {
      false_pos += rng.bernoulli(beta) ? 1 : 0;
    }
    const double fp = static_cast<double>(false_pos) /
                      static_cast<double>(false_pos + positives);
    if (fp >= eps) ++successes;
  }
  const double ratio = static_cast<double>(successes) / kRuns;
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

}  // namespace
}  // namespace eppi::core
