#include "core/constructor.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/mixing.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

TEST(CalculateBetasTest, DetectsCommonIdentities) {
  // 10 providers; identity 0 at 9 of them (common for ε=0.5 under basic),
  // identity 1 at 2 (non-common).
  eppi::Rng rng(1);
  const auto net = eppi::dataset::make_network_with_frequencies(
      10, std::vector<std::uint64_t>{9, 2}, rng);
  const std::vector<double> eps{0.5, 0.5};
  ConstructionOptions options;
  options.policy = BetaPolicy::basic();
  // Mixing disabled so the decoy coin cannot push the rare identity to
  // β = 1 (with one common out of two identities, λ would be 1).
  options.enable_mixing = false;
  const auto info = calculate_betas(net.membership, eps, options, rng);
  EXPECT_TRUE(info.is_common[0]);
  EXPECT_FALSE(info.is_common[1]);
  EXPECT_EQ(info.betas[0], 1.0);
  EXPECT_LT(info.betas[1], 1.0);
  EXPECT_DOUBLE_EQ(info.xi, 0.5);
}

TEST(CalculateBetasTest, MixingDisabledKeepsRawBetas) {
  eppi::Rng rng(2);
  const auto net = eppi::dataset::make_network_with_frequencies(
      20, std::vector<std::uint64_t>{19, 3, 3, 3}, rng);
  const std::vector<double> eps(4, 0.9);
  ConstructionOptions options;
  options.policy = BetaPolicy::basic();
  options.enable_mixing = false;
  const auto info = calculate_betas(net.membership, eps, options, rng);
  EXPECT_EQ(info.lambda, 0.0);
  // Without mixing the apparent-common set equals the true common set.
  EXPECT_EQ(info.is_apparent_common, info.is_common);
}

TEST(CalculateBetasTest, MixingCreatesDecoys) {
  // Lots of non-common identities and one high-ε common identity: λ should
  // mix in decoys so the common identity hides.
  eppi::Rng rng(3);
  std::vector<std::uint64_t> freqs(200, 2);
  freqs[0] = 99;  // common
  const auto net =
      eppi::dataset::make_network_with_frequencies(100, freqs, rng);
  std::vector<double> eps(200, 0.8);
  ConstructionOptions options;
  options.policy = BetaPolicy::basic();
  const auto info = calculate_betas(net.membership, eps, options, rng);
  ASSERT_TRUE(info.is_common[0]);
  EXPECT_GT(info.lambda, 0.0);
  std::size_t decoys = 0;
  for (std::size_t j = 1; j < 200; ++j) {
    if (info.is_apparent_common[j]) ++decoys;
  }
  EXPECT_GT(decoys, 0u);
  // Every apparent-common identity must publish with β == 1.
  for (std::size_t j = 0; j < 200; ++j) {
    if (info.is_apparent_common[j]) {
      EXPECT_EQ(info.betas[j], 1.0);
    }
  }
}

TEST(CalculateBetasTest, ValidatesInput) {
  eppi::Rng rng(4);
  const eppi::BitMatrix truth(5, 2);
  const std::vector<double> wrong_count{0.5};
  EXPECT_THROW(calculate_betas(truth, wrong_count, {}, rng),
               eppi::ConfigError);
  const std::vector<double> bad_eps{0.5, 1.5};
  EXPECT_THROW(calculate_betas(truth, bad_eps, {}, rng), eppi::ConfigError);
}

TEST(ConstructCentralizedTest, IndexHasFullRecall) {
  eppi::Rng rng(5);
  eppi::dataset::SyntheticConfig config;
  config.providers = 60;
  config.identities = 40;
  const auto net = eppi::dataset::make_zipf_network(config, rng);
  const auto eps = eppi::dataset::random_epsilons(40, rng);
  const auto result =
      construct_centralized(net.membership, eps, {}, rng);
  EXPECT_TRUE(full_recall(net.membership, result.index.matrix()));
}

TEST(ConstructCentralizedTest, ChernoffMeetsEpsilonBoundsForMost) {
  eppi::Rng rng(6);
  constexpr std::size_t kM = 600;
  constexpr std::size_t kN = 80;
  std::vector<std::uint64_t> freqs(kN);
  for (auto& f : freqs) f = 1 + rng.next_below(30);
  const auto net = eppi::dataset::make_network_with_frequencies(kM, freqs, rng);
  const std::vector<double> eps(kN, 0.5);
  ConstructionOptions options;
  options.policy = BetaPolicy::chernoff(0.9);
  const auto result = construct_centralized(net.membership, eps, options, rng);
  const auto rates =
      false_positive_rates(net.membership, result.index.matrix());
  std::size_t met = 0;
  for (std::size_t j = 0; j < kN; ++j) {
    if (result.info.is_apparent_common[j] || rates[j] >= eps[j]) ++met;
  }
  EXPECT_GE(static_cast<double>(met) / kN, 0.85);
}

TEST(ConstructCentralizedTest, ApparentCommonColumnIsFull) {
  // Identities published with β = 1 must appear at every provider.
  eppi::Rng rng(7);
  const auto net = eppi::dataset::make_network_with_frequencies(
      30, std::vector<std::uint64_t>{29, 2}, rng);
  const std::vector<double> eps{0.5, 0.5};
  ConstructionOptions options;
  options.policy = BetaPolicy::basic();
  const auto result = construct_centralized(net.membership, eps, options, rng);
  ASSERT_TRUE(result.info.is_apparent_common[0]);
  EXPECT_EQ(result.index.matrix().col_count(0), 30u);
}

TEST(ConstructCentralizedTest, CommonFrequencyHiddenFromApparentView) {
  // After mixing, an apparent-common identity's published column is all-1s
  // regardless of its true frequency — the attacker cannot read σ off M'.
  eppi::Rng rng(8);
  std::vector<std::uint64_t> freqs(50, 3);
  freqs[0] = 48;
  const auto net =
      eppi::dataset::make_network_with_frequencies(50, freqs, rng);
  std::vector<double> eps(50, 0.7);
  ConstructionOptions options;
  options.policy = BetaPolicy::basic();
  const auto result = construct_centralized(net.membership, eps, options, rng);
  std::size_t full_columns = 0;
  for (std::size_t j = 0; j < 50; ++j) {
    if (result.info.is_apparent_common[j]) {
      EXPECT_EQ(result.index.matrix().col_count(j), 50u);
      ++full_columns;
    }
  }
  EXPECT_GE(full_columns, 1u);
}

}  // namespace
}  // namespace eppi::core
