// Incremental (delta) epochs, centralized path: the contract is exact — a
// rebuild_delta over a dirty set covering every changed column is
// BIT-IDENTICAL to a full rebuild over the same truth, because β*/ξ/λ are
// re-derived globally and every sticky decision is keyed, not drawn. The
// suite pins that equivalence, the membership (join/leave/rejoin) semantics,
// the LocatorService routing on top, and the serving-tier posting splice.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "common/error.h"
#include "core/epoch_manager.h"
#include "core/locator_service.h"
#include "core/posting_index.h"

namespace eppi::core {
namespace {

constexpr std::size_t kM = 6;
constexpr std::size_t kN = 24;

eppi::BitMatrix base_truth() {
  eppi::BitMatrix truth(kM, kN);
  for (std::size_t i = 0; i < kM; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      if ((i * 5 + j * 11) % 7 < 2) truth.set(i, j, true);
    }
  }
  for (std::size_t i = 0; i < kM; ++i) truth.set(i, 0, true);  // common
  return truth;
}

std::vector<double> base_epsilons() {
  std::vector<double> eps(kN, 0.5);
  for (std::size_t j = 0; j < kN; ++j) eps[j] = 0.2 + 0.03 * (j % 20);
  return eps;
}

EpochManager::Options manager_options() {
  EpochManager::Options options;
  options.master_key = 9001;
  return options;
}

TEST(DeltaEpochTest, DeltaRebuildIsBitIdenticalToFullRebuild) {
  // Second-epoch truth: columns 3 and 17 change, and column 9 becomes
  // common (every provider holds it), which moves n_common and with it
  // ξ/λ — the widening machinery must chase the flipped mixing decisions.
  eppi::BitMatrix truth2 = base_truth();
  truth2.set(1, 3, !truth2.get(1, 3));
  truth2.set(4, 17, !truth2.get(4, 17));
  for (std::size_t i = 0; i < kM; ++i) truth2.set(i, 9, true);
  std::vector<double> eps2 = base_epsilons();
  eps2[3] = 0.9;  // the owner also raised their privacy degree

  EpochManager incremental(manager_options());
  incremental.rebuild(base_truth(), base_epsilons());
  EpochManager::DeltaRequest req;
  req.dirty = {3, 9, 17};
  const auto delta = incremental.rebuild_delta(truth2, eps2, req);

  EpochManager full(manager_options());
  full.rebuild(base_truth(), base_epsilons());
  const auto reference = full.rebuild(truth2, eps2);

  EXPECT_TRUE(delta.delta.delta);
  EXPECT_GE(delta.delta.recomputed, req.dirty.size());
  EXPECT_EQ(delta.index.matrix(), reference.index.matrix());
  EXPECT_EQ(delta.churn, reference.churn);
}

TEST(DeltaEpochTest, FirstEpochFallsBackToFullTransparently) {
  EpochManager manager(manager_options());
  EpochManager::DeltaRequest req;
  req.dirty = {1, 2};
  const auto result =
      manager.rebuild_delta(base_truth(), base_epsilons(), req);
  EXPECT_FALSE(result.delta.delta);  // nothing to splice over yet
  EXPECT_EQ(result.epoch, 1u);

  EpochManager reference(manager_options());
  EXPECT_EQ(result.index.matrix(),
            reference.rebuild(base_truth(), base_epsilons()).index.matrix());
}

TEST(DeltaEpochTest, LeaveZeroesRowAndRejoinRestoresStickyNoise) {
  const auto eps = base_epsilons();
  EpochManager manager(manager_options());
  const auto epoch1 = manager.rebuild(base_truth(), eps);

  // Provider 2 leaves: its truth row is withdrawn and its published row
  // must go fully dark (noise included — a lingering noise bit would leak
  // that the row was ever noisy).
  eppi::BitMatrix truth2 = base_truth();
  EpochManager::DeltaRequest leave;
  leave.left = {2};
  for (std::size_t j = 0; j < kN; ++j) {
    if (truth2.get(2, j)) {
      truth2.set(2, j, false);
      leave.dirty.push_back(static_cast<IdentityId>(j));
    }
  }
  const auto epoch2 = manager.rebuild_delta(truth2, eps, leave);
  EXPECT_EQ(manager.retired_count(), 1u);
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_FALSE(epoch2.index.matrix().get(2, j)) << "col " << j;
  }

  // A later FULL rebuild must keep honoring the retirement.
  const auto epoch3 = manager.rebuild(truth2, eps);
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_FALSE(epoch3.index.matrix().get(2, j)) << "col " << j;
  }

  // Rejoin with the original data: the published row must be byte-identical
  // to epoch 1's — the sticky noise key belongs to the id, not the session.
  EpochManager::DeltaRequest rejoin;
  rejoin.joined = {2};
  rejoin.dirty = leave.dirty;
  const auto epoch4 = manager.rebuild_delta(base_truth(), eps, rejoin);
  EXPECT_EQ(manager.retired_count(), 0u);
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_EQ(epoch4.index.matrix().get(2, j),
              epoch1.index.matrix().get(2, j))
        << "col " << j;
  }
}

TEST(DeltaEpochTest, JoinGrowsShapeAndMatchesFullRebuild) {
  const auto eps = base_epsilons();
  EpochManager incremental(manager_options());
  incremental.rebuild(base_truth(), eps);

  eppi::BitMatrix truth2(kM + 1, kN);
  for (std::size_t i = 0; i < kM; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      if (base_truth().get(i, j)) truth2.set(i, j, true);
    }
  }
  EpochManager::DeltaRequest join;
  join.joined = {static_cast<ProviderId>(kM)};
  for (const std::size_t j : {2u, 9u, 14u}) {
    truth2.set(kM, j, true);
    join.dirty.push_back(static_cast<IdentityId>(j));
  }
  const auto delta = incremental.rebuild_delta(truth2, eps, join);
  EXPECT_EQ(delta.index.matrix().rows(), kM + 1);
  EXPECT_EQ(delta.delta.spliced_rows, 1u);

  EpochManager full(manager_options());
  full.rebuild(base_truth(), eps);
  const auto reference = full.rebuild(truth2, eps);
  EXPECT_EQ(delta.index.matrix(), reference.index.matrix());
}

// --- LocatorService routing ------------------------------------------------

LocatorService::Options service_options(bool enable_delta) {
  LocatorService::Options options;
  options.distributed = false;
  options.seed = 5;
  options.enable_delta = enable_delta;
  return options;
}

void seed_service(LocatorService& svc) {
  for (int o = 0; o < 20; ++o) {
    svc.delegate("owner" + std::to_string(o), 0.3 + 0.02 * o,
                 "prov" + std::to_string(o % 5));
  }
}

TEST(DeltaEpochTest, ServiceDeltaPathAnswersIdenticallyToFullPath) {
  LocatorService with_delta(service_options(true));
  LocatorService without(service_options(false));
  seed_service(with_delta);
  seed_service(without);
  with_delta.construct_ppi();
  without.construct_ppi();

  // A small touch: one owner re-delegates with a new ε.
  with_delta.delegate("owner7", 0.95, "prov2");
  without.delegate("owner7", 0.95, "prov2");
  with_delta.construct_ppi();
  without.construct_ppi();

  EXPECT_TRUE(with_delta.last_rebuild().delta);
  EXPECT_FALSE(without.last_rebuild().delta);
  EXPECT_EQ(with_delta.last_rebuild().dirty, 1u);
  for (int o = 0; o < 20; ++o) {
    const std::string owner = "owner" + std::to_string(o);
    EXPECT_EQ(with_delta.query_ppi(owner), without.query_ppi(owner)) << owner;
  }
}

TEST(DeltaEpochTest, DirtyFractionGateFallsBackToFullRebuild) {
  LocatorService svc(service_options(true));
  seed_service(svc);
  svc.construct_ppi();
  // Touch most owners: recomputing nearly everything incrementally is a
  // waste, so the service must choose a full rebuild.
  for (int o = 0; o < 15; ++o) {
    svc.delegate("owner" + std::to_string(o), 0.8, "prov1");
  }
  svc.construct_ppi();
  EXPECT_FALSE(svc.last_rebuild().delta);
  EXPECT_EQ(svc.last_rebuild().epoch, 2u);
}

TEST(DeltaEpochTest, ServiceRetireAndRejoinFlowsThroughQueries) {
  LocatorService svc(service_options(true));
  seed_service(svc);
  svc.construct_ppi();

  svc.retire_provider("prov3");
  EXPECT_TRUE(svc.provider_retired(3));
  svc.construct_ppi();
  EXPECT_EQ(svc.last_rebuild().left, 1u);
  for (int o = 0; o < 20; ++o) {
    for (const auto& name : svc.query_ppi("owner" + std::to_string(o))) {
      EXPECT_NE(name, "prov3") << "owner" << o;
    }
  }

  // Delegating to the retired name rejoins it.
  svc.delegate("owner3", 0.4, "prov3");
  EXPECT_FALSE(svc.provider_retired(3));
  svc.construct_ppi();
  EXPECT_EQ(svc.last_rebuild().joined, 1u);
  const auto answer = svc.query_ppi("owner3");
  EXPECT_NE(std::find(answer.begin(), answer.end(), "prov3"), answer.end());
}

TEST(DeltaEpochTest, RetireUnknownProviderThrows) {
  LocatorService svc(service_options(true));
  EXPECT_THROW(svc.retire_provider("nobody"), eppi::ConfigError);
}

// --- serving-tier posting splice -------------------------------------------

TEST(DeltaEpochTest, PostingSpliceMatchesFullInversion) {
  eppi::BitMatrix before(5, 16);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if ((i + j) % 3 == 0) before.set(i, j, true);
    }
  }
  const PostingIndex base(before);

  // After: columns 4 and 11 recomputed, row 2 retired (zeroed), and the
  // matrix grew by one joined row touching arbitrary columns.
  eppi::BitMatrix after(6, 16);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if (i != 2 && before.get(i, j)) after.set(i, j, true);
    }
  }
  after.set(0, 4, true);
  after.set(3, 11, true);
  for (const std::size_t j : {1u, 4u, 7u, 15u}) after.set(5, j, true);

  const std::vector<IdentityId> affected{4, 11};
  const std::vector<ProviderId> touched{2, 5};
  const PostingIndex spliced(base, after, affected, touched);
  const PostingIndex full(after);

  ASSERT_EQ(spliced.identities(), full.identities());
  EXPECT_EQ(spliced.providers(), full.providers());
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_EQ(spliced.query(static_cast<IdentityId>(j)),
              full.query(static_cast<IdentityId>(j)))
        << "col " << j;
  }
}

TEST(DeltaEpochTest, PostingSpliceRejectsOutOfRangeInputs) {
  eppi::BitMatrix published(3, 4);
  const PostingIndex base(published);
  EXPECT_THROW(PostingIndex(base, published, std::vector<IdentityId>{9}, {}),
               eppi::ConfigError);
  EXPECT_THROW(PostingIndex(base, published, {}, std::vector<ProviderId>{7}),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::core
