#include "core/distributed_constructor.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/constructor.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

eppi::dataset::Network small_network(eppi::Rng& rng) {
  // 7 providers, 6 identities: one common (6/7), the rest sparse.
  return eppi::dataset::make_network_with_frequencies(
      7, std::vector<std::uint64_t>{6, 1, 2, 1, 3, 2}, rng);
}

TEST(DistributedConstructorTest, ProducesFullRecallIndex) {
  eppi::Rng rng(11);
  const auto net = small_network(rng);
  const std::vector<double> eps{0.5, 0.4, 0.6, 0.3, 0.5, 0.2};
  DistributedOptions options;
  options.policy = BetaPolicy::basic();
  options.c = 3;
  const auto result = construct_distributed(net.membership, eps, options);
  EXPECT_TRUE(full_recall(net.membership, result.index.matrix()));
}

TEST(DistributedConstructorTest, CommonCountMatchesGroundTruth) {
  eppi::Rng rng(12);
  const auto net = small_network(rng);
  const std::vector<double> eps{0.5, 0.4, 0.6, 0.3, 0.5, 0.2};
  DistributedOptions options;
  options.policy = BetaPolicy::basic();
  options.c = 3;
  const auto result = construct_distributed(net.membership, eps, options);

  // Ground truth from the centralized path.
  const auto thresholds = common_thresholds(options.policy, eps, 7);
  std::uint64_t expected_commons = 0;
  for (std::size_t j = 0; j < 6; ++j) {
    if (net.membership.col_count(j) >= thresholds[j]) ++expected_commons;
  }
  EXPECT_EQ(result.report.common_count, expected_commons);
}

TEST(DistributedConstructorTest, MixedIdentitiesHideFrequencies) {
  eppi::Rng rng(13);
  const auto net = small_network(rng);
  const std::vector<double> eps{0.5, 0.4, 0.6, 0.3, 0.5, 0.2};
  DistributedOptions options;
  options.policy = BetaPolicy::basic();
  options.c = 3;
  const auto result = construct_distributed(net.membership, eps, options);
  for (std::size_t j = 0; j < 6; ++j) {
    if (result.report.mixed[j]) {
      EXPECT_EQ(result.report.revealed_frequencies[j], 0u);
      EXPECT_EQ(result.report.betas[j], 1.0);
    } else {
      EXPECT_EQ(result.report.revealed_frequencies[j],
                net.membership.col_count(j));
      EXPECT_LT(result.report.betas[j], 1.0);
    }
  }
}

TEST(DistributedConstructorTest, CommonIdentityIsAlwaysMixed) {
  eppi::Rng rng(14);
  const auto net = small_network(rng);
  const std::vector<double> eps{0.5, 0.4, 0.6, 0.3, 0.5, 0.2};
  DistributedOptions options;
  options.policy = BetaPolicy::basic();
  options.c = 3;
  const auto result = construct_distributed(net.membership, eps, options);
  const auto thresholds = common_thresholds(options.policy, eps, 7);
  for (std::size_t j = 0; j < 6; ++j) {
    if (net.membership.col_count(j) >= thresholds[j]) {
      EXPECT_TRUE(result.report.mixed[j]) << "identity " << j;
    }
  }
}

TEST(DistributedConstructorTest, MatchesCentralizedBetasForUnmixed) {
  eppi::Rng rng(15);
  const auto net = small_network(rng);
  const std::vector<double> eps{0.5, 0.4, 0.6, 0.3, 0.5, 0.2};

  DistributedOptions dopt;
  dopt.policy = BetaPolicy::chernoff(0.9);
  dopt.c = 3;
  const auto dist = construct_distributed(net.membership, eps, dopt);

  ConstructionOptions copt;
  copt.policy = dopt.policy;
  eppi::Rng crng(15);
  const auto cent = calculate_betas(net.membership, eps, copt, crng);

  for (std::size_t j = 0; j < 6; ++j) {
    if (!dist.report.mixed[j] && !cent.is_apparent_common[j]) {
      EXPECT_NEAR(dist.report.betas[j], cent.betas[j], 1e-9)
          << "identity " << j;
    }
  }
  EXPECT_DOUBLE_EQ(dist.report.xi, cent.xi);
  EXPECT_NEAR(dist.report.lambda, cent.lambda, 1e-9);
}

TEST(DistributedConstructorTest, XiIsMaxEpsilonOverCommons) {
  eppi::Rng rng(16);
  // identities: 0 common with ε=0.3, 1 common with ε=0.7, 2 rare with
  // ε=0.6 (threshold 4 under the basic policy, frequency 1 stays below).
  const auto net = eppi::dataset::make_network_with_frequencies(
      8, std::vector<std::uint64_t>{8, 7, 1}, rng);
  const std::vector<double> eps{0.3, 0.7, 0.6};
  DistributedOptions options;
  options.policy = BetaPolicy::basic();
  options.c = 3;
  const auto result = construct_distributed(net.membership, eps, options);
  // ε=0.95 identity is not common (freq 1), so ξ must be 0.7, not 0.95.
  EXPECT_DOUBLE_EQ(result.report.xi, 0.7);
}

TEST(DistributedConstructorTest, CostAccountingIsPopulated) {
  eppi::Rng rng(17);
  const auto net = small_network(rng);
  const std::vector<double> eps(6, 0.5);
  DistributedOptions options;
  options.c = 3;
  const auto result = construct_distributed(net.membership, eps, options);
  EXPECT_GT(result.report.total_cost.messages, 0u);
  EXPECT_GT(result.report.total_cost.bytes, 0u);
  EXPECT_GT(result.report.total_cost.rounds, 0u);
  EXPECT_GT(result.report.count_below_stats.total_gates(), 0u);
  EXPECT_GT(result.report.mix_reveal_stats.total_gates(), 0u);
}

TEST(DistributedConstructorTest, DeterministicForFixedSeed) {
  eppi::Rng rng(18);
  const auto net = small_network(rng);
  const std::vector<double> eps(6, 0.5);
  DistributedOptions options;
  options.c = 3;
  options.seed = 99;
  const auto a = construct_distributed(net.membership, eps, options);
  const auto b = construct_distributed(net.membership, eps, options);
  EXPECT_EQ(a.index.matrix(), b.index.matrix());
  EXPECT_EQ(a.report.betas, b.report.betas);
}

TEST(DistributedConstructorTest, WorksWhenEveryProviderIsCoordinator) {
  eppi::Rng rng(19);
  const auto net = eppi::dataset::make_network_with_frequencies(
      3, std::vector<std::uint64_t>{2, 1}, rng);
  const std::vector<double> eps{0.5, 0.5};
  DistributedOptions options;
  options.c = 3;  // c == m
  const auto result = construct_distributed(net.membership, eps, options);
  EXPECT_TRUE(full_recall(net.membership, result.index.matrix()));
}

TEST(DistributedConstructorTest, LargerCollusionParameter) {
  eppi::Rng rng(20);
  const auto net = eppi::dataset::make_network_with_frequencies(
      9, std::vector<std::uint64_t>{5, 2, 7}, rng);
  const std::vector<double> eps{0.4, 0.6, 0.5};
  DistributedOptions options;
  options.c = 5;
  const auto result = construct_distributed(net.membership, eps, options);
  EXPECT_TRUE(full_recall(net.membership, result.index.matrix()));
  for (std::size_t j = 0; j < 3; ++j) {
    if (!result.report.mixed[j]) {
      EXPECT_EQ(result.report.revealed_frequencies[j],
                net.membership.col_count(j));
    }
  }
}

TEST(DistributedConstructorTest, ValidatesParameters) {
  eppi::Rng rng(21);
  const auto net = small_network(rng);
  const std::vector<double> eps(6, 0.5);
  DistributedOptions options;
  options.c = 1;
  EXPECT_THROW(construct_distributed(net.membership, eps, options),
               eppi::ConfigError);
  options.c = 8;  // c > m
  EXPECT_THROW(construct_distributed(net.membership, eps, options),
               eppi::ConfigError);
}

TEST(DistributedConstructorTest, MixingDisabledRevealsAllNonCommons) {
  eppi::Rng rng(22);
  const auto net = small_network(rng);
  const std::vector<double> eps(6, 0.5);
  DistributedOptions options;
  options.policy = BetaPolicy::basic();
  options.c = 3;
  options.enable_mixing = false;
  const auto result = construct_distributed(net.membership, eps, options);
  const auto thresholds = common_thresholds(options.policy, eps, 7);
  for (std::size_t j = 0; j < 6; ++j) {
    const bool common = net.membership.col_count(j) >= thresholds[j];
    EXPECT_EQ(result.report.mixed[j], common) << "identity " << j;
  }
  EXPECT_EQ(result.report.lambda, 0.0);
}


TEST(DistributedConstructorTest, GarbledBackendMatchesGmwSemantics) {
  eppi::Rng rng(23);
  const auto net = eppi::dataset::make_network_with_frequencies(
      6, std::vector<std::uint64_t>{5, 1, 3}, rng);
  const std::vector<double> eps{0.5, 0.6, 0.4};
  DistributedOptions gmw_opt;
  gmw_opt.policy = BetaPolicy::basic();
  gmw_opt.c = 2;
  gmw_opt.backend = MpcBackend::kGmw;
  DistributedOptions yao_opt = gmw_opt;
  yao_opt.backend = MpcBackend::kGarbled;

  const auto gmw = construct_distributed(net.membership, eps, gmw_opt);
  const auto yao = construct_distributed(net.membership, eps, yao_opt);

  // The secure functionality is identical: the opened aggregates must
  // agree; mixing coins and publication noise legitimately differ.
  EXPECT_EQ(gmw.report.common_count, yao.report.common_count);
  EXPECT_DOUBLE_EQ(gmw.report.xi, yao.report.xi);
  EXPECT_NEAR(gmw.report.lambda, yao.report.lambda, 1e-12);
  for (std::size_t j = 0; j < 3; ++j) {
    if (!gmw.report.mixed[j] && !yao.report.mixed[j]) {
      EXPECT_EQ(gmw.report.revealed_frequencies[j],
                yao.report.revealed_frequencies[j]);
    }
  }
  EXPECT_TRUE(full_recall(net.membership, yao.index.matrix()));
}

TEST(DistributedConstructorTest, GarbledBackendRequiresTwoCoordinators) {
  eppi::Rng rng(24);
  const auto net = eppi::dataset::make_network_with_frequencies(
      5, std::vector<std::uint64_t>{2}, rng);
  const std::vector<double> eps{0.5};
  DistributedOptions options;
  options.c = 3;
  options.backend = MpcBackend::kGarbled;
  EXPECT_THROW(construct_distributed(net.membership, eps, options),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::core
