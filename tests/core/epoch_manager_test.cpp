#include "core/epoch_manager.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

struct Fixture {
  eppi::dataset::Network network;
  std::vector<double> epsilons;
};

Fixture make_fixture(std::uint64_t seed) {
  eppi::Rng rng(seed);
  Fixture f;
  std::vector<std::uint64_t> freqs(60, 2);
  freqs[0] = 78;  // a common identity
  f.network = eppi::dataset::make_network_with_frequencies(80, freqs, rng);
  f.epsilons.assign(60, 0.7);
  return f;
}

TEST(EpochManagerTest, UnchangedDataProducesZeroChurn) {
  const Fixture f = make_fixture(1);
  EpochManager manager;
  const auto first = manager.rebuild(f.network.membership, f.epsilons);
  const auto second = manager.rebuild(f.network.membership, f.epsilons);
  EXPECT_EQ(first.index.matrix(), second.index.matrix());
  EXPECT_EQ(second.churn, 0u);
  EXPECT_EQ(second.epoch, 2u);
}

TEST(EpochManagerTest, FullRecallEveryEpoch) {
  const Fixture f = make_fixture(2);
  EpochManager manager;
  const auto result = manager.rebuild(f.network.membership, f.epsilons);
  EXPECT_TRUE(full_recall(f.network.membership, result.index.matrix()));
}

TEST(EpochManagerTest, DecoySetStableAcrossEpochs) {
  // The apparent-common set (true commons + sticky decoys) must not rotate
  // between epochs — rotating decoys would expose the true commons to an
  // intersection attack over time.
  const Fixture f = make_fixture(3);
  EpochManager manager;
  const auto a = manager.rebuild(f.network.membership, f.epsilons);
  const auto b = manager.rebuild(f.network.membership, f.epsilons);
  EXPECT_EQ(a.info.is_apparent_common, b.info.is_apparent_common);
  EXPECT_GT(a.info.lambda, 0.0);
}

TEST(EpochManagerTest, MembershipChangeTouchesOnlyAffectedColumns) {
  Fixture f = make_fixture(4);
  EpochManager manager;
  const auto before = manager.rebuild(f.network.membership, f.epsilons);
  // A new delegation for some non-mixed identity, at a provider whose
  // published bit was 0 — the change must surface, and only in that column.
  std::size_t target = 1;
  while (before.info.is_apparent_common[target]) ++target;
  std::size_t provider = 0;
  while (before.index.matrix().get(provider, target)) ++provider;
  f.network.membership.set(provider, target, true);
  const auto result = manager.rebuild(f.network.membership, f.epsilons);
  // β_target changes slightly with σ_target, so only that column's noise
  // may move; every other column is untouched (sticky noise + unchanged β).
  EXPECT_LE(result.churn, f.network.membership.rows());
  EXPECT_GE(result.churn, 1u);
  for (std::size_t i = 0; i < f.network.membership.rows(); ++i) {
    for (std::size_t j = 0; j < f.network.membership.cols(); ++j) {
      if (j == target) continue;
      EXPECT_EQ(result.index.matrix().get(i, j),
                before.index.matrix().get(i, j));
    }
  }
}

TEST(EpochManagerTest, RaisingEpsilonOnlyAddsNoise) {
  Fixture f = make_fixture(5);
  EpochManager manager;
  const auto before = manager.rebuild(f.network.membership, f.epsilons);
  f.epsilons[10] = 0.95;  // owner 10 tightens privacy
  const auto after = manager.rebuild(f.network.membership, f.epsilons);
  for (std::size_t i = 0; i < f.network.membership.rows(); ++i) {
    // Monotone sticky noise: no published 1 for identity 10 disappears.
    if (before.index.matrix().get(i, 10)) {
      EXPECT_TRUE(after.index.matrix().get(i, 10));
    }
  }
}

TEST(EpochManagerTest, DifferentMasterKeysProduceDifferentNoise) {
  const Fixture f = make_fixture(6);
  EpochManager::Options opt_a;
  opt_a.master_key = 1;
  EpochManager::Options opt_b;
  opt_b.master_key = 2;
  EpochManager a{opt_a};
  EpochManager b{opt_b};
  const auto ra = a.rebuild(f.network.membership, f.epsilons);
  const auto rb = b.rebuild(f.network.membership, f.epsilons);
  EXPECT_NE(ra.index.matrix(), rb.index.matrix());
}

TEST(EpochManagerTest, FirstEpochChurnIsFullMatrix) {
  const Fixture f = make_fixture(7);
  EpochManager manager;
  const auto result = manager.rebuild(f.network.membership, f.epsilons);
  EXPECT_EQ(result.churn,
            f.network.membership.rows() * f.network.membership.cols());
}

TEST(EpochManagerTest, ValidatesInput) {
  const Fixture f = make_fixture(8);
  EpochManager manager;
  const std::vector<double> wrong(3, 0.5);
  EXPECT_THROW(manager.rebuild(f.network.membership, wrong),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::core
