#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/advisor.h"
#include "core/beta_policy.h"
#include "core/guarantee.h"

namespace eppi::core {
namespace {

TEST(ExactPolicyTest, MeetsGammaAnalytically) {
  for (const double gamma : {0.8, 0.9, 0.95}) {
    const BetaPolicy policy = BetaPolicy::exact(gamma);
    for (const std::size_t m : {500u, 2000u, 10000u}) {
      for (const double sigma : {0.01, 0.05, 0.1}) {
        for (const double eps : {0.3, 0.5, 0.8}) {
          if (beta_raw(policy, sigma, eps, m) >= 1.0) continue;
          const auto f = static_cast<std::uint64_t>(sigma * m);
          const double p = policy_success_probability(policy, m, f, eps);
          EXPECT_GE(p, gamma - 1e-6)
              << "gamma=" << gamma << " m=" << m << " sigma=" << sigma;
        }
      }
    }
  }
}

TEST(ExactPolicyTest, NeverExceedsChernoff) {
  // The Chernoff bound is conservative; the exact policy returns its slack.
  for (const double gamma : {0.8, 0.9, 0.95}) {
    for (const std::size_t m : {500u, 2000u, 10000u}) {
      for (const double sigma : {0.01, 0.05, 0.1}) {
        for (const double eps : {0.3, 0.5, 0.8}) {
          const double bc = beta_chernoff(sigma, eps, gamma, m);
          const double be = beta_exact(sigma, eps, gamma, m);
          if (bc >= 1.0 || be >= 1.0) continue;
          EXPECT_LE(be, bc + 1e-9)
              << "gamma=" << gamma << " m=" << m << " sigma=" << sigma
              << " eps=" << eps;
        }
      }
    }
  }
}

TEST(ExactPolicyTest, StrictlyCheaperInOverhead) {
  // The saved noise is material: at least a few percent fewer expected
  // noise contacts in a representative configuration.
  const std::size_t m = 10000;
  const double sigma = 0.01;
  const double eps = 0.5;
  const double chernoff_cost =
      expected_overhead(BetaPolicy::chernoff(0.9), sigma, eps, m);
  const double exact_cost =
      expected_overhead(BetaPolicy::exact(0.9), sigma, eps, m);
  EXPECT_LT(exact_cost, chernoff_cost * 0.97);
  // But never below the expectation floor (basic policy).
  EXPECT_GE(exact_cost,
            expected_overhead(BetaPolicy::basic(), sigma, eps, m) * 0.999);
}

TEST(ExactPolicyTest, EdgeCases) {
  EXPECT_EQ(beta_exact(0.0, 0.5, 0.9, 100), 0.0);
  EXPECT_EQ(beta_exact(0.5, 0.0, 0.9, 100), 0.0);
  EXPECT_TRUE(std::isinf(beta_exact(1.0, 0.5, 0.9, 100)));
  EXPECT_THROW(beta_exact(0.1, 0.5, 0.4, 100), eppi::ConfigError);
  // Saturation: requirement unreachable even by broadcast.
  EXPECT_GE(beta_exact(0.9, 0.9, 0.9, 100), 1.0);
}

TEST(ExactPolicyTest, ThresholdSearchStillWorks) {
  // common_threshold relies on monotonicity of beta_raw in sigma.
  const BetaPolicy policy = BetaPolicy::exact(0.9);
  const std::size_t m = 200;
  const auto t = common_threshold(policy, 0.6, m);
  EXPECT_GT(t, 0u);
  EXPECT_LE(t, m);
  // Below the threshold the policy is not saturated; at it, it is.
  if (t > 0 && t <= m) {
    const double below = beta_raw(
        policy, static_cast<double>(t - 1) / m, 0.6, m);
    const double at = beta_raw(policy, static_cast<double>(t) / m, 0.6, m);
    EXPECT_LT(below, 1.0);
    EXPECT_GE(at, 1.0);
  }
}

}  // namespace
}  // namespace eppi::core
