#include "core/guarantee.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace eppi::core {
namespace {

TEST(BinomialTailTest, SmallExactValues) {
  // X ~ Binomial(3, 0.5): P[X>=2] = (3 + 1)/8 = 0.5.
  EXPECT_NEAR(binomial_tail_at_least(3, 0.5, 2), 0.5, 1e-12);
  // P[X>=0] = 1, P[X>=4] = 0.
  EXPECT_EQ(binomial_tail_at_least(3, 0.5, 0), 1.0);
  EXPECT_EQ(binomial_tail_at_least(3, 0.5, 4), 0.0);
  // P[X>=3] = 1/8.
  EXPECT_NEAR(binomial_tail_at_least(3, 0.5, 3), 0.125, 1e-12);
}

TEST(BinomialTailTest, EdgeProbabilities) {
  EXPECT_EQ(binomial_tail_at_least(10, 0.0, 1), 0.0);
  EXPECT_EQ(binomial_tail_at_least(10, 1.0, 10), 1.0);
  EXPECT_THROW(binomial_tail_at_least(10, 1.5, 1), eppi::ConfigError);
}

TEST(BinomialTailTest, MatchesSimulationAtScale) {
  constexpr std::uint64_t kTrials = 5000;
  constexpr double kP = 0.03;
  constexpr std::uint64_t kThreshold = 160;
  const double exact = binomial_tail_at_least(kTrials, kP, kThreshold);
  eppi::Rng rng(1);
  int hits = 0;
  constexpr int kRuns = 4000;
  for (int r = 0; r < kRuns; ++r) {
    std::uint64_t x = 0;
    for (std::uint64_t t = 0; t < kTrials; ++t) x += rng.bernoulli(kP);
    if (x >= kThreshold) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kRuns, exact, 0.03);
}

TEST(GuaranteeTest, BasicPolicyIsAboutHalf) {
  // The analytic counterpart of the simulation test in beta_policy_test.
  const double p =
      policy_success_probability(BetaPolicy::basic(), 2000, 100, 0.5);
  EXPECT_NEAR(p, 0.5, 0.06);
}

TEST(GuaranteeTest, ChernoffMeetsGammaAnalytically) {
  // Theorem 3.1 verified in closed form across a grid: the exact success
  // probability is at least gamma wherever beta has not saturated.
  for (const double gamma : {0.8, 0.9, 0.95}) {
    const BetaPolicy policy = BetaPolicy::chernoff(gamma);
    for (const std::size_t m : {500u, 2000u, 10000u}) {
      for (const double sigma : {0.01, 0.05, 0.1}) {
        for (const double eps : {0.3, 0.5, 0.8}) {
          const auto f = static_cast<std::uint64_t>(sigma * m);
          if (beta_raw(policy, sigma, eps, m) >= 1.0) continue;
          const double p = policy_success_probability(policy, m, f, eps);
          EXPECT_GE(p, gamma - 1e-9)
              << "gamma=" << gamma << " m=" << m << " sigma=" << sigma
              << " eps=" << eps;
        }
      }
    }
  }
}

TEST(GuaranteeTest, ChernoffBoundIsNotWildlyLoose) {
  // The exact probability should exceed gamma but not be pinned at 1 for
  // every configuration (the bound has bite).
  const BetaPolicy policy = BetaPolicy::chernoff(0.9);
  const double p = policy_success_probability(policy, 10000, 500, 0.5);
  EXPECT_GE(p, 0.9);
  EXPECT_LE(p, 0.99999);
}

TEST(GuaranteeTest, DegenerateCases) {
  // eps = 0: always satisfied.
  EXPECT_EQ(publication_success_probability(100, 10, 0.0, 0.0), 1.0);
  // frequency == m: no negatives, cannot meet eps > 0.
  EXPECT_EQ(publication_success_probability(100, 100, 0.5, 1.0), 0.0);
  // frequency == 0 with beta > 0: success iff at least one noise bit.
  const double p = publication_success_probability(100, 0, 0.5, 0.02);
  EXPECT_NEAR(p, 1.0 - std::pow(0.98, 100), 1e-9);
}

TEST(GuaranteeTest, MonotoneInBeta) {
  double prev = -1.0;
  for (const double beta : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double p = publication_success_probability(2000, 50, 0.5, beta);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(GuaranteeTest, Validates) {
  EXPECT_THROW(publication_success_probability(0, 0, 0.5, 0.5),
               eppi::ConfigError);
  EXPECT_THROW(publication_success_probability(10, 11, 0.5, 0.5),
               eppi::ConfigError);
  EXPECT_THROW(publication_success_probability(10, 5, 1.5, 0.5),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::core
