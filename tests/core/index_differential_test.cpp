// Differential harness: dense BitMatrix semantics vs the compressed sharded
// PostingIndex, proven bit-identical operation by operation (`ctest -L
// index`). The dense form is the executable specification — every query,
// delta splice, checksum, and store-recovery outcome computed in posting
// space must equal the same computation done on the matrix. This is what
// licenses the serving/replay tier to never materialize the dense matrix:
// the matrix still exists, but only here, as the oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "core/epoch_manager.h"
#include "core/epoch_store.h"
#include "core/index_io.h"
#include "core/posting_index.h"
#include "core/sticky_publisher.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

using eppi::storage::MemVfs;

eppi::BitMatrix random_matrix(std::size_t m, std::size_t n,
                              std::uint64_t seed, double density) {
  eppi::Rng rng(seed);
  eppi::BitMatrix matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) matrix.set(i, j, true);
    }
  }
  return matrix;
}

std::vector<ProviderId> dense_query(const eppi::BitMatrix& matrix,
                                    std::size_t j) {
  std::vector<ProviderId> out;
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    if (matrix.get(i, j)) out.push_back(static_cast<ProviderId>(i));
  }
  return out;
}

void expect_identical(const eppi::BitMatrix& matrix,
                      const PostingIndex& postings,
                      const std::string& label) {
  ASSERT_EQ(postings.providers(), matrix.rows()) << label;
  ASSERT_EQ(postings.identities(), matrix.cols()) << label;
  std::vector<ProviderId> got;
  for (std::size_t j = 0; j < matrix.cols(); ++j) {
    postings.query_into(static_cast<IdentityId>(j), got);
    ASSERT_EQ(got, dense_query(matrix, j)) << label << " identity " << j;
    ASSERT_EQ(postings.apparent_frequency(static_cast<IdentityId>(j)),
              matrix.col_count(j))
        << label << " identity " << j;
  }
  EXPECT_EQ(postings.to_matrix_index().matrix(), matrix) << label;
}

// --- query differential -----------------------------------------------------

TEST(IndexDifferentialTest, QueriesMatchDenseAcrossDensitiesAndShardSpans) {
  for (const double density : {0.0, 0.01, 0.3, 0.95}) {
    // 200 identities with span 64 exercises multi-shard layouts including a
    // ragged final shard; kDefaultShardSpan exercises the single-shard case.
    for (const std::size_t span : {std::size_t{64}, kDefaultShardSpan}) {
      const auto matrix = random_matrix(37, 200, 11 + span, density);
      const PostingIndex postings(matrix, span);
      expect_identical(matrix, postings,
                       "density " + std::to_string(density) + " span " +
                           std::to_string(span));
    }
  }
}

// --- checksum differential --------------------------------------------------

// The two matrix_checksum overloads must agree bit for bit: recovery
// verifies LEGACY delta records (pinned to the dense checksum) in posting
// space, which is only sound if the posting-space computation reproduces
// the dense value exactly.
TEST(IndexDifferentialTest, MatrixChecksumAgreesAcrossRepresentations) {
  for (const double density : {0.0, 0.05, 0.5}) {
    for (const auto& [m, n] :
         {std::pair<std::size_t, std::size_t>{3, 63},
          std::pair<std::size_t, std::size_t>{8, 64},
          std::pair<std::size_t, std::size_t>{21, 193}}) {
      const auto matrix = random_matrix(m, n, m * 31 + n, density);
      const PostingIndex postings(matrix, 64);
      EXPECT_EQ(matrix_checksum(matrix), matrix_checksum(postings))
          << m << "x" << n << " d=" << density;
      EXPECT_EQ(postings_checksum(matrix), postings_checksum(postings))
          << m << "x" << n << " d=" << density;
    }
  }
}

// --- splice differential ----------------------------------------------------

EpochStore::EpochDelta make_delta(const eppi::BitMatrix& next,
                                  std::uint64_t epoch,
                                  std::uint64_t base_epoch,
                                  std::vector<std::uint32_t> joined,
                                  std::vector<std::uint32_t> left,
                                  std::vector<std::uint32_t> row_ids,
                                  std::vector<std::uint32_t> col_ids) {
  EpochStore::EpochDelta d;
  d.epoch = epoch;
  d.base_epoch = base_epoch;
  d.rows = next.rows();
  d.cols = next.cols();
  d.lambda = 0.25;
  d.joined = std::move(joined);
  d.left = std::move(left);
  for (const std::uint32_t p : row_ids) {
    EpochStore::EpochDelta::Row row;
    row.provider = p;
    row.bits.assign((next.cols() + 7) / 8, 0);
    for (std::size_t j = 0; j < next.cols(); ++j) {
      if (next.get(p, j)) row.bits[j >> 3] |= 1u << (j & 7);
    }
    d.row_splices.push_back(std::move(row));
  }
  for (const std::uint32_t j : col_ids) {
    EpochStore::EpochDelta::Column col;
    col.identity = j;
    col.bits.assign((next.rows() + 7) / 8, 0);
    for (std::size_t i = 0; i < next.rows(); ++i) {
      if (next.get(i, j)) col.bits[i >> 3] |= 1u << (i & 7);
    }
    d.col_splices.push_back(std::move(col));
  }
  d.matrix_crc = matrix_checksum(next);
  d.postings_crc = postings_checksum(next);
  d.has_postings_crc = true;
  return d;
}

// apply_delta (dense) and apply_delta_postings (compressed) must produce
// the same published index for every delta shape: same-shape column
// recomputes, grown shapes, retirements, joins with spliced rows, and
// overlapping row+column splices (where the column's FINAL value must win
// in both implementations).
TEST(IndexDifferentialTest, DeltaSpliceMatchesDenseApplyDelta) {
  const auto base = random_matrix(6, 130, 42, 0.2);
  const PostingIndex base_postings(base, 64);

  struct Case {
    const char* name;
    eppi::BitMatrix next;
    EpochStore::EpochDelta delta;
  };
  std::vector<Case> cases;

  {  // Same shape, two recomputed columns.
    eppi::BitMatrix next = base;
    next.set(0, 5, !next.get(0, 5));
    next.set(3, 64, !next.get(3, 64));
    cases.push_back({"columns", next,
                     make_delta(next, 2, 1, {}, {}, {}, {5, 64})});
  }
  {  // Retirement: provider 2's row zeroed, its identities recomputed.
    eppi::BitMatrix next = base;
    std::vector<std::uint32_t> cols;
    for (std::size_t j = 0; j < next.cols(); ++j) {
      if (next.get(2, j)) {
        cols.push_back(static_cast<std::uint32_t>(j));
        next.set(2, j, false);
      }
    }
    cases.push_back({"retire", next,
                     make_delta(next, 2, 1, {}, {2}, {}, cols)});
  }
  {  // Growth: new provider row 6 and new identity column 130.
    eppi::BitMatrix next(7, 131);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 130; ++j) {
        if (base.get(i, j)) next.set(i, j, true);
      }
    }
    next.set(6, 0, true);
    next.set(6, 130, true);
    next.set(1, 130, true);
    cases.push_back({"grow", next,
                     make_delta(next, 2, 1, {6}, {}, {6}, {130})});
  }
  {  // Overlap: row splice and column splice covering the same cell.
    eppi::BitMatrix next = base;
    for (std::size_t j = 0; j < next.cols(); ++j) next.set(4, j, j % 3 == 0);
    next.set(0, 7, true);
    next.set(4, 7, true);  // cell (4,7) covered by BOTH splices
    cases.push_back({"overlap", next,
                     make_delta(next, 2, 1, {}, {}, {4}, {7})});
  }

  for (auto& c : cases) {
    const eppi::BitMatrix dense = apply_delta(base, c.delta);
    ASSERT_EQ(dense, c.next) << c.name << ": oracle disagrees with intent";
    const PostingIndex compressed =
        apply_delta_postings(base_postings, c.delta);
    expect_identical(dense, compressed, c.name);
    EXPECT_EQ(matrix_checksum(dense), matrix_checksum(compressed)) << c.name;
    EXPECT_EQ(postings_checksum(dense), postings_checksum(compressed))
        << c.name;
  }
}

// Randomized splice fuzz: random base, random delta (drops, row splices,
// column splices, growth), dense vs compressed must agree every round.
TEST(IndexDifferentialTest, RandomizedDeltaFuzz) {
  eppi::Rng rng(777);
  eppi::BitMatrix current = random_matrix(5, 70, 1, 0.25);
  PostingIndex current_postings(current, 64);
  for (int round = 0; round < 25; ++round) {
    const bool grow = rng.bernoulli(0.2);
    const std::size_t m = current.rows() + (grow ? 1 : 0);
    const std::size_t n = current.cols() + (grow ? 2 : 0);
    eppi::BitMatrix next(m, n);
    for (std::size_t i = 0; i < current.rows(); ++i) {
      for (std::size_t j = 0; j < current.cols(); ++j) {
        if (current.get(i, j)) next.set(i, j, true);
      }
    }
    std::vector<std::uint32_t> rows, cols, left;
    for (std::size_t i = 0; i < m; ++i) {
      if (rng.bernoulli(0.2)) {
        rows.push_back(static_cast<std::uint32_t>(i));
        for (std::size_t j = 0; j < n; ++j) {
          next.set(i, j, rng.bernoulli(0.3));
        }
      } else if (rng.bernoulli(0.1)) {
        left.push_back(static_cast<std::uint32_t>(i));
        for (std::size_t j = 0; j < n; ++j) next.set(i, j, false);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.15)) {
        cols.push_back(static_cast<std::uint32_t>(j));
        for (std::size_t i = 0; i < m; ++i) {
          next.set(i, j, rng.bernoulli(0.4));
        }
      }
    }
    const auto delta =
        make_delta(next, round + 2, round + 1, {}, left, rows, cols);
    const eppi::BitMatrix dense = apply_delta(current, delta);
    const PostingIndex compressed =
        apply_delta_postings(current_postings, delta);
    expect_identical(dense, compressed, "round " + std::to_string(round));
    current = dense;
    current_postings = compressed;
  }
}

// --- recovery differential --------------------------------------------------

// A store-backed lifecycle (full epoch + delta chain, PR 8's machinery) now
// persists v3 and replays in posting space; the recovered epochs must be
// bit-identical to the dense replay of the same journal — and to what was
// committed.
TEST(IndexDifferentialTest, StoreRecoveryMatchesDenseReplay) {
  MemVfs vfs;
  const auto base = random_matrix(4, 80, 9, 0.3);
  eppi::BitMatrix e2 = base;
  e2.set(0, 3, !e2.get(0, 3));
  e2.set(2, 77, !e2.get(2, 77));
  eppi::BitMatrix e3 = e2;
  for (std::size_t j = 0; j < e3.cols(); ++j) e3.set(1, j, false);

  {
    EpochStore store(vfs, "store");
    store.record_sticky_state({.master_key = 5, .enable_mixing = true});
    store.commit_epoch(1, PostingIndex(base, 64), 0.1);
    store.commit_delta(make_delta(e2, 2, 1, {}, {}, {}, {3, 77}));
    store.commit_delta(make_delta(e3, 3, 2, {}, {1}, {}, {}));
  }

  EpochStore reopened(vfs, "store");
  ASSERT_EQ(reopened.latest_epoch(), 3u);
  for (const auto& [epoch, want] :
       {std::pair<std::uint64_t, const eppi::BitMatrix*>{1, &base},
        std::pair<std::uint64_t, const eppi::BitMatrix*>{2, &e2},
        std::pair<std::uint64_t, const eppi::BitMatrix*>{3, &e3}}) {
    const LoadedIndex loaded = reopened.load_epoch_postings(epoch);
    expect_identical(*want, loaded.postings,
                     "epoch " + std::to_string(epoch));
    // The dense convenience load must agree with the postings load.
    EXPECT_EQ(reopened.load_epoch(epoch).matrix(), *want);
  }
}

// Legacy pin: a delta record carrying ONLY the dense matrix checksum (a
// pre-v3 journal, has_postings_crc=false) must still replay and verify in
// posting space. This is the PR 8 bit-identity pin carried onto v3.
TEST(IndexDifferentialTest, LegacyMatrixPinnedDeltaReplaysOnV3) {
  MemVfs vfs;
  const auto base = random_matrix(5, 60, 13, 0.25);
  eppi::BitMatrix e2 = base;
  e2.set(4, 59, !e2.get(4, 59));

  {
    EpochStore store(vfs, "store");
    store.record_sticky_state({.master_key = 5, .enable_mixing = true});
    store.commit_epoch(1, PostingIndex(base, 64), 0.1);
    auto delta = make_delta(e2, 2, 1, {}, {}, {}, {59});
    delta.has_postings_crc = false;  // journal as a legacy type-3 record
    delta.postings_crc = 0;
    store.commit_delta(delta);
  }

  EpochStore reopened(vfs, "store");
  ASSERT_EQ(reopened.latest_epoch(), 2u);
  const auto& rec = reopened.delta_record(2);
  EXPECT_FALSE(rec.has_postings_crc);
  EXPECT_EQ(rec.matrix_crc, matrix_checksum(e2));
  expect_identical(e2, reopened.load_epoch_postings(2).postings, "legacy");
}

// The manager's incremental rebuild (PR 8) committed through the new v3
// store must recover byte-identically: same published matrix, and the
// recovered lineage re-serves it without a dense replay.
TEST(IndexDifferentialTest, ManagerDeltaLifecycleRecoversIdentically) {
  MemVfs vfs;
  eppi::BitMatrix truth = random_matrix(4, 24, 3, 0.35);
  const std::vector<double> eps(24, 0.5);

  eppi::BitMatrix published;
  {
    EpochStore store(vfs, "store");
    EpochManager::Options opt;
    opt.master_key = 21;
    EpochManager manager(opt);
    manager.attach_store(store);
    manager.rebuild(truth, eps);
    truth.set(2, 5, !truth.get(2, 5));
    EpochManager::DeltaRequest req;
    req.dirty = {5};
    manager.rebuild_delta(truth, eps, req);
    published = manager.current_matrix();
  }

  EpochStore reopened(vfs, "store");
  ASSERT_TRUE(reopened.latest_epoch().has_value());
  const LoadedIndex loaded =
      reopened.load_epoch_postings(*reopened.latest_epoch());
  expect_identical(published, loaded.postings, "manager lifecycle");

  EpochManager::Options opt;
  opt.master_key = 21;
  EpochManager resumed(opt);
  resumed.attach_store(reopened);
  ASSERT_TRUE(resumed.serving());
  EXPECT_EQ(resumed.current_matrix(), published);
}

// Sticky publication in posting space is the same publication: the lists
// sticky_publish_postings emits must invert sticky_publish_matrix exactly,
// bit for bit, for the same (truth, betas, keys) — the matrix-free
// construction path is not allowed to publish even one different noise
// bit.
TEST(IndexDifferentialTest, StickyPostingPublicationMatchesMatrix) {
  const std::size_t m = 37;
  const std::size_t n = 130;
  const auto truth = random_matrix(m, n, 404, 0.1);
  eppi::Rng rng(405);
  std::vector<double> betas(n);
  for (auto& b : betas) b = static_cast<double>(rng.next_below(100)) / 100.0;
  std::vector<std::uint64_t> keys(m);
  for (auto& k : keys) k = rng.next();

  const eppi::BitMatrix published =
      sticky_publish_matrix(truth, betas, keys);
  const auto lists = sticky_publish_postings(truth, betas, keys);
  ASSERT_EQ(lists.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(lists[j], dense_query(published, j)) << "identity " << j;
  }
  // And the compressed index built from those lists answers like the
  // matrix built the classic way.
  const PostingIndex postings(m, lists, 64);
  expect_identical(published, postings, "sticky postings");
}

}  // namespace
}  // namespace eppi::core
