#include "core/index_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

PpiIndex sample_index(std::size_t m, std::size_t n, std::uint64_t seed) {
  eppi::Rng rng(seed);
  eppi::BitMatrix matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) matrix.set(i, j, true);
    }
  }
  return PpiIndex(std::move(matrix));
}

TEST(IndexIoTest, RoundTripPreservesMatrix) {
  const PpiIndex original = sample_index(17, 130, 1);  // cols span 3 words
  std::stringstream ss;
  save_index(ss, original);
  const PpiIndex loaded = load_index(ss);
  EXPECT_EQ(loaded.matrix(), original.matrix());
}

TEST(IndexIoTest, RoundTripEmptyIndex) {
  const PpiIndex original{eppi::BitMatrix(3, 4)};
  std::stringstream ss;
  save_index(ss, original);
  const PpiIndex loaded = load_index(ss);
  EXPECT_EQ(loaded.providers(), 3u);
  EXPECT_EQ(loaded.identities(), 4u);
  EXPECT_EQ(loaded.matrix().popcount(), 0u);
}

TEST(IndexIoTest, QueriesSurviveRoundTrip) {
  const PpiIndex original = sample_index(20, 10, 2);
  std::stringstream ss;
  save_index(ss, original);
  const PpiIndex loaded = load_index(ss);
  for (IdentityId j = 0; j < 10; ++j) {
    EXPECT_EQ(loaded.query(j), original.query(j));
  }
}

TEST(IndexIoTest, BadMagicRejected) {
  std::stringstream ss("not-an-index-file-at-all");
  EXPECT_THROW(load_index(ss), eppi::SerializeError);
}

TEST(IndexIoTest, TruncatedFileRejected) {
  const PpiIndex original = sample_index(8, 8, 3);
  std::stringstream ss;
  save_index(ss, original);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_index(truncated), eppi::SerializeError);
}

TEST(IndexIoTest, ImplausibleDimensionsRejected) {
  std::stringstream ss;
  ss.write("eppiidx1", 8);
  // rows = 2^40, cols = 1: must be rejected before allocation.
  const std::uint64_t rows = std::uint64_t{1} << 40;
  const std::uint64_t cols = 1;
  for (int i = 0; i < 8; ++i) ss.put(static_cast<char>(rows >> (8 * i)));
  for (int i = 0; i < 8; ++i) ss.put(static_cast<char>(cols >> (8 * i)));
  EXPECT_THROW(load_index(ss), eppi::SerializeError);
}

TEST(IndexIoTest, EmptyStreamRejected) {
  std::stringstream ss;
  EXPECT_THROW(load_index(ss), eppi::SerializeError);
}

// --- eppi-index-v2 integrity sections --------------------------------------

IndexSection section_of(const std::vector<std::uint8_t>& bytes) {
  try {
    (void)load_index_bytes(bytes);
  } catch (const CorruptIndexError& e) {
    return e.section();
  }
  ADD_FAILURE() << "expected CorruptIndexError";
  return IndexSection::kMagic;
}

TEST(IndexIoTest, V2BytesRoundTrip) {
  const PpiIndex original = sample_index(9, 70, 4);
  const auto bytes = save_index_bytes(original);
  const PpiIndex loaded = load_index_bytes(bytes);
  EXPECT_EQ(loaded.matrix(), original.matrix());
  const IndexValidation v = validate_index(bytes);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.version, 2);
}

TEST(IndexIoTest, V1StillLoads) {
  const PpiIndex original = sample_index(6, 40, 5);
  std::stringstream ss;
  save_index_v1(ss, original);
  const PpiIndex loaded = load_index(ss);
  EXPECT_EQ(loaded.matrix(), original.matrix());
}

TEST(IndexIoTest, V2HeaderBitFlipNamesHeaderSection) {
  auto bytes = save_index_bytes(sample_index(5, 9, 6));
  bytes[10] ^= 0x01;  // inside the dimension fields
  EXPECT_EQ(section_of(bytes), IndexSection::kHeader);
}

TEST(IndexIoTest, V2PayloadBitFlipNamesPayloadSection) {
  auto bytes = save_index_bytes(sample_index(5, 9, 6));
  bytes[30] ^= 0x80;  // inside the packed matrix words
  EXPECT_EQ(section_of(bytes), IndexSection::kPayload);
}

TEST(IndexIoTest, V2TornWriteNamesFooterSection) {
  const auto bytes = save_index_bytes(sample_index(5, 9, 6));
  // Cut inside the footer: header and payload verify, the seal is missing —
  // the signature of a partially flushed write.
  const std::vector<std::uint8_t> torn(bytes.begin(), bytes.end() - 6);
  EXPECT_EQ(section_of(torn), IndexSection::kFooter);
}

TEST(IndexIoTest, V2TrailingGarbageRejected) {
  auto bytes = save_index_bytes(sample_index(5, 9, 6));
  bytes.push_back(0x00);
  EXPECT_EQ(section_of(bytes), IndexSection::kTrailing);
}

TEST(IndexIoTest, V1TrailingGarbageRejected) {
  const PpiIndex original = sample_index(6, 40, 5);
  std::stringstream ss;
  save_index_v1(ss, original);
  ss << "extra";
  EXPECT_THROW(load_index(ss), eppi::SerializeError);
}

TEST(IndexIoTest, ValidateReportsEverySection) {
  auto bytes = save_index_bytes(sample_index(4, 17, 7));
  bytes[30] ^= 0x01;                      // corrupt the payload...
  bytes[bytes.size() - 1] ^= 0x01;        // ...and the seal checksum
  const IndexValidation v = validate_index(bytes);
  EXPECT_FALSE(v.ok);
  bool payload_bad = false;
  bool footer_bad = false;
  for (const auto& check : v.sections) {
    if (check.section == IndexSection::kPayload && !check.ok)
      payload_bad = true;
    if (check.section == IndexSection::kFooter && !check.ok) footer_bad = true;
  }
  EXPECT_TRUE(payload_bad);
  EXPECT_TRUE(footer_bad);
}

TEST(IndexIoTest, ValidateUnrecognizedMagic) {
  const std::vector<std::uint8_t> junk{'n', 'o', 'p', 'e'};
  const IndexValidation v = validate_index(junk);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.version, 0);
}

}  // namespace
}  // namespace eppi::core
