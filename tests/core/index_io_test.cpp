#include "core/index_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

PpiIndex sample_index(std::size_t m, std::size_t n, std::uint64_t seed) {
  eppi::Rng rng(seed);
  eppi::BitMatrix matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) matrix.set(i, j, true);
    }
  }
  return PpiIndex(std::move(matrix));
}

TEST(IndexIoTest, RoundTripPreservesMatrix) {
  const PpiIndex original = sample_index(17, 130, 1);  // cols span 3 words
  std::stringstream ss;
  save_index(ss, original);
  const PpiIndex loaded = load_index(ss);
  EXPECT_EQ(loaded.matrix(), original.matrix());
}

TEST(IndexIoTest, RoundTripEmptyIndex) {
  const PpiIndex original{eppi::BitMatrix(3, 4)};
  std::stringstream ss;
  save_index(ss, original);
  const PpiIndex loaded = load_index(ss);
  EXPECT_EQ(loaded.providers(), 3u);
  EXPECT_EQ(loaded.identities(), 4u);
  EXPECT_EQ(loaded.matrix().popcount(), 0u);
}

TEST(IndexIoTest, QueriesSurviveRoundTrip) {
  const PpiIndex original = sample_index(20, 10, 2);
  std::stringstream ss;
  save_index(ss, original);
  const PpiIndex loaded = load_index(ss);
  for (IdentityId j = 0; j < 10; ++j) {
    EXPECT_EQ(loaded.query(j), original.query(j));
  }
}

TEST(IndexIoTest, BadMagicRejected) {
  std::stringstream ss("not-an-index-file-at-all");
  EXPECT_THROW(load_index(ss), eppi::SerializeError);
}

TEST(IndexIoTest, TruncatedFileRejected) {
  const PpiIndex original = sample_index(8, 8, 3);
  std::stringstream ss;
  save_index(ss, original);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_index(truncated), eppi::SerializeError);
}

TEST(IndexIoTest, ImplausibleDimensionsRejected) {
  std::stringstream ss;
  ss.write("eppiidx1", 8);
  // rows = 2^40, cols = 1: must be rejected before allocation.
  const std::uint64_t rows = std::uint64_t{1} << 40;
  const std::uint64_t cols = 1;
  for (int i = 0; i < 8; ++i) ss.put(static_cast<char>(rows >> (8 * i)));
  for (int i = 0; i < 8; ++i) ss.put(static_cast<char>(cols >> (8 * i)));
  EXPECT_THROW(load_index(ss), eppi::SerializeError);
}

TEST(IndexIoTest, EmptyStreamRejected) {
  std::stringstream ss;
  EXPECT_THROW(load_index(ss), eppi::SerializeError);
}

}  // namespace
}  // namespace eppi::core
