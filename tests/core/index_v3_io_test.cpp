// eppi-index-v3 persistence: round-trips, per-shard integrity sections,
// lexicon validation, v2→v3 migration, and store-level quarantine of files
// with corrupt shards (`ctest -L index`).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/epoch_store.h"
#include "core/index_io.h"
#include "core/lexicon.h"
#include "core/posting_index.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

using eppi::storage::MemVfs;

eppi::BitMatrix sample_matrix(std::size_t m, std::size_t n,
                              std::uint64_t seed, double density = 0.3) {
  eppi::Rng rng(seed);
  eppi::BitMatrix matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) matrix.set(i, j, true);
    }
  }
  return matrix;
}

Lexicon sample_lexicon(std::size_t n) {
  std::vector<std::pair<std::string, IdentityId>> entries;
  for (std::size_t t = 0; t < n; ++t) {
    entries.emplace_back("owner-" + std::to_string(t),
                         static_cast<IdentityId>(t));
  }
  return Lexicon(std::move(entries));
}

void expect_same_index(const PostingIndex& a, const PostingIndex& b) {
  ASSERT_EQ(a.providers(), b.providers());
  ASSERT_EQ(a.identities(), b.identities());
  std::vector<ProviderId> la, lb;
  for (std::size_t j = 0; j < a.identities(); ++j) {
    a.query_into(static_cast<IdentityId>(j), la);
    b.query_into(static_cast<IdentityId>(j), lb);
    ASSERT_EQ(la, lb) << "identity " << j;
  }
}

TEST(IndexV3IoTest, RoundTripPreservesPostingsAndTopology) {
  const auto matrix = sample_matrix(23, 300, 1);
  const PostingIndex original(matrix, 128);
  const auto bytes = save_index_v3_bytes(original, nullptr);

  const IndexValidation v = validate_index(bytes);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.version, 3);
  EXPECT_EQ(v.shards, 3);  // ⌈300/128⌉
  EXPECT_FALSE(v.has_lexicon);

  const LoadedIndex loaded = load_postings_bytes(bytes);
  EXPECT_EQ(loaded.lexicon, nullptr);
  EXPECT_EQ(loaded.postings.shard_span(), 128u);
  EXPECT_EQ(loaded.postings.shard_count(), 3u);
  expect_same_index(original, loaded.postings);
  // The shard storage is adopted verbatim: re-serializing reproduces the
  // exact bytes (deterministic format, no re-encoding drift).
  EXPECT_EQ(save_index_v3_bytes(loaded.postings, nullptr), bytes);
}

TEST(IndexV3IoTest, LexiconSectionRoundTrips) {
  const auto matrix = sample_matrix(9, 50, 2);
  const PostingIndex original(matrix, 64);
  const Lexicon lex = sample_lexicon(50);
  const auto bytes = save_index_v3_bytes(original, &lex);

  const IndexValidation v = validate_index(bytes);
  EXPECT_TRUE(v.ok);
  EXPECT_TRUE(v.has_lexicon);

  const LoadedIndex loaded = load_postings_bytes(bytes);
  ASSERT_NE(loaded.lexicon, nullptr);
  ASSERT_EQ(loaded.lexicon->size(), 50u);
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_EQ(loaded.lexicon->find("owner-" + std::to_string(t)),
              static_cast<IdentityId>(t));
  }
  EXPECT_EQ(loaded.lexicon->find("nobody"), std::nullopt);
}

TEST(IndexV3IoTest, ShapeIsReadableWithoutDecoding) {
  const PostingIndex original(sample_matrix(7, 80, 3), 64);
  const auto bytes = save_index_v3_bytes(original, nullptr);
  const IndexShape shape = index_shape(bytes);
  EXPECT_EQ(shape.rows, 7u);
  EXPECT_EQ(shape.cols, 80u);
}

// A flipped byte inside one shard must fail THAT shard's checksum, name the
// shard in the validation report, and leave the other shards' checks green
// — fsck's "which shards of this file are damaged" story.
TEST(IndexV3IoTest, ShardBitFlipNamesTheFailingShard) {
  const PostingIndex original(sample_matrix(31, 256, 4, 0.4), 64);
  auto bytes = save_index_v3_bytes(original, nullptr);
  // Flip a byte well inside the payload region (past the 40-byte header and
  // the first shard's length/header words): lands in some shard's blob.
  bytes[bytes.size() / 2] ^= 0x40;

  const IndexValidation v = validate_index(bytes);
  EXPECT_FALSE(v.ok);
  int failing_shards = 0;
  for (const auto& c : v.sections) {
    if (c.section == IndexSection::kShard && !c.ok) {
      ++failing_shards;
      EXPECT_NE(c.detail.find("shard "), std::string::npos) << c.detail;
    }
  }
  EXPECT_EQ(failing_shards, 1) << "exactly one shard should fail its CRC";

  try {
    (void)load_postings_bytes(bytes);
    FAIL() << "expected CorruptIndexError";
  } catch (const CorruptIndexError& e) {
    EXPECT_EQ(e.section(), IndexSection::kShard);
  }
}

TEST(IndexV3IoTest, LexiconBitFlipNamesTheLexiconSection) {
  const PostingIndex original(sample_matrix(5, 40, 5), 64);
  const Lexicon lex = sample_lexicon(40);
  const auto clean = save_index_v3_bytes(original, nullptr);
  auto bytes = save_index_v3_bytes(original, &lex);
  // The lexicon section sits between the last shard and the footer; clean
  // and lexicon-carrying files share the leading bytes, so flip inside the
  // added region (before the 12-byte footer).
  bytes[clean.size() - 12 + 8] ^= 0x04;

  const IndexValidation v = validate_index(bytes);
  EXPECT_FALSE(v.ok);
  bool lexicon_failed = false;
  for (const auto& c : v.sections) {
    if (c.section == IndexSection::kLexicon && !c.ok) lexicon_failed = true;
    if (c.section == IndexSection::kShard) EXPECT_TRUE(c.ok) << c.detail;
  }
  EXPECT_TRUE(lexicon_failed);
}

// Truncation anywhere must read as a torn write: the footer check fails
// (that is how recovery tells "never finished" from "rotted"), and the load
// throws. Every truncation point, as in the v1/v2 fuzzers.
TEST(IndexV3IoTest, EveryTruncationPointRejected) {
  const PostingIndex original(sample_matrix(6, 70, 6), 64);
  const Lexicon lex = sample_lexicon(70);
  const auto bytes = save_index_v3_bytes(original, &lex);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> torn(bytes.data(), cut);
    EXPECT_THROW((void)load_postings_bytes(torn), eppi::SerializeError)
        << "cut=" << cut;
    const IndexValidation v = validate_index(torn);
    EXPECT_FALSE(v.ok) << "cut=" << cut;
  }
}

TEST(IndexV3IoTest, TrailingBytesRejected) {
  const PostingIndex original(sample_matrix(4, 20, 7), 64);
  auto bytes = save_index_v3_bytes(original, nullptr);
  bytes.push_back(0x00);
  try {
    (void)load_postings_bytes(bytes);
    FAIL() << "expected CorruptIndexError";
  } catch (const CorruptIndexError& e) {
    EXPECT_EQ(e.section(), IndexSection::kTrailing);
  }
}

// --- migration ---------------------------------------------------------------

// v1/v2 files load into the compressed form (no dense matrix on the path),
// and re-persisting as v3 then loading again is lossless: the v2→v3
// migration a store performs implicitly on its next commit.
TEST(IndexV3IoTest, V2ToV3MigrationRoundTrip) {
  const auto matrix = sample_matrix(19, 140, 8);
  const PpiIndex dense(matrix);
  const auto v2_bytes = save_index_bytes(dense);
  ASSERT_EQ(validate_index(v2_bytes).version, 2);

  const LoadedIndex migrated = load_postings_bytes(v2_bytes);
  EXPECT_EQ(migrated.lexicon, nullptr);
  EXPECT_EQ(migrated.postings.providers(), 19u);
  EXPECT_EQ(migrated.postings.identities(), 140u);

  const auto v3_bytes = save_index_v3_bytes(migrated.postings, nullptr);
  ASSERT_EQ(validate_index(v3_bytes).version, 3);
  const LoadedIndex reloaded = load_postings_bytes(v3_bytes);
  expect_same_index(migrated.postings, reloaded.postings);
  // Full circle to the dense form: nothing was lost in either hop.
  EXPECT_EQ(reloaded.postings.to_matrix_index().matrix(), matrix);
}

// --- fsck / store integration ------------------------------------------------

TEST(IndexV3IoTest, FsckReportsCleanV3File) {
  MemVfs vfs;
  const PostingIndex original(sample_matrix(8, 90, 9), 64);
  const Lexicon lex = sample_lexicon(90);
  vfs.make_dir("d");
  eppi::storage::atomic_write_file(vfs, "d/epoch-1.idx",
                                   save_index_v3_bytes(original, &lex));
  const FsckReport report = fsck_index_file(vfs, "d/epoch-1.idx");
  EXPECT_TRUE(report.ok) << (report.issues.empty()
                                 ? ""
                                 : report.issues[0].message);
}

// The lexicon validator enforces dense, in-range ids and sorted names; a
// hand-built v3 file with a lexicon naming an id outside the identity
// universe must fail the lexicon section.
TEST(IndexV3IoTest, FsckRejectsLexiconLargerThanUniverse) {
  const PostingIndex original(sample_matrix(4, 10, 10), 64);
  const Lexicon big = sample_lexicon(11);  // 11 names, 10 identities
  const auto bytes = save_index_v3_bytes(original, &big);
  const IndexValidation v = validate_index(bytes);
  EXPECT_FALSE(v.ok);
  bool lexicon_failed = false;
  for (const auto& c : v.sections) {
    if (c.section == IndexSection::kLexicon && !c.ok) {
      lexicon_failed = true;
      EXPECT_NE(c.detail.find("universe"), std::string::npos) << c.detail;
    }
  }
  EXPECT_TRUE(lexicon_failed);
}

// Store recovery over a v3 file with a rotted shard: the file is
// quarantined (named shard section in the note), the epoch is reported
// missing, and the store stays usable.
TEST(IndexV3IoTest, StoreQuarantinesFileWithCorruptShard) {
  MemVfs vfs;
  const auto matrix = sample_matrix(12, 200, 11, 0.35);
  {
    EpochStore store(vfs, "store");
    store.record_sticky_state({.master_key = 9, .enable_mixing = true});
    store.commit_epoch(1, PostingIndex(matrix, 64), 0.2);
  }
  auto bytes = vfs.read_file("store/epoch-1.idx");
  bytes[bytes.size() / 2] ^= 0x10;  // inside some shard blob
  eppi::storage::atomic_write_file(vfs, "store/epoch-1.idx", bytes);

  EpochStore reopened(vfs, "store");
  EXPECT_EQ(reopened.recovery_report().quarantined, 1u);
  bool named_shard = false;
  for (const auto& note : reopened.recovery_report().notes) {
    if (note.find("quarantined epoch-1.idx") != std::string::npos &&
        note.find("shard") != std::string::npos) {
      named_shard = true;
    }
  }
  EXPECT_TRUE(named_shard);
  EXPECT_EQ(reopened.latest_epoch(), std::nullopt);
  EXPECT_TRUE(vfs.exists("store/quarantine/epoch-1.idx"));
}

// fsck_store walks v3 files end to end: a clean store (full epoch + delta)
// reports ok with zero issues.
TEST(IndexV3IoTest, FsckStoreCleanOnV3Lineage) {
  MemVfs vfs;
  const auto base = sample_matrix(6, 64, 12, 0.3);
  eppi::BitMatrix e2 = base;
  e2.set(3, 8, !e2.get(3, 8));
  {
    EpochStore store(vfs, "store");
    store.record_sticky_state({.master_key = 10, .enable_mixing = true});
    store.commit_epoch(1, PostingIndex(base, 64), 0.2);
    EpochStore::EpochDelta d;
    d.epoch = 2;
    d.base_epoch = 1;
    d.rows = e2.rows();
    d.cols = e2.cols();
    d.lambda = 0.2;
    EpochStore::EpochDelta::Column col;
    col.identity = 8;
    col.bits.assign((e2.rows() + 7) / 8, 0);
    for (std::size_t i = 0; i < e2.rows(); ++i) {
      if (e2.get(i, 8)) col.bits[i >> 3] |= 1u << (i & 7);
    }
    d.col_splices.push_back(std::move(col));
    d.matrix_crc = matrix_checksum(e2);
    d.postings_crc = postings_checksum(e2);
    d.has_postings_crc = true;
    store.commit_delta(d);
  }
  const FsckReport report = fsck_store(vfs, "store");
  EXPECT_TRUE(report.ok) << (report.issues.empty()
                                 ? ""
                                 : report.issues[0].message);
  EXPECT_GE(report.files_checked, 2u);  // manifest + epoch-1.idx
}

}  // namespace
}  // namespace eppi::core
