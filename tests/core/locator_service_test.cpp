#include "core/locator_service.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"

namespace eppi::core {
namespace {

LocatorService::Options fast_options(bool distributed = false) {
  LocatorService::Options options;
  options.distributed = distributed;
  options.policy = BetaPolicy::chernoff(0.9);
  options.seed = 7;
  return options;
}

void populate_hie(LocatorService& service) {
  service.delegate("alice", 0.4, "general");
  service.delegate("alice", 0.4, "mercy");
  service.delegate("bob", 0.3, "general");
  service.delegate("carol", 0.9, "general");
  service.delegate("carol", 0.9, "mercy");
  service.delegate("carol", 0.9, "lakeside");
  service.delegate("carol", 0.9, "county");
  service.delegate("dave", 0.5, "county");
}

TEST(LocatorServiceTest, RegistrationIsIdempotent) {
  LocatorService service{fast_options()};
  const auto p1 = service.register_provider("general");
  const auto p2 = service.register_provider("general");
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(service.n_providers(), 1u);
  const auto t1 = service.register_owner("alice");
  const auto t2 = service.register_owner("alice");
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(service.provider_name(p1), "general");
  EXPECT_EQ(service.owner_name(t1), "alice");
}

TEST(LocatorServiceTest, DelegateValidatesEpsilon) {
  LocatorService service{fast_options()};
  EXPECT_THROW(service.delegate("a", 1.5, "p"), eppi::ConfigError);
  EXPECT_THROW(service.delegate("a", -0.1, "p"), eppi::ConfigError);
}

TEST(LocatorServiceTest, QueryBeforeConstructionThrows) {
  LocatorService service{fast_options()};
  service.delegate("alice", 0.5, "general");
  EXPECT_THROW(service.query_ppi("alice"), eppi::ConfigError);
  EXPECT_THROW(service.index(), eppi::ConfigError);
}

TEST(LocatorServiceTest, ConstructionRequiresDelegations) {
  LocatorService service{fast_options()};
  EXPECT_THROW(service.construct_ppi(), eppi::ConfigError);
}

TEST(LocatorServiceTest, QueryIncludesEveryTrueProvider) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();
  const auto result = service.query_ppi("alice");
  EXPECT_NE(std::find(result.begin(), result.end(), "general"), result.end());
  EXPECT_NE(std::find(result.begin(), result.end(), "mercy"), result.end());
}

TEST(LocatorServiceTest, SearchSeparatesMatchesFromNoise) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();
  const auto result = service.search("dr-jones", "bob");
  ASSERT_EQ(result.matched, (std::vector<std::string>{"general"}));
  EXPECT_GE(result.contacted.size(), result.matched.size());
  EXPECT_TRUE(result.denied.empty());
}

TEST(LocatorServiceTest, AuthorizerGatesAccess) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();
  const auto result = service.search(
      "intruder", "alice",
      [](const std::string&, const std::string& provider) {
        return provider == "mercy";  // only mercy trusts this searcher
      });
  EXPECT_EQ(result.matched, (std::vector<std::string>{"mercy"}));
  EXPECT_FALSE(result.denied.empty());
}

TEST(LocatorServiceTest, UnknownOwnerQueryThrows) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();
  EXPECT_THROW(service.query_ppi("mallory"), eppi::ConfigError);
  EXPECT_THROW(service.search("s", "mallory"), eppi::ConfigError);
}

TEST(LocatorServiceTest, DelegationInvalidatesIndex) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();
  EXPECT_TRUE(service.constructed());
  service.delegate("erin", 0.5, "general");
  EXPECT_FALSE(service.constructed());
  service.construct_ppi();
  EXPECT_FALSE(service.query_ppi("erin").empty());
}

TEST(LocatorServiceTest, DistributedModeProducesReport) {
  LocatorService service{fast_options(/*distributed=*/true)};
  populate_hie(service);
  service.construct_ppi();
  ASSERT_TRUE(service.last_report().has_value());
  EXPECT_GT(service.last_report()->total_cost.messages, 0u);
  // Searches still find everything through the securely built index.
  const auto result = service.search("er-doc", "carol");
  EXPECT_EQ(result.matched.size(), 4u);
}

TEST(LocatorServiceTest, CentralizedModeHasNoReport) {
  LocatorService service{fast_options(/*distributed=*/false)};
  populate_hie(service);
  service.construct_ppi();
  EXPECT_FALSE(service.last_report().has_value());
}

TEST(LocatorServiceTest, DistributedNeedsEnoughProviders) {
  LocatorService service{fast_options(/*distributed=*/true)};
  service.delegate("alice", 0.5, "general");  // 1 provider < c = 3
  EXPECT_THROW(service.construct_ppi(), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::core
