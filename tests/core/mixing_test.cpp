#include "core/mixing.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace eppi::core {
namespace {

TEST(LambdaForTest, ZeroCommonsNeedNoMixing) {
  EXPECT_EQ(lambda_for(0.8, 0, 100), 0.0);
}

TEST(LambdaForTest, MatchesEquationSeven) {
  // λ = ξ/(1−ξ) · common/(n−common). ξ=0.5, 10 commons of 110 total:
  // λ = 1 * 10/100 = 0.1.
  EXPECT_NEAR(lambda_for(0.5, 10, 110), 0.1, 1e-12);
  // ξ=0.8 -> factor 4; 5 commons of 105: λ = 4 * 5/100 = 0.2.
  EXPECT_NEAR(lambda_for(0.8, 5, 105), 0.2, 1e-12);
}

TEST(LambdaForTest, ClampsToOne) {
  EXPECT_EQ(lambda_for(0.99, 50, 60), 1.0);
  EXPECT_EQ(lambda_for(1.0, 1, 100), 1.0);
  EXPECT_EQ(lambda_for(0.5, 100, 100), 1.0);
}

TEST(LambdaForTest, Validates) {
  EXPECT_THROW(lambda_for(-0.1, 1, 10), eppi::ConfigError);
  EXPECT_THROW(lambda_for(1.1, 1, 10), eppi::ConfigError);
  EXPECT_THROW(lambda_for(0.5, 11, 10), eppi::ConfigError);
}

TEST(LambdaForTest, MonotoneInXiAndCommons) {
  EXPECT_LT(lambda_for(0.3, 10, 1000), lambda_for(0.6, 10, 1000));
  EXPECT_LT(lambda_for(0.5, 5, 1000), lambda_for(0.5, 20, 1000));
}

TEST(XiForTest, MaxOverCommonsOnly) {
  const std::vector<bool> common{true, false, true, false};
  const std::vector<double> eps{0.3, 0.99, 0.7, 0.5};
  EXPECT_DOUBLE_EQ(xi_for(common, eps), 0.7);
}

TEST(XiForTest, NoCommonsGivesZero) {
  const std::vector<bool> common{false, false};
  const std::vector<double> eps{0.9, 0.8};
  EXPECT_EQ(xi_for(common, eps), 0.0);
}

TEST(XiForTest, SizeMismatchThrows) {
  const std::vector<bool> common{true};
  const std::vector<double> eps{0.9, 0.8};
  EXPECT_THROW(xi_for(common, eps), eppi::ConfigError);
}

TEST(DecoyFractionTest, CountsDecoysAmongApparent) {
  const std::vector<bool> common{true, false, false, true, false};
  const std::vector<bool> apparent{true, true, false, true, true};
  // Apparent set: {0,1,3,4}; decoys: {1,4} -> 0.5.
  EXPECT_DOUBLE_EQ(achieved_decoy_fraction(common, apparent), 0.5);
}

TEST(DecoyFractionTest, EmptyApparentSetIsZero) {
  const std::vector<bool> common{true};
  const std::vector<bool> apparent{false};
  EXPECT_EQ(achieved_decoy_fraction(common, apparent), 0.0);
}

TEST(DecoyFractionTest, AllDecoys) {
  const std::vector<bool> common{false, false};
  const std::vector<bool> apparent{true, true};
  EXPECT_DOUBLE_EQ(achieved_decoy_fraction(common, apparent), 1.0);
}

}  // namespace
}  // namespace eppi::core
