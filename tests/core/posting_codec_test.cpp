// Property/fuzz suite for the per-row posting codecs (core/posting_codec.h).
//
// The codecs are the trust boundary of the compressed index: a CRC-valid v3
// shard can still carry hostile bytes, so beyond round-trip correctness the
// decoders must reject every malformed payload with SerializeError — never
// crash, never emit out-of-range or unsorted ids, never over-allocate. The
// fuzz tests below drive both properties: exact round-trips across the
// structured edge cases (empty, full, single bit, the 63/64/65 word
// boundaries, runs, random densities), and decode-never-misbehaves across
// truncations and byte mutations of valid encodings.

#include "core/posting_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace eppi::core {
namespace {

std::vector<ProviderId> random_sorted(eppi::Rng& rng, std::size_t universe,
                                      double density) {
  std::vector<ProviderId> out;
  for (std::size_t p = 0; p < universe; ++p) {
    if (rng.bernoulli(density)) out.push_back(static_cast<ProviderId>(p));
  }
  return out;
}

// Encodes with `codec`, checks the size function told the truth, decodes,
// checks equality. Returns the encoded bytes for further abuse.
std::vector<std::uint8_t> round_trip(PostingCodec codec,
                                     const std::vector<ProviderId>& sorted,
                                     std::size_t universe) {
  std::vector<std::uint8_t> arena;
  const std::size_t appended =
      encode_postings(codec, sorted, universe, arena);
  EXPECT_EQ(appended, arena.size());
  if (codec == PostingCodec::kBitvector) {
    EXPECT_EQ(appended, bitvector_encoded_bytes(sorted.size(), universe));
  } else if (codec == PostingCodec::kEliasFano) {
    EXPECT_EQ(appended, elias_fano_encoded_bytes(sorted.size(), universe));
  } else {
    EXPECT_EQ(appended, 0u);
  }
  std::vector<ProviderId> decoded;
  decode_postings(codec, arena, universe, decoded);
  EXPECT_EQ(decoded, sorted);
  if (codec != PostingCodec::kEmpty) {
    EXPECT_EQ(decode_count(codec, arena), sorted.size());
  }
  return arena;
}

TEST(PostingCodecTest, EmptyRowEncodesToNothing) {
  EXPECT_EQ(choose_codec(0, 100), PostingCodec::kEmpty);
  round_trip(PostingCodec::kEmpty, {}, 100);
}

TEST(PostingCodecTest, FullRowRoundTripsUnderBothCodecs) {
  for (const std::size_t universe : {1u, 7u, 63u, 64u, 65u, 200u}) {
    std::vector<ProviderId> all(universe);
    for (std::size_t p = 0; p < universe; ++p) {
      all[p] = static_cast<ProviderId>(p);
    }
    round_trip(PostingCodec::kBitvector, all, universe);
    round_trip(PostingCodec::kEliasFano, all, universe);
    // A full row is as dense as it gets: the chooser must not pick EF.
    EXPECT_EQ(choose_codec(universe, universe), PostingCodec::kBitvector)
        << "universe=" << universe;
  }
}

TEST(PostingCodecTest, SingleBitAtEveryPosition) {
  for (const std::size_t universe : {1u, 63u, 64u, 65u, 130u}) {
    for (std::size_t p = 0; p < universe; ++p) {
      const std::vector<ProviderId> one{static_cast<ProviderId>(p)};
      round_trip(PostingCodec::kBitvector, one, universe);
      round_trip(PostingCodec::kEliasFano, one, universe);
    }
  }
}

// The 63/64/65 boundaries hit every off-by-one in word-packed bit walks:
// last bit of a word, first bit of the next, and a bit one past it.
TEST(PostingCodecTest, WordBoundaryUniverses) {
  for (const std::size_t universe : {63u, 64u, 65u}) {
    const std::vector<ProviderId> edges{
        0, static_cast<ProviderId>(universe - 1)};
    round_trip(PostingCodec::kBitvector, edges, universe);
    round_trip(PostingCodec::kEliasFano, edges, universe);
  }
  // Ids 63, 64, 65 inside a larger universe.
  const std::vector<ProviderId> straddle{63, 64, 65};
  round_trip(PostingCodec::kBitvector, straddle, 128);
  round_trip(PostingCodec::kEliasFano, straddle, 128);
}

TEST(PostingCodecTest, RunsRoundTrip) {
  // Dense runs are EF's worst case (unary high parts degenerate) and the
  // bitvector's best; both must still be exact.
  std::vector<ProviderId> runs;
  for (ProviderId p = 10; p < 40; ++p) runs.push_back(p);
  for (ProviderId p = 90; p < 100; ++p) runs.push_back(p);
  round_trip(PostingCodec::kBitvector, runs, 128);
  round_trip(PostingCodec::kEliasFano, runs, 128);
}

TEST(PostingCodecTest, ChooserPicksTheSmallerEncoding) {
  for (const std::size_t universe : {8u, 64u, 100u, 1000u}) {
    for (std::size_t count = 0; count <= universe; count += 1 + universe / 17) {
      const PostingCodec chosen = choose_codec(count, universe);
      if (count == 0) {
        EXPECT_EQ(chosen, PostingCodec::kEmpty);
        continue;
      }
      const std::size_t bv = bitvector_encoded_bytes(count, universe);
      const std::size_t ef = elias_fano_encoded_bytes(count, universe);
      if (chosen == PostingCodec::kBitvector) {
        EXPECT_LE(bv, ef) << count << "/" << universe;
      } else {
        ASSERT_EQ(chosen, PostingCodec::kEliasFano);
        EXPECT_LT(ef, bv) << count << "/" << universe;
      }
    }
  }
}

TEST(PostingCodecTest, RandomDensitiesRoundTripUnderBothCodecs) {
  eppi::Rng rng(20240817);
  for (const std::size_t universe : {1u, 2u, 63u, 64u, 65u, 100u, 500u}) {
    for (const double density : {0.01, 0.1, 0.5, 0.9, 1.0}) {
      for (int rep = 0; rep < 8; ++rep) {
        const auto sorted = random_sorted(rng, universe, density);
        if (sorted.empty()) continue;
        round_trip(PostingCodec::kBitvector, sorted, universe);
        round_trip(PostingCodec::kEliasFano, sorted, universe);
      }
    }
  }
}

TEST(PostingCodecTest, EncoderRejectsCallerBugs) {
  std::vector<std::uint8_t> arena;
  // Unsorted.
  EXPECT_THROW(encode_postings(PostingCodec::kEliasFano,
                               std::vector<ProviderId>{3, 2}, 10, arena),
               eppi::ConfigError);
  // Duplicate (not strictly increasing).
  EXPECT_THROW(encode_postings(PostingCodec::kBitvector,
                               std::vector<ProviderId>{2, 2}, 10, arena),
               eppi::ConfigError);
  // Out of range.
  EXPECT_THROW(encode_postings(PostingCodec::kEliasFano,
                               std::vector<ProviderId>{10}, 10, arena),
               eppi::ConfigError);
}

// Decoding any truncation of a valid encoding must throw SerializeError —
// at EVERY truncation point, not just the obvious ones.
TEST(PostingCodecTest, EveryTruncationPointThrows) {
  eppi::Rng rng(7);
  for (const PostingCodec codec :
       {PostingCodec::kBitvector, PostingCodec::kEliasFano}) {
    const auto sorted = random_sorted(rng, 200, 0.15);
    ASSERT_FALSE(sorted.empty());
    std::vector<std::uint8_t> arena;
    encode_postings(codec, sorted, 200, arena);
    std::vector<ProviderId> out;
    for (std::size_t cut = 0; cut < arena.size(); ++cut) {
      out.clear();
      EXPECT_THROW(
          decode_postings(codec,
                          std::span(arena.data(), cut), 200, out),
          eppi::SerializeError)
          << to_string(codec) << " cut=" << cut;
    }
  }
}

// Adversarial mutation fuzz: flip bytes of valid encodings. The decoder may
// accept a mutation only if the result is still canonical — and then the
// output must be strictly increasing and in range. It must never crash and
// never emit garbage.
TEST(PostingCodecTest, MutatedBytesEitherThrowOrDecodeCanonically) {
  eppi::Rng rng(99);
  for (const PostingCodec codec :
       {PostingCodec::kBitvector, PostingCodec::kEliasFano}) {
    const auto sorted = random_sorted(rng, 150, 0.2);
    ASSERT_FALSE(sorted.empty());
    std::vector<std::uint8_t> arena;
    encode_postings(codec, sorted, 150, arena);
    std::vector<ProviderId> out;
    for (std::size_t at = 0; at < arena.size(); ++at) {
      for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
        std::vector<std::uint8_t> mutated = arena;
        mutated[at] ^= flip;
        out.clear();
        try {
          decode_postings(codec, mutated, 150, out);
        } catch (const eppi::SerializeError&) {
          continue;  // rejection is the expected outcome
        }
        // Accepted: the decode must still be canonical.
        for (std::size_t k = 0; k < out.size(); ++k) {
          ASSERT_LT(out[k], 150u);
          if (k > 0) ASSERT_LT(out[k - 1], out[k]);
        }
      }
    }
  }
}

// Appending garbage after a valid encoding must not change the decode: the
// encodings are self-limiting (that is what lets rows tile an arena with no
// end offsets).
TEST(PostingCodecTest, DecodingIgnoresArenaSuffix) {
  eppi::Rng rng(5);
  const auto sorted = random_sorted(rng, 100, 0.3);
  for (const PostingCodec codec :
       {PostingCodec::kBitvector, PostingCodec::kEliasFano}) {
    std::vector<std::uint8_t> arena;
    encode_postings(codec, sorted, 100, arena);
    arena.insert(arena.end(), {0xde, 0xad, 0xbe, 0xef});
    std::vector<ProviderId> out;
    decode_postings(codec, arena, 100, out);
    EXPECT_EQ(out, sorted);
  }
}

}  // namespace
}  // namespace eppi::core
