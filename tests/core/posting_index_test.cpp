#include "core/posting_index.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

PpiIndex sample_index(std::size_t m, std::size_t n, std::uint64_t seed,
                      double density = 0.25) {
  eppi::Rng rng(seed);
  eppi::BitMatrix matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) matrix.set(i, j, true);
    }
  }
  return PpiIndex(std::move(matrix));
}

TEST(PostingIndexTest, AnswersMatchMatrixIndex) {
  const PpiIndex matrix_index = sample_index(40, 130, 1);  // 3 words/row
  const PostingIndex postings(matrix_index);
  EXPECT_EQ(postings.providers(), 40u);
  EXPECT_EQ(postings.identities(), 130u);
  for (IdentityId j = 0; j < 130; ++j) {
    EXPECT_EQ(postings.query(j), matrix_index.query(j)) << "identity " << j;
    EXPECT_EQ(postings.apparent_frequency(j),
              matrix_index.apparent_frequency(j));
  }
}

TEST(PostingIndexTest, PostingsAreSorted) {
  const PpiIndex matrix_index = sample_index(60, 20, 2);
  const PostingIndex postings(matrix_index);
  for (IdentityId j = 0; j < 20; ++j) {
    const auto& list = postings.query(j);
    for (std::size_t k = 1; k < list.size(); ++k) {
      EXPECT_LT(list[k - 1], list[k]);
    }
  }
}

TEST(PostingIndexTest, RoundTripsToMatrixForm) {
  const PpiIndex original = sample_index(25, 70, 3);
  const PostingIndex postings(original);
  const PpiIndex back = postings.to_matrix_index();
  EXPECT_EQ(back.matrix(), original.matrix());
}

TEST(PostingIndexTest, EmptyIndex) {
  const PpiIndex empty{eppi::BitMatrix(5, 4)};
  const PostingIndex postings(empty);
  for (IdentityId j = 0; j < 4; ++j) {
    EXPECT_TRUE(postings.query(j).empty());
  }
  EXPECT_EQ(postings.posting_bytes(), 0u);
}

TEST(PostingIndexTest, UnknownIdentityThrows) {
  const PostingIndex postings(sample_index(5, 4, 4));
  EXPECT_THROW(postings.query(4), eppi::ConfigError);
}

TEST(PostingIndexTest, PostingBytesReflectDensity) {
  const PostingIndex sparse(sample_index(100, 50, 5, 0.05));
  const PostingIndex dense(sample_index(100, 50, 5, 0.8));
  EXPECT_LT(sparse.posting_bytes(), dense.posting_bytes());
}

}  // namespace
}  // namespace eppi::core
