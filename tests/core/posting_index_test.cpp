#include "core/posting_index.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

PpiIndex sample_index(std::size_t m, std::size_t n, std::uint64_t seed,
                      double density = 0.25) {
  eppi::Rng rng(seed);
  eppi::BitMatrix matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) matrix.set(i, j, true);
    }
  }
  return PpiIndex(std::move(matrix));
}

TEST(PostingIndexTest, AnswersMatchMatrixIndex) {
  const PpiIndex matrix_index = sample_index(40, 130, 1);  // 3 words/row
  const PostingIndex postings(matrix_index);
  EXPECT_EQ(postings.providers(), 40u);
  EXPECT_EQ(postings.identities(), 130u);
  for (IdentityId j = 0; j < 130; ++j) {
    EXPECT_EQ(postings.query(j), matrix_index.query(j)) << "identity " << j;
    EXPECT_EQ(postings.apparent_frequency(j),
              matrix_index.apparent_frequency(j));
  }
}

TEST(PostingIndexTest, PostingsAreSorted) {
  const PpiIndex matrix_index = sample_index(60, 20, 2);
  const PostingIndex postings(matrix_index);
  for (IdentityId j = 0; j < 20; ++j) {
    const auto& list = postings.query(j);
    for (std::size_t k = 1; k < list.size(); ++k) {
      EXPECT_LT(list[k - 1], list[k]);
    }
  }
}

TEST(PostingIndexTest, RoundTripsToMatrixForm) {
  const PpiIndex original = sample_index(25, 70, 3);
  const PostingIndex postings(original);
  const PpiIndex back = postings.to_matrix_index();
  EXPECT_EQ(back.matrix(), original.matrix());
}

TEST(PostingIndexTest, EmptyIndex) {
  const PpiIndex empty{eppi::BitMatrix(5, 4)};
  const PostingIndex postings(empty);
  for (IdentityId j = 0; j < 4; ++j) {
    EXPECT_TRUE(postings.query(j).empty());
  }
  EXPECT_EQ(postings.posting_bytes(), 0u);
}

TEST(PostingIndexTest, UnknownIdentityThrows) {
  const PostingIndex postings(sample_index(5, 4, 4));
  EXPECT_THROW(postings.query(4), eppi::ConfigError);
}

TEST(PostingIndexTest, PostingBytesReflectDensity) {
  const PostingIndex sparse(sample_index(100, 50, 5, 0.05));
  const PostingIndex dense(sample_index(100, 50, 5, 0.8));
  EXPECT_LT(sparse.posting_bytes(), dense.posting_bytes());
}

// Identity ids straddling the packed 64-bit word boundary: the last id of
// the first word (63), the first id of the second word (64), and one past
// it (65) must all invert correctly — the bit-walk in the constructor does
// word * 64 + ctz arithmetic that is easy to get off by one.
TEST(PostingIndexTest, WordBoundaryIdentities) {
  for (const std::size_t n : {63u, 64u, 65u}) {
    eppi::BitMatrix matrix(7, n);
    // Claims only at the boundary columns and the very first one.
    for (std::size_t j : {std::size_t{0}, n - 1}) {
      for (std::size_t i = 0; i < 7; i += 2) matrix.set(i, j, true);
    }
    if (n > 64) matrix.set(3, 63, true);
    const PostingIndex postings{matrix};
    ASSERT_EQ(postings.identities(), n) << "n=" << n;
    EXPECT_EQ(postings.query(static_cast<IdentityId>(n - 1)),
              (std::vector<ProviderId>{0, 2, 4, 6}))
        << "n=" << n;
    if (n > 64) {
      EXPECT_EQ(postings.query(63), (std::vector<ProviderId>{3}));
      EXPECT_TRUE(postings.query(1).empty());
    }
    // Out-of-range rejection exactly at the boundary.
    EXPECT_THROW(postings.query(static_cast<IdentityId>(n)),
                 eppi::ConfigError)
        << "n=" << n;
    EXPECT_EQ(postings.to_matrix_index().matrix(), matrix) << "n=" << n;
  }
}

// Property: for random sparse-to-dense indexes, the posting form agrees
// with the matrix form on every answer and round-trips exactly.
TEST(PostingIndexTest, RoundTripPropertyOnRandomIndexes) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {3, 63}, {7, 64}, {9, 65}, {33, 130}};
  for (const double density : {0.0, 0.02, 0.5, 0.97}) {
    for (const auto& [m, n] : shapes) {
      const std::uint64_t seed =
          static_cast<std::uint64_t>(m * 1000 + n + density * 100);
      const PpiIndex original = sample_index(m, n, seed, density);
      const PostingIndex postings(original);
      for (IdentityId j = 0; j < n; ++j) {
        ASSERT_EQ(postings.query(j), original.query(j))
            << m << "x" << n << " d=" << density << " j=" << j;
        ASSERT_EQ(postings.apparent_frequency(j),
                  original.matrix().col_count(j));
      }
      EXPECT_EQ(postings.to_matrix_index().matrix(), original.matrix());
    }
  }
}

// Construction from a PpiIndex and from its raw matrix are the same index.
TEST(PostingIndexTest, MatrixConstructorMatchesPpiIndexConstructor) {
  const PpiIndex index = sample_index(20, 90, 11);
  const PostingIndex from_index(index);
  const PostingIndex from_matrix(index.matrix());
  ASSERT_EQ(from_index.identities(), from_matrix.identities());
  for (IdentityId j = 0; j < 90; ++j) {
    EXPECT_EQ(from_index.query(j), from_matrix.query(j));
  }
}

TEST(PostingIndexTest, MemoryFootprintSeparatesPayloadFromResident) {
  const PostingIndex postings(sample_index(100, 50, 5, 0.3));
  const auto fp = postings.memory_footprint();
  // The per-codec split must tile the totals exactly: every row is counted
  // under the codec its tagged offset names, and nothing else contributes
  // to the encoded payload.
  std::size_t rows = 0;
  std::size_t payload = 0;
  for (const auto& codec : fp.by_codec) {
    rows += codec.rows;
    payload += codec.payload_bytes;
  }
  EXPECT_EQ(rows, 50u);
  EXPECT_EQ(payload, fp.payload_bytes);
  EXPECT_EQ(postings.posting_bytes(), fp.payload_bytes);
  // The encoded payload beats raw u32 posting lists at this density, and
  // resident honestly counts the per-row tagged offsets on top of it.
  std::size_t raw_bytes = 0;
  for (IdentityId j = 0; j < 50; ++j) {
    raw_bytes += postings.query(j).size() * sizeof(ProviderId);
  }
  EXPECT_LT(fp.payload_bytes, raw_bytes);
  EXPECT_GE(fp.resident_bytes,
            fp.payload_bytes + 50 * sizeof(std::uint32_t));
  EXPECT_EQ(fp.shards, postings.shard_count());
}

TEST(PostingIndexTest, EmptyIndexStillHasResidentFootprint) {
  const PostingIndex postings(PpiIndex{eppi::BitMatrix(5, 64)});
  const auto fp = postings.memory_footprint();
  EXPECT_EQ(fp.payload_bytes, 0u);
  EXPECT_EQ(fp.by_codec[static_cast<std::size_t>(PostingCodec::kEmpty)].rows,
            64u);
  // No payload, but the tagged offsets are still resident.
  EXPECT_GE(fp.resident_bytes, 64 * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace eppi::core
