#include "core/ppi_index.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/auth_search.h"

namespace eppi::core {
namespace {

eppi::BitMatrix sample_matrix() {
  // 4 providers x 3 identities.
  eppi::BitMatrix m(4, 3);
  m.set(0, 0, true);
  m.set(2, 0, true);
  m.set(1, 1, true);
  return m;
}

TEST(PpiIndexTest, QueryReturnsClaimingProviders) {
  const PpiIndex index(sample_matrix());
  EXPECT_EQ(index.query(0), (std::vector<ProviderId>{0, 2}));
  EXPECT_EQ(index.query(1), (std::vector<ProviderId>{1}));
  EXPECT_TRUE(index.query(2).empty());
}

TEST(PpiIndexTest, ApparentFrequency) {
  const PpiIndex index(sample_matrix());
  EXPECT_EQ(index.apparent_frequency(0), 2u);
  EXPECT_EQ(index.apparent_frequency(2), 0u);
}

TEST(PpiIndexTest, UnknownIdentityThrows) {
  const PpiIndex index(sample_matrix());
  EXPECT_THROW(index.query(3), eppi::ConfigError);
  EXPECT_THROW(index.apparent_frequency(3), eppi::ConfigError);
}

TEST(PpiIndexTest, Dimensions) {
  const PpiIndex index(sample_matrix());
  EXPECT_EQ(index.providers(), 4u);
  EXPECT_EQ(index.identities(), 3u);
}

TEST(TwoPhaseSearchTest, FindsTrueProvidersThroughNoise) {
  // Truth: identity 0 at providers {0, 2}; published adds noise at 1, 3.
  const eppi::BitMatrix truth = sample_matrix();
  eppi::BitMatrix published = truth;
  published.set(1, 0, true);
  published.set(3, 0, true);
  const PpiIndex index(std::move(published));
  const SearchOutcome outcome = two_phase_search(index, truth, 0);
  EXPECT_EQ(outcome.contacted.size(), 4u);
  EXPECT_EQ(outcome.matched, (std::vector<ProviderId>{0, 2}));
  EXPECT_EQ(outcome.wasted_contacts(), 2u);
}

TEST(TwoPhaseSearchTest, AuthorizationGatesAccess) {
  const eppi::BitMatrix truth = sample_matrix();
  const PpiIndex index(sample_matrix());
  // Searcher 7 is only authorized at provider 2.
  const SearchOutcome outcome = two_phase_search(
      index, truth, 0, 7,
      [](std::uint32_t searcher, ProviderId p) {
        return searcher == 7 && p == 2;
      });
  EXPECT_EQ(outcome.contacted.size(), 2u);
  EXPECT_EQ(outcome.authorized, (std::vector<ProviderId>{2}));
  EXPECT_EQ(outcome.matched, (std::vector<ProviderId>{2}));
}

TEST(TwoPhaseSearchTest, ShapeMismatchThrows) {
  const PpiIndex index(sample_matrix());
  const eppi::BitMatrix wrong(2, 3);
  EXPECT_THROW(two_phase_search(index, wrong, 0), eppi::ConfigError);
}

TEST(TwoPhaseSearchTest, EmptyResultList) {
  const eppi::BitMatrix truth = sample_matrix();
  const PpiIndex index(sample_matrix());
  const SearchOutcome outcome = two_phase_search(index, truth, 2);
  EXPECT_TRUE(outcome.contacted.empty());
  EXPECT_TRUE(outcome.matched.empty());
  EXPECT_EQ(outcome.wasted_contacts(), 0u);
}

}  // namespace
}  // namespace eppi::core
