#include "core/publisher.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"
#include "core/beta_policy.h"

namespace eppi::core {
namespace {

eppi::BitMatrix random_truth(std::size_t m, std::size_t n, double density,
                             eppi::Rng& rng) {
  eppi::BitMatrix truth(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) truth.set(i, j, true);
    }
  }
  return truth;
}

TEST(PublishRowTest, TruthfulBitsAlwaysPublished) {
  eppi::Rng rng(1);
  const std::vector<std::uint8_t> local{1, 0, 1, 0};
  const std::vector<double> betas{0.0, 0.0, 1.0, 0.0};
  const auto row = publish_row(local, betas, rng);
  EXPECT_EQ(row[0], 1);  // 1 -> 1 even with β = 0
  EXPECT_EQ(row[1], 0);  // 0 with β = 0 stays 0
  EXPECT_EQ(row[2], 1);
  EXPECT_EQ(row[3], 0);
}

TEST(PublishRowTest, BetaOneFlipsAllNegatives) {
  eppi::Rng rng(2);
  const std::vector<std::uint8_t> local{0, 0, 0};
  const std::vector<double> betas{1.0, 1.0, 1.0};
  const auto row = publish_row(local, betas, rng);
  for (const auto bit : row) EXPECT_EQ(bit, 1);
}

TEST(PublishRowTest, ValidatesInput) {
  eppi::Rng rng(3);
  const std::vector<std::uint8_t> local{2};
  const std::vector<double> betas{0.5};
  EXPECT_THROW(publish_row(local, betas, rng), eppi::ConfigError);
  const std::vector<std::uint8_t> ok{1};
  const std::vector<double> wrong_size{0.5, 0.5};
  EXPECT_THROW(publish_row(ok, wrong_size, rng), eppi::ConfigError);
}

TEST(PublishMatrixTest, FullRecallAlwaysHolds) {
  eppi::Rng rng(4);
  const auto truth = random_truth(50, 30, 0.2, rng);
  for (const double beta : {0.0, 0.3, 0.9}) {
    const std::vector<double> betas(30, beta);
    const auto published = publish_matrix(truth, betas, rng);
    EXPECT_TRUE(full_recall(truth, published)) << "beta=" << beta;
  }
}

TEST(PublishMatrixTest, BetaZeroPublishesTruthExactly) {
  eppi::Rng rng(5);
  const auto truth = random_truth(20, 10, 0.3, rng);
  const std::vector<double> betas(10, 0.0);
  const auto published = publish_matrix(truth, betas, rng);
  EXPECT_EQ(published, truth);
}

TEST(PublishMatrixTest, FalsePositiveCountMatchesBeta) {
  eppi::Rng rng(6);
  constexpr std::size_t kM = 4000;
  eppi::BitMatrix truth(kM, 1);  // identity held by nobody
  const std::vector<double> betas{0.25};
  const auto published = publish_matrix(truth, betas, rng);
  const double rate =
      static_cast<double>(published.col_count(0)) / static_cast<double>(kM);
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FalsePositiveRatesTest, ComputesPerIdentityRates) {
  eppi::BitMatrix truth(4, 2);
  truth.set(0, 0, true);
  eppi::BitMatrix published(4, 2);
  published.set(0, 0, true);
  published.set(1, 0, true);  // false positive
  published.set(2, 0, true);  // false positive
  // Identity 0: 2 fp of 3 claims -> 2/3. Identity 1: nothing published -> 0.
  const auto rates = false_positive_rates(truth, published);
  EXPECT_NEAR(rates[0], 2.0 / 3.0, 1e-12);
  EXPECT_EQ(rates[1], 0.0);
}

TEST(FalsePositiveRatesTest, PerfectIndexHasZeroRates) {
  eppi::Rng rng(7);
  const auto truth = random_truth(10, 5, 0.4, rng);
  const auto rates = false_positive_rates(truth, truth);
  for (const double r : rates) EXPECT_EQ(r, 0.0);
}

TEST(FullRecallTest, DetectsDroppedPositive) {
  eppi::BitMatrix truth(2, 2);
  truth.set(0, 0, true);
  eppi::BitMatrix published(2, 2);  // missing the positive
  EXPECT_FALSE(full_recall(truth, published));
}

TEST(PublishMatrixTest, AchievedRateTracksEqThreeTarget) {
  // End-to-end check of Eq. 3: with β = β_b the expected false-positive
  // rate equals ε.
  eppi::Rng rng(8);
  constexpr std::size_t kM = 5000;
  constexpr double kSigma = 0.1;
  constexpr double kEps = 0.5;
  eppi::BitMatrix truth(kM, 1);
  for (std::size_t i = 0; i < kM * kSigma; ++i) truth.set(i, 0, true);
  const std::vector<double> betas{beta_basic(kSigma, kEps)};
  eppi::RunningStat achieved;
  for (int run = 0; run < 20; ++run) {
    const auto published = publish_matrix(truth, betas, rng);
    achieved.add(false_positive_rates(truth, published)[0]);
  }
  EXPECT_NEAR(achieved.mean(), kEps, 0.03);
}

}  // namespace
}  // namespace eppi::core
