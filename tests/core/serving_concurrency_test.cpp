// Concurrency harness for the epoch-snapshot serving tier (label
// `concurrency`; run under the TSan preset by scripts/check.sh and CI).
//
// The contract under test (core/epoch_snapshot.h): any number of reader
// threads run QueryPPI wait-free while ONE writer thread rebuilds epochs and
// recovers from a durable store, committing each epoch with a single atomic
// snapshot swap. Readers must never observe a torn epoch: every answer
// equals the answer of SOME published epoch in its entirety — and because
// sticky publication makes each epoch a pure function of (membership, ε,
// master key), the writer's ε-toggle produces exactly TWO possible answer
// maps, so the metamorphic check is set membership, not a tautology.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/epoch_store.h"
#include "core/locator_service.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

constexpr double kLowEps = 0.05;
constexpr double kHighEps = 0.95;
constexpr std::size_t kProviders = 12;
constexpr std::size_t kOwners = 30;

std::string owner_name(std::size_t j) { return "o" + std::to_string(j); }
std::string provider_name(std::size_t i) { return "p" + std::to_string(i); }

LocatorService::Options serve_options() {
  LocatorService::Options options;
  options.distributed = false;  // rebuild cost stays in the writer loop
  options.policy = BetaPolicy::chernoff(0.9);
  options.seed = 42;
  return options;
}

// Every owner delegates to two fixed providers; owner 0's ε is the toggle.
void populate(LocatorService& service, double toggle_eps) {
  for (std::size_t j = 0; j < kOwners; ++j) {
    const double eps = j == 0 ? toggle_eps : 0.4;
    service.delegate(owner_name(j), eps, provider_name(j % kProviders));
    service.delegate(owner_name(j), eps,
                     provider_name((3 * j + 5) % kProviders));
  }
}

// The two possible epoch contents, precomputed single-threaded on a twin
// service (same seed ⇒ same sticky randomness ⇒ identical epochs).
struct TwoStates {
  std::vector<std::vector<std::string>> low;   // answers, indexed by owner
  std::vector<std::vector<std::string>> high;
};

std::vector<std::string> all_owner_names() {
  std::vector<std::string> names;
  for (std::size_t j = 0; j < kOwners; ++j) names.push_back(owner_name(j));
  return names;
}

TwoStates expected_states() {
  LocatorService twin{serve_options()};
  populate(twin, kLowEps);
  twin.construct_ppi();
  TwoStates s;
  const auto owners = all_owner_names();
  s.low = twin.query_ppi_many(owners).providers;
  twin.delegate(owner_name(0), kHighEps, provider_name(0));
  twin.construct_ppi();
  s.high = twin.query_ppi_many(owners).providers;
  return s;
}

// Reader-thread bodies propagate failures via exception_ptr — EXPECT_* from
// a non-main thread would race on gtest internals.
void run_threads(const std::vector<std::function<void()>>& bodies) {
  std::vector<std::exception_ptr> errors(bodies.size());
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t k = 0; k < bodies.size(); ++k) {
    threads.emplace_back([&, k] {
      try {
        bodies[k]();
      } catch (...) {
        errors[k] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

// N readers hammer single queries while the writer swaps >= 100 epochs;
// every answer must match one of the two reachable epochs, epochs may never
// run backwards for any single reader, and no reader may ever be
// interrupted (throw) by a swap.
TEST(ServingConcurrencyTest, ReadersUninterruptedAcrossEpochSwaps) {
  const TwoStates expect = expected_states();
  ASSERT_NE(expect.low[0], expect.high[0]) << "toggle must change epoch 0";

  LocatorService service{serve_options()};
  populate(service, kLowEps);
  service.construct_ppi();

  constexpr std::size_t kSwaps = 120;
  constexpr std::size_t kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {  // writer
    for (std::size_t k = 0; k < kSwaps; ++k) {
      const double eps = (k % 2 == 0) ? kHighEps : kLowEps;
      service.delegate(owner_name(0), eps, provider_name(0));
      service.construct_ppi();
    }
    done.store(true, std::memory_order_release);
  });
  for (std::size_t r = 0; r < kReaders; ++r) {
    bodies.push_back([&, r] {
      std::uint64_t last_epoch = 0;
      std::size_t j = r;
      while (!done.load(std::memory_order_acquire)) {
        j = (j + 1) % kOwners;
        const auto result = service.query_ppi_with_status(owner_name(j));
        require(result.providers == expect.low[j] ||
                    result.providers == expect.high[j],
                "answer matches neither reachable epoch");
        require(result.epoch >= last_epoch, "epoch ran backwards");
        require(!result.degraded, "centralized rebuilds never degrade");
        last_epoch = result.epoch;
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  run_threads(bodies);

  EXPECT_GE(service.metrics().epoch_swaps, kSwaps + 1);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(service.metrics().unknown_owners, 0u);
  // The final epoch is deterministic: initial build + kSwaps rebuilds.
  EXPECT_EQ(service.query_ppi_with_status(owner_name(0)).epoch, kSwaps + 1);
}

// Same reader contract, but with the incremental path PINNED on: every swap
// after the first must be a delta splice (the writer checks last_rebuild()
// each round), so readers are provably uninterrupted across 100+ spliced
// snapshot publishes — the splice constructor shares no memory with the
// snapshot it copies from, and TSan watches that claim here.
TEST(ServingConcurrencyTest, ReadersUninterruptedAcrossDeltaSplices) {
  const TwoStates expect = expected_states();
  LocatorService service{serve_options()};
  populate(service, kLowEps);
  service.construct_ppi();

  constexpr std::size_t kSplices = 100;
  constexpr std::size_t kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {  // writer
    for (std::size_t k = 0; k < kSplices; ++k) {
      const double eps = (k % 2 == 0) ? kHighEps : kLowEps;
      service.delegate(owner_name(0), eps, provider_name(0));
      service.construct_ppi();
      require(service.last_rebuild().delta,
              "delta path must engage for a one-owner touch");
    }
    done.store(true, std::memory_order_release);
  });
  for (std::size_t r = 0; r < kReaders; ++r) {
    bodies.push_back([&, r] {
      std::size_t j = r;
      while (!done.load(std::memory_order_acquire)) {
        j = (j + 1) % kOwners;
        const auto result = service.query_ppi_with_status(owner_name(j));
        require(result.providers == expect.low[j] ||
                    result.providers == expect.high[j],
                "answer matches neither reachable epoch");
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  run_threads(bodies);
  EXPECT_GE(service.metrics().epoch_swaps, kSplices + 1);
  EXPECT_GT(answered.load(), 0u);
}

// Metamorphic snapshot consistency for the batched path: a batch resolved
// mid-swap must be answered entirely from one epoch — its answers equal one
// state's answer map as a whole, never a mix of both.
TEST(ServingConcurrencyTest, BatchNeverMixesEpochs) {
  const TwoStates expect = expected_states();
  LocatorService service{serve_options()};
  populate(service, kLowEps);
  service.construct_ppi();

  const auto owners = all_owner_names();
  constexpr std::size_t kSwaps = 100;
  std::atomic<bool> done{false};

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {  // writer
    for (std::size_t k = 0; k < kSwaps; ++k) {
      const double eps = (k % 2 == 0) ? kHighEps : kLowEps;
      service.delegate(owner_name(0), eps, provider_name(0));
      service.construct_ppi();
    }
    done.store(true, std::memory_order_release);
  });
  for (std::size_t r = 0; r < 2; ++r) {
    bodies.push_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto batch = service.query_ppi_many(owners);
        const bool is_low = batch.providers == expect.low;
        const bool is_high = batch.providers == expect.high;
        require(is_low || is_high, "batch mixed answers from two epochs");
        // The writer alternates high/low starting at epoch 2, so the
        // batch's own epoch label pins WHICH state it must equal.
        const bool epoch_says_low = batch.epoch % 2 == 1;
        require(is_low == epoch_says_low,
                "batch label and content disagree");
        // Batched and single answers from one snapshot acquisition agree.
        require(batch.providers.size() == owners.size(),
                "batch answer count mismatch");
      }
    });
  }
  run_threads(bodies);
  EXPECT_GE(service.metrics().batches, 1u);
}

// The writer interleaves rebuilds with attach_store recoveries (re-opening
// the durable store and republishing its newest committed epoch) while
// readers keep querying: recovery must look like any other swap.
TEST(ServingConcurrencyTest, AttachStoreRecoveryUnderReaders) {
  const TwoStates expect = expected_states();
  eppi::storage::MemVfs vfs;
  LocatorService service{serve_options()};
  populate(service, kLowEps);
  std::vector<std::unique_ptr<EpochStore>> stores;
  stores.push_back(std::make_unique<EpochStore>(vfs, "store"));
  service.attach_store(*stores.back());
  service.construct_ppi();

  constexpr std::size_t kRounds = 60;
  std::atomic<bool> done{false};

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {  // writer: rebuild, rebuild, recover, repeat
    for (std::size_t k = 0; k < kRounds; ++k) {
      if (k % 3 == 2) {
        stores.push_back(std::make_unique<EpochStore>(vfs, "store"));
        service.attach_store(*stores.back());
      } else {
        const double eps = (k % 2 == 0) ? kHighEps : kLowEps;
        service.delegate(owner_name(0), eps, provider_name(0));
        service.construct_ppi();
      }
    }
    done.store(true, std::memory_order_release);
  });
  for (std::size_t r = 0; r < 2; ++r) {
    bodies.push_back([&, r] {
      std::uint64_t last_epoch = 0;
      std::size_t j = r;
      while (!done.load(std::memory_order_acquire)) {
        j = (j + 1) % kOwners;
        const auto result = service.query_ppi_with_status(owner_name(j));
        require(result.providers == expect.low[j] ||
                    result.providers == expect.high[j],
                "answer matches neither reachable epoch");
        require(result.epoch >= last_epoch, "epoch ran backwards");
        last_epoch = result.epoch;
        require(service.serving_status().serving,
                "service went dark during recovery");
      }
    });
  }
  run_threads(bodies);
  EXPECT_TRUE(service.serving_status().serving);
}

// The lock-free metrics must not lose counts under contention: with a fixed
// per-thread workload the totals are exact, not approximate.
TEST(ServingConcurrencyTest, MetricsAreExactAcrossThreads) {
  LocatorService service{serve_options()};
  populate(service, kLowEps);
  service.construct_ppi();

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSingles = 400;
  constexpr std::size_t kBatches = 150;
  const std::vector<std::string> batch{owner_name(1), owner_name(2),
                                       owner_name(3)};

  std::vector<std::function<void()>> bodies;
  for (std::size_t r = 0; r < kThreads; ++r) {
    bodies.push_back([&, r] {
      for (std::size_t q = 0; q < kSingles; ++q) {
        (void)service.query_ppi(owner_name((r + q) % kOwners));
      }
      for (std::size_t b = 0; b < kBatches; ++b) {
        (void)service.query_ppi_many(batch);
      }
    });
  }
  run_threads(bodies);

  const auto snap = service.metrics();
  EXPECT_EQ(snap.queries, kThreads * kSingles);
  EXPECT_EQ(snap.batches, kThreads * kBatches);
  EXPECT_EQ(snap.owners_resolved,
            kThreads * (kSingles + kBatches * batch.size()));
  EXPECT_EQ(snap.latency.total, kThreads * (kSingles + kBatches));
  EXPECT_EQ(snap.unknown_owners, 0u);
}

}  // namespace
}  // namespace eppi::core
