// Deterministic (single-threaded) semantics of the epoch-snapshot serving
// tier: what readers are answered from across delegations, rebuilds,
// degraded rebuilds and store recovery — plus the batched QueryPPI contract
// and the serving metrics. The multi-threaded counterpart lives in
// serving_concurrency_test.cpp (label `concurrency`, run under TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/epoch_store.h"
#include "core/locator_service.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

using namespace std::chrono_literals;

LocatorService::Options fast_options(bool distributed = false) {
  LocatorService::Options options;
  options.distributed = distributed;
  options.policy = BetaPolicy::chernoff(0.9);
  options.seed = 7;
  return options;
}

void populate_hie(LocatorService& service) {
  service.delegate("alice", 0.4, "general");
  service.delegate("alice", 0.4, "mercy");
  service.delegate("bob", 0.3, "general");
  service.delegate("carol", 0.9, "general");
  service.delegate("carol", 0.9, "mercy");
  service.delegate("carol", 0.9, "lakeside");
  service.delegate("carol", 0.9, "county");
  service.delegate("dave", 0.5, "county");
}

TEST(ServingSnapshotTest, StaleSnapshotServesAcrossDelegation) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();
  const auto answer = service.query_ppi("alice");

  // A new delegation invalidates the *builder's* index but must not yank
  // the published epoch out from under readers.
  service.delegate("erin", 0.5, "general");
  EXPECT_FALSE(service.constructed());
  EXPECT_EQ(service.query_ppi("alice"), answer);
  const auto status = service.query_ppi_with_status("alice");
  EXPECT_EQ(status.epoch, 1u);
  EXPECT_FALSE(status.degraded);

  // The new owner is unknown to the served epoch until the next swap.
  EXPECT_THROW(service.query_ppi("erin"), eppi::ConfigError);
  service.construct_ppi();
  EXPECT_FALSE(service.query_ppi("erin").empty());
  EXPECT_EQ(service.query_ppi_with_status("alice").epoch, 2u);
}

TEST(ServingSnapshotTest, BatchMatchesPerOwnerQueries) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();

  const std::vector<std::string> owners{"alice", "bob", "carol", "dave"};
  const auto batch = service.query_ppi_many(owners);
  ASSERT_EQ(batch.providers.size(), owners.size());
  for (std::size_t k = 0; k < owners.size(); ++k) {
    EXPECT_EQ(batch.providers[k], service.query_ppi(owners[k]))
        << "owner " << owners[k];
  }
  EXPECT_EQ(batch.epoch, 1u);
  EXPECT_FALSE(batch.degraded);
  EXPECT_GE(batch.age_seconds, 0.0);

  const auto empty = service.query_ppi_many({});
  EXPECT_TRUE(empty.providers.empty());
  EXPECT_EQ(empty.epoch, 1u);
}

TEST(ServingSnapshotTest, BatchRejectsUnknownOwner) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();
  const std::vector<std::string> owners{"alice", "mallory"};
  EXPECT_THROW(service.query_ppi_many(owners), eppi::ConfigError);
  EXPECT_THROW(service.query_ppi_many(std::vector<std::string>{"mallory"}),
               eppi::ConfigError);
  // Before any publication the batch throws like the single-query path.
  LocatorService fresh{fast_options()};
  fresh.delegate("alice", 0.5, "general");
  EXPECT_THROW(fresh.query_ppi_many(owners), eppi::ConfigError);
}

// Foundation of the concurrent metamorphic test: with sticky publication
// noise and a fixed master key, the published epoch is a pure function of
// (membership, epsilons) — toggling one owner's ε back and forth alternates
// between exactly two answer maps.
TEST(ServingSnapshotTest, EpsilonToggleAlternatesDeterministically) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.delegate("alice", 0.05, "general");
  service.construct_ppi();
  const auto low = service.query_ppi_many(
      std::vector<std::string>{"alice", "bob", "carol"});

  service.delegate("alice", 0.95, "general");
  service.construct_ppi();
  const auto high = service.query_ppi_many(
      std::vector<std::string>{"alice", "bob", "carol"});

  service.delegate("alice", 0.05, "general");
  service.construct_ppi();
  const auto low_again = service.query_ppi_many(
      std::vector<std::string>{"alice", "bob", "carol"});

  EXPECT_EQ(low.providers, low_again.providers);
  EXPECT_EQ(low_again.epoch, 3u);
  // Monotone sticky noise: raising ε only adds claims for that owner.
  for (const auto& p : low.providers[0]) {
    EXPECT_NE(std::find(high.providers[0].begin(), high.providers[0].end(),
                        p),
              high.providers[0].end());
  }
}

TEST(ServingSnapshotTest, ServingStatusComesFromSnapshot) {
  LocatorService service{fast_options()};
  populate_hie(service);
  const auto before = service.serving_status();
  EXPECT_FALSE(before.serving);
  EXPECT_EQ(before.epoch, 0u);

  service.construct_ppi();
  const auto after = service.serving_status();
  EXPECT_TRUE(after.serving);
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_FALSE(after.degraded);
  EXPECT_GE(after.age_seconds, 0.0);

  // Delegation leaves the snapshot (and its status) serving.
  service.delegate("erin", 0.5, "general");
  EXPECT_TRUE(service.serving_status().serving);
}

TEST(ServingSnapshotTest, DegradedRebuildRepublishesStalenessAndMetrics) {
  LocatorService service{fast_options(/*distributed=*/true)};
  populate_hie(service);
  FaultToleranceOptions ft;
  ft.enabled = true;
  ft.stage_timeout = 150ms;
  ft.mpc_timeout = 3000ms;
  service.set_fault_tolerance(ft);
  service.construct_ppi();
  const auto healthy = service.query_ppi("alice");
  EXPECT_EQ(service.metrics().epoch_swaps, 1u);

  ft.fault_scenario = "crash 1 after 0 sends";
  service.set_fault_tolerance(ft);
  service.construct_ppi();  // degrades instead of throwing

  // The staleness republish is a swap too — readers must see the updated
  // labels — but it shares the served epoch's postings.
  EXPECT_EQ(service.metrics().epoch_swaps, 2u);
  const auto batch =
      service.query_ppi_many(std::vector<std::string>{"alice"});
  EXPECT_EQ(batch.providers[0], healthy);
  EXPECT_TRUE(batch.degraded);
  EXPECT_EQ(batch.epoch, 1u);
  EXPECT_EQ(batch.rebuilds_behind, 1u);
  EXPECT_GE(service.metrics().degraded_serves, 1u);
}

TEST(ServingSnapshotTest, AttachStoreResumePublishesSnapshot) {
  eppi::storage::MemVfs vfs;
  std::vector<std::string> answer;
  {
    LocatorService service{fast_options()};
    populate_hie(service);
    EpochStore store(vfs, "store");
    service.attach_store(store);
    service.construct_ppi();
    answer = service.query_ppi("alice");
  }
  vfs.crash();

  LocatorService restarted{fast_options()};
  populate_hie(restarted);
  EXPECT_FALSE(restarted.serving_status().serving);
  EpochStore store(vfs, "store");
  restarted.attach_store(store);
  // The recovered epoch is published to readers without any rebuild.
  EXPECT_TRUE(restarted.serving_status().serving);
  EXPECT_EQ(restarted.serving_status().epoch, 1u);
  EXPECT_EQ(restarted.query_ppi("alice"), answer);
  const auto batch =
      restarted.query_ppi_many(std::vector<std::string>{"alice"});
  EXPECT_EQ(batch.providers[0], answer);
  EXPECT_EQ(batch.epoch, 1u);
}

TEST(ServingSnapshotTest, MetricsCountServingTraffic) {
  LocatorService service{fast_options()};
  populate_hie(service);
  service.construct_ppi();

  (void)service.query_ppi("alice");
  (void)service.query_ppi("bob");
  (void)service.query_ppi_with_status("carol");
  (void)service.query_ppi_many(std::vector<std::string>{"alice", "dave"});
  EXPECT_THROW(service.query_ppi("mallory"), eppi::ConfigError);

  const auto snap = service.metrics();
  EXPECT_EQ(snap.queries, 3u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.owners_resolved, 5u);
  EXPECT_EQ(snap.unknown_owners, 1u);
  EXPECT_EQ(snap.epoch_swaps, 1u);
  EXPECT_EQ(snap.degraded_serves, 0u);
  EXPECT_EQ(snap.latency.total, 4u);
  EXPECT_LE(snap.latency.quantile_us(0.5), snap.latency.quantile_us(0.99));
  EXPECT_GT(snap.latency.quantile_us(0.99), 0.0);
}

}  // namespace
}  // namespace eppi::core
