#include "core/sticky_publisher.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

TEST(StickyPublisherTest, DeterministicAcrossCalls) {
  const StickyPublisher publisher(42);
  const std::vector<std::uint8_t> local{0, 1, 0, 0, 1};
  const std::vector<double> betas{0.3, 0.3, 0.7, 0.0, 1.0};
  const auto a = publisher.publish_row(local, betas);
  const auto b = publisher.publish_row(local, betas);
  EXPECT_EQ(a, b);
}

TEST(StickyPublisherTest, DifferentKeysDecorrelate) {
  constexpr std::size_t kN = 4096;
  const std::vector<std::uint8_t> local(kN, 0);
  const std::vector<double> betas(kN, 0.5);
  const auto a = StickyPublisher(1).publish_row(local, betas);
  const auto b = StickyPublisher(2).publish_row(local, betas);
  std::size_t same = 0;
  for (std::size_t j = 0; j < kN; ++j) same += a[j] == b[j] ? 1 : 0;
  // Independent coins agree ~half the time.
  EXPECT_NEAR(static_cast<double>(same) / kN, 0.5, 0.05);
}

TEST(StickyPublisherTest, TruthfulBitsAlwaysPublished) {
  const StickyPublisher publisher(7);
  const std::vector<std::uint8_t> local{1, 1, 1};
  const std::vector<double> betas{0.0, 0.0, 0.0};
  const auto row = publisher.publish_row(local, betas);
  for (const auto bit : row) EXPECT_EQ(bit, 1);
}

TEST(StickyPublisherTest, MonotoneInBeta) {
  // Raising beta can only add noise, never remove it — the property that
  // makes successive reconstructions intersection-safe.
  const StickyPublisher publisher(99);
  constexpr std::size_t kN = 2048;
  const std::vector<std::uint8_t> local(kN, 0);
  std::vector<std::uint8_t> previous(kN, 0);
  for (const double beta : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    const std::vector<double> betas(kN, beta);
    const auto row = publisher.publish_row(local, betas);
    for (std::size_t j = 0; j < kN; ++j) {
      EXPECT_GE(row[j], previous[j]) << "beta=" << beta << " j=" << j;
    }
    previous = row;
  }
}

TEST(StickyPublisherTest, MarginalRateMatchesBeta) {
  // Across identities, the noise bits are Bernoulli(beta).
  constexpr std::size_t kN = 20000;
  const StickyPublisher publisher(123);
  for (const double beta : {0.2, 0.5, 0.8}) {
    std::size_t ones = 0;
    for (std::size_t j = 0; j < kN; ++j) {
      ones += publisher.noise_bit(j, beta) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(ones) / kN, beta, 0.02) << beta;
  }
}

TEST(StickyPublisherTest, BetaEdgeCases) {
  const StickyPublisher publisher(5);
  EXPECT_FALSE(publisher.noise_bit(0, 0.0));
  EXPECT_TRUE(publisher.noise_bit(0, 1.0));
  EXPECT_FALSE(publisher.noise_bit(0, -1.0));
  EXPECT_TRUE(publisher.noise_bit(0, 2.0));
}

TEST(StickyPublisherTest, ValidatesInput) {
  const StickyPublisher publisher(5);
  const std::vector<std::uint8_t> bad{2};
  const std::vector<double> betas{0.5};
  EXPECT_THROW(publisher.publish_row(bad, betas), eppi::ConfigError);
  const std::vector<std::uint8_t> ok{1};
  const std::vector<double> wrong{0.5, 0.5};
  EXPECT_THROW(publisher.publish_row(ok, wrong), eppi::ConfigError);
}

TEST(StickyPublishMatrixTest, ReconstructionOfUnchangedDataIsIdentical) {
  eppi::Rng rng(8);
  const auto net = eppi::dataset::make_network_with_frequencies(
      30, std::vector<std::uint64_t>{5, 10, 2}, rng);
  const std::vector<double> betas{0.4, 0.2, 0.7};
  std::vector<std::uint64_t> keys(30);
  for (auto& k : keys) k = rng.next();
  const auto first = sticky_publish_matrix(net.membership, betas, keys);
  const auto second = sticky_publish_matrix(net.membership, betas, keys);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(full_recall(net.membership, first));
}

TEST(StickyPublishMatrixTest, IntersectionAcrossEpochsRevealsNothingNew) {
  // With fresh randomness, intersecting two snapshots halves the noise;
  // with sticky noise the intersection *is* the snapshot.
  eppi::Rng rng(9);
  constexpr std::size_t kM = 500;
  eppi::BitMatrix truth(kM, 1);
  truth.set(0, 0, true);
  const std::vector<double> betas{0.5};
  std::vector<std::uint64_t> keys(kM);
  for (auto& k : keys) k = rng.next();

  const auto epoch1 = sticky_publish_matrix(truth, betas, keys);
  const auto epoch2 = sticky_publish_matrix(truth, betas, keys);
  std::size_t sticky_intersection = 0;
  for (std::size_t i = 0; i < kM; ++i) {
    if (epoch1.get(i, 0) && epoch2.get(i, 0)) ++sticky_intersection;
  }
  EXPECT_EQ(sticky_intersection, epoch1.col_count(0));

  const auto fresh1 = publish_matrix(truth, betas, rng);
  const auto fresh2 = publish_matrix(truth, betas, rng);
  std::size_t fresh_intersection = 0;
  for (std::size_t i = 0; i < kM; ++i) {
    if (fresh1.get(i, 0) && fresh2.get(i, 0)) ++fresh_intersection;
  }
  // Fresh noise decays under intersection (0.25 vs 0.5 expected rate) —
  // the attack sticky publication prevents.
  EXPECT_LT(fresh_intersection, sticky_intersection);
}

TEST(StickyPublishMatrixTest, ValidatesShapes) {
  eppi::BitMatrix truth(3, 2);
  const std::vector<double> betas{0.5};  // wrong length
  const std::vector<std::uint64_t> keys{1, 2, 3};
  EXPECT_THROW(sticky_publish_matrix(truth, betas, keys), eppi::ConfigError);
  const std::vector<double> ok_betas{0.5, 0.5};
  const std::vector<std::uint64_t> bad_keys{1};
  EXPECT_THROW(sticky_publish_matrix(truth, ok_betas, bad_keys),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::core
