#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "dataset/collection_table.h"
#include "dataset/synthetic.h"

namespace eppi::dataset {
namespace {

TEST(SyntheticTest, ExactFrequenciesAreHonored) {
  eppi::Rng rng(1);
  const std::vector<std::uint64_t> freqs{0, 1, 5, 10};
  const auto net = make_network_with_frequencies(10, freqs, rng);
  EXPECT_EQ(net.providers(), 10u);
  EXPECT_EQ(net.identities(), 4u);
  EXPECT_EQ(net.frequencies(), freqs);
}

TEST(SyntheticTest, FrequencyAboveProvidersRejected) {
  eppi::Rng rng(2);
  const std::vector<std::uint64_t> freqs{11};
  EXPECT_THROW(make_network_with_frequencies(10, freqs, rng),
               eppi::ConfigError);
}

TEST(SyntheticTest, HoldersAreDistinctProviders) {
  eppi::Rng rng(3);
  const std::vector<std::uint64_t> freqs{7};
  const auto net = make_network_with_frequencies(7, freqs, rng);
  EXPECT_EQ(net.membership.col_count(0), 7u);  // all distinct
}

TEST(SyntheticTest, ZipfNetworkHasDecreasingFrequencies) {
  eppi::Rng rng(4);
  SyntheticConfig config;
  config.providers = 100;
  config.identities = 50;
  config.zipf_exponent = 1.0;
  config.max_fraction = 0.8;
  const auto net = make_zipf_network(config, rng);
  const auto freqs = net.frequencies();
  EXPECT_EQ(freqs[0], 80u);
  for (std::size_t j = 1; j < freqs.size(); ++j) {
    EXPECT_LE(freqs[j], freqs[j - 1]);
    EXPECT_GE(freqs[j], 1u);
  }
}

TEST(SyntheticTest, RandomEpsilonsInRange) {
  eppi::Rng rng(5);
  const auto eps = random_epsilons(1000, rng, 0.2, 0.8);
  for (const double e : eps) {
    EXPECT_GE(e, 0.2);
    EXPECT_LE(e, 0.8);
  }
  EXPECT_THROW(random_epsilons(10, rng, 0.5, 0.2), eppi::ConfigError);
}

TEST(CollectionTableTest, RoundTripThroughCsv) {
  eppi::Rng rng(6);
  const auto net = make_network_with_frequencies(
      5, std::vector<std::uint64_t>{2, 3, 0}, rng);
  std::stringstream ss;
  save_collection_table(ss, net);
  const auto table = load_collection_table(ss);
  // Identity 2 has no memberships, so it does not round-trip; the loaded
  // matrix must contain exactly the saved facts.
  EXPECT_EQ(table.network.membership.popcount(), net.membership.popcount());
}

TEST(CollectionTableTest, ParsesNamesAndComments) {
  std::stringstream ss(
      "# comment line\n"
      "hospital-a,alice\n"
      "hospital-b,alice\n"
      "hospital-a,bob\n"
      "\n");
  const auto table = load_collection_table(ss);
  EXPECT_EQ(table.provider_names,
            (std::vector<std::string>{"hospital-a", "hospital-b"}));
  EXPECT_EQ(table.identity_names,
            (std::vector<std::string>{"alice", "bob"}));
  EXPECT_TRUE(table.network.membership.get(0, 0));
  EXPECT_TRUE(table.network.membership.get(1, 0));
  EXPECT_TRUE(table.network.membership.get(0, 1));
  EXPECT_FALSE(table.network.membership.get(1, 1));
}

TEST(CollectionTableTest, DuplicateFactsAreIdempotent) {
  std::stringstream ss("p,t\np,t\n");
  const auto table = load_collection_table(ss);
  EXPECT_EQ(table.network.membership.popcount(), 1u);
}

TEST(CollectionTableTest, MalformedLineThrows) {
  std::stringstream no_comma("just-a-token\n");
  EXPECT_THROW(load_collection_table(no_comma), eppi::SerializeError);
  std::stringstream empty_field(",identity\n");
  EXPECT_THROW(load_collection_table(empty_field), eppi::SerializeError);
}

TEST(CollectionTableTest, SaveUsesProvidedNames) {
  eppi::Rng rng(7);
  Network net;
  net.membership = eppi::BitMatrix(1, 1);
  net.membership.set(0, 0, true);
  std::stringstream ss;
  save_collection_table(ss, net, {"clinic"}, {"carol"});
  EXPECT_EQ(ss.str(), "clinic,carol\n");
}

}  // namespace
}  // namespace eppi::dataset
