#include "dataset/evolution.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dataset/synthetic.h"

namespace eppi::dataset {
namespace {

TEST(EvolutionTest, StepsAddDelegations) {
  eppi::Rng rng(1);
  auto net = make_network_with_frequencies(
      20, std::vector<std::uint64_t>(10, 2), rng);
  const std::size_t before = net.membership.popcount();
  EvolutionConfig config;
  config.new_delegations_per_step = 4.0;
  config.purge_probability = 0.0;
  NetworkEvolution evolution(net.membership, config, eppi::Rng(2));
  std::size_t reported = 0;
  for (int s = 0; s < 10; ++s) reported += evolution.step().added.size();
  EXPECT_EQ(net.membership.popcount(), before + reported);
  EXPECT_GE(reported, 30u);  // ~4 per step
  EXPECT_EQ(evolution.steps_applied(), 10u);
}

TEST(EvolutionTest, ReportedChangesMatchMatrix) {
  eppi::Rng rng(3);
  auto net = make_network_with_frequencies(
      15, std::vector<std::uint64_t>(8, 5), rng);
  eppi::BitMatrix snapshot = net.membership;
  EvolutionConfig config;
  config.new_delegations_per_step = 2.0;
  config.purge_probability = 0.5;
  NetworkEvolution evolution(net.membership, config, eppi::Rng(4));
  const auto step = evolution.step();
  for (const auto& [i, j] : step.added) {
    EXPECT_FALSE(snapshot.get(i, j));
    EXPECT_TRUE(net.membership.get(i, j));
    snapshot.set(i, j, true);
  }
  for (const auto& [i, j] : step.removed) {
    EXPECT_TRUE(snapshot.get(i, j));
    EXPECT_FALSE(net.membership.get(i, j));
    snapshot.set(i, j, false);
  }
  EXPECT_EQ(snapshot, net.membership);  // nothing else moved
}

TEST(EvolutionTest, DeterministicUnderSeed) {
  eppi::Rng rng(5);
  auto net_a = make_network_with_frequencies(
      10, std::vector<std::uint64_t>(5, 1), rng);
  auto net_b = net_a;
  EvolutionConfig config;
  NetworkEvolution ea(net_a.membership, config, eppi::Rng(7));
  NetworkEvolution eb(net_b.membership, config, eppi::Rng(7));
  for (int s = 0; s < 5; ++s) {
    (void)ea.step();
    (void)eb.step();
  }
  EXPECT_EQ(net_a.membership, net_b.membership);
}

TEST(EvolutionTest, EmptyNetworkRejected) {
  eppi::BitMatrix empty;
  NetworkEvolution evolution(empty, {}, eppi::Rng(1));
  EXPECT_THROW(evolution.step(), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::dataset
