#include "dataset/hie_model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/constructor.h"
#include "core/publisher.h"

namespace eppi::dataset {
namespace {

TEST(HieModelTest, ShapesAndVisitCounts) {
  eppi::Rng rng(1);
  HieModelConfig config;
  config.providers = 50;
  config.patients = 200;
  config.mean_visits = 3.0;
  const auto world = make_hie_world(config, rng);
  EXPECT_EQ(world.network.providers(), 50u);
  EXPECT_EQ(world.network.identities(), 200u);
  // Every patient visits at least one provider.
  double total_visits = 0.0;
  for (std::size_t j = 0; j < 200; ++j) {
    const auto f = world.network.membership.col_count(j);
    EXPECT_GE(f, 1u);
    total_visits += static_cast<double>(f);
  }
  // Mean visit count in the ballpark of the configured mean.
  EXPECT_NEAR(total_visits / 200.0, 3.0, 1.2);
}

TEST(HieModelTest, LocalityControlsClustering) {
  eppi::Rng rng_a(2);
  eppi::Rng rng_b(2);
  HieModelConfig clustered;
  clustered.providers = 60;
  clustered.patients = 300;
  clustered.locality = 0.05;
  clustered.traveler_fraction = 0.0;
  HieModelConfig spread = clustered;
  spread.locality = 10.0;  // effectively uniform
  const auto tight = make_hie_world(clustered, rng_a);
  const auto loose = make_hie_world(spread, rng_b);
  EXPECT_LT(tight.mean_visit_spread(), loose.mean_visit_spread() * 0.7);
}

TEST(HieModelTest, TravelersAreCommonIdentities) {
  eppi::Rng rng(3);
  HieModelConfig config;
  config.providers = 40;
  config.patients = 100;
  config.traveler_fraction = 0.1;
  config.traveler_visit_fraction = 0.9;
  const auto world = make_hie_world(config, rng);
  for (std::size_t j = 0; j < 100; ++j) {
    if (world.traveler[j]) {
      EXPECT_GE(world.network.membership.col_count(j), 36u);
    }
  }
}

TEST(HieModelTest, EpsilonPpiGuaranteesHoldUnderClustering) {
  // β policies are frequency-based, so correlated placement must not break
  // the per-owner bound.
  eppi::Rng rng(4);
  HieModelConfig config;
  config.providers = 300;
  config.patients = 150;
  config.locality = 0.05;  // strongly clustered
  config.mean_visits = 4.0;
  const auto world = make_hie_world(config, rng);
  const std::vector<double> epsilons(150, 0.6);
  eppi::core::ConstructionOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto result = eppi::core::construct_centralized(
      world.network.membership, epsilons, options, rng);
  const auto rates = eppi::core::false_positive_rates(
      world.network.membership, result.index.matrix());
  std::size_t met = 0;
  for (std::size_t j = 0; j < 150; ++j) {
    if (result.info.is_apparent_common[j] || rates[j] >= 0.6) ++met;
  }
  EXPECT_GE(static_cast<double>(met) / 150.0, 0.85);
}

TEST(HieModelTest, Validates) {
  eppi::Rng rng(5);
  HieModelConfig bad;
  bad.providers = 1;
  EXPECT_THROW(make_hie_world(bad, rng), eppi::ConfigError);
  bad = HieModelConfig{};
  bad.locality = 0.0;
  EXPECT_THROW(make_hie_world(bad, rng), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::dataset
