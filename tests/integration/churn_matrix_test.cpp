// Membership churn over the distributed construction (`ctest -L fault`).
//
// The acceptance scenario for incremental epochs: a provider retires and a
// fresh one joins between epochs, and the next ConstructPPI completes over
// the DELTA protocol — SecSumShare/CountBelow run only over the dirty
// identity columns among the active providers, the result is spliced over
// the served epoch, and the delta path is asserted (last_rebuild().delta),
// not assumed. A second scenario drives churn from the FaultScenario DSL
// (`churn P: join_at/leave_at/flap`), and a third kills the delta round
// mid-protocol to prove degraded serving retains the pending churn and the
// retry drains it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/beta_policy.h"
#include "core/locator_service.h"
#include "net/fault.h"

namespace eppi::core {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kProviders = 5;
constexpr std::size_t kOwners = 8;

std::string prov(std::size_t i) { return "p" + std::to_string(i); }
std::string owner(std::size_t j) { return "o" + std::to_string(j); }

LocatorService::Options churn_options() {
  LocatorService::Options options;
  options.distributed = true;
  options.policy = BetaPolicy::basic();
  options.c = 3;
  options.seed = 17;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.stage_timeout = 150ms;
  options.fault_tolerance.mpc_timeout = 3000ms;
  options.fault_tolerance.max_attempts = 3;
  return options;
}

void populate(LocatorService& svc) {
  for (std::size_t j = 0; j < kOwners; ++j) {
    svc.delegate(owner(j), 0.4, prov(j % kProviders));
    svc.delegate(owner(j), 0.4, prov((j + 2) % kProviders));
  }
}

bool answers_contain(const std::vector<std::string>& answer,
                     const std::string& name) {
  return std::find(answer.begin(), answer.end(), name) != answer.end();
}

TEST(ChurnMatrixTest, LeaveAndJoinCompleteViaDeltaPath) {
  LocatorService svc(churn_options());
  populate(svc);
  svc.construct_ppi();
  ASSERT_EQ(svc.serving_status().epoch, 1u);
  ASSERT_FALSE(svc.last_rebuild().delta);  // first epoch is necessarily full

  // Mid-lifecycle churn: p1 leaves, a brand-new p5 joins with fresh data.
  svc.retire_provider(prov(1));
  svc.delegate(owner(8), 0.4, prov(5));
  svc.construct_ppi();

  // The round completed via the delta protocol — no full rebuild.
  EXPECT_TRUE(svc.last_rebuild().delta);
  EXPECT_FALSE(svc.last_rebuild().degraded);
  EXPECT_EQ(svc.last_rebuild().left, 1u);
  EXPECT_EQ(svc.last_rebuild().joined, 1u);
  EXPECT_GT(svc.last_rebuild().churn, 0u);
  EXPECT_EQ(svc.serving_status().epoch, 2u);

  // The leaver is gone from every answer; the joiner serves its owner.
  for (std::size_t j = 0; j <= kOwners; ++j) {
    EXPECT_FALSE(answers_contain(svc.query_ppi(owner(j)), prov(1)))
        << owner(j);
  }
  EXPECT_TRUE(answers_contain(svc.query_ppi(owner(8)), prov(5)));
}

TEST(ChurnMatrixTest, DslDrivenFlapAndJoinRounds) {
  // p1 flaps (leaves at round 2, rejoins at round 4); p5 joins at round 3.
  const auto scenario = eppi::net::FaultScenario::parse(
      "churn 1: flap=2..4; churn 5: join_at=3");
  ASSERT_EQ(scenario.last_churn_round(), 4u);

  LocatorService svc(churn_options());
  populate(svc);
  for (std::uint64_t round = 1; round <= scenario.last_churn_round();
       ++round) {
    for (const auto p : scenario.leaves_at(round)) {
      svc.retire_provider(prov(p));
    }
    for (const auto p : scenario.joins_at(round)) {
      // (Re-)delegating to the named provider registers or rejoins it.
      svc.delegate(owner(p % kOwners), 0.4, prov(p));
    }
    svc.construct_ppi();
    ASSERT_FALSE(svc.last_rebuild().degraded) << "round " << round;
    EXPECT_EQ(svc.serving_status().epoch, round) << "round " << round;
    if (round > 1) {
      // Every churn round (and the quiet ones route full: round 1 only).
      EXPECT_TRUE(svc.last_rebuild().delta) << "round " << round;
    }
  }

  // Final state: p1 is back (serving its rejoin delegation), p5 serves its
  // owner, and no answer is stale about the flap.
  EXPECT_FALSE(svc.provider_retired(1));
  EXPECT_TRUE(answers_contain(svc.query_ppi(owner(1)), prov(1)));
  EXPECT_TRUE(answers_contain(svc.query_ppi(owner(5 % kOwners)), prov(5)));
}

TEST(ChurnMatrixTest, DegradedDeltaRoundKeepsServingAndRetryDrainsChurn) {
  LocatorService svc(churn_options());
  populate(svc);
  svc.construct_ppi();

  svc.retire_provider(prov(1));
  svc.delegate(owner(8), 0.4, prov(5));
  // Kill the delta sub-protocol's coordinator on its first send: the round
  // aborts, the service keeps answering from epoch 1 (degraded), and the
  // pending churn is NOT lost.
  auto failing = churn_options().fault_tolerance;
  failing.fault_scenario = "crash 1 after 0 sends";
  svc.set_fault_tolerance(failing);
  svc.construct_ppi();
  EXPECT_TRUE(svc.last_rebuild().degraded);
  const auto stale = svc.query_ppi_with_status(owner(0));
  EXPECT_EQ(stale.epoch, 1u);
  EXPECT_TRUE(stale.degraded);
  // Stale epoch: the retired provider is still being served — honestly.
  EXPECT_GT(svc.last_rebuild().churn, 0u);  // pending cells, surfaced

  // Clear the fault and retry: the SAME churn drains through the delta
  // path and the service recovers.
  svc.set_fault_tolerance(churn_options().fault_tolerance);
  svc.construct_ppi();
  EXPECT_FALSE(svc.last_rebuild().degraded);
  EXPECT_TRUE(svc.last_rebuild().delta);
  EXPECT_EQ(svc.last_rebuild().left, 1u);
  EXPECT_EQ(svc.last_rebuild().joined, 1u);
  EXPECT_EQ(svc.serving_status().epoch, 2u);
  for (std::size_t j = 0; j <= kOwners; ++j) {
    EXPECT_FALSE(answers_contain(svc.query_ppi(owner(j)), prov(1)))
        << owner(j);
  }
  EXPECT_TRUE(answers_contain(svc.query_ppi(owner(8)), prov(5)));
}

}  // namespace
}  // namespace eppi::core
