// Parameterized sweep of the distributed constructor across network sizes,
// coordinator counts and policies: the structural invariants must hold for
// every combination.
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "core/beta_policy.h"
#include "baseline/grouping_ppi.h"
#include "core/constructor.h"
#include "core/distributed_constructor.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

using SweepParam = std::tuple<std::size_t /*m*/, std::size_t /*c*/,
                              PolicyKind, bool /*mixing*/>;

class ConstructorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConstructorSweep, InvariantsHold) {
  const auto [m, c, kind, mixing] = GetParam();
  eppi::Rng rng(m * 1000 + c * 10 + static_cast<int>(kind));
  constexpr std::size_t kN = 9;
  std::vector<std::uint64_t> freqs(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    freqs[j] = j == 0 ? m - 1 : rng.next_below(m / 2 + 1);
  }
  const auto net = eppi::dataset::make_network_with_frequencies(m, freqs, rng);
  const auto epsilons = eppi::dataset::random_epsilons(kN, rng, 0.2, 0.8);

  DistributedOptions options;
  options.c = c;
  options.enable_mixing = mixing;
  options.seed = m + c;
  switch (kind) {
    case PolicyKind::kBasic:
      options.policy = BetaPolicy::basic();
      break;
    case PolicyKind::kIncExp:
      options.policy = BetaPolicy::inc_exp(0.02);
      break;
    case PolicyKind::kChernoff:
      options.policy = BetaPolicy::chernoff(0.9);
      break;
    case PolicyKind::kExact:
      options.policy = BetaPolicy::exact(0.9);
      break;
  }
  const auto result = construct_distributed(net.membership, epsilons, options);

  // 1. 100% recall.
  EXPECT_TRUE(full_recall(net.membership, result.index.matrix()));
  // 2. Common identities are mixed and their frequencies hidden.
  const auto thresholds = common_thresholds(options.policy, epsilons, m);
  for (std::size_t j = 0; j < kN; ++j) {
    if (net.membership.col_count(j) >= thresholds[j]) {
      EXPECT_TRUE(result.report.mixed[j]) << "identity " << j;
      EXPECT_EQ(result.report.revealed_frequencies[j], 0u);
    }
  }
  // 3. Mixed identities publish full columns.
  for (std::size_t j = 0; j < kN; ++j) {
    if (result.report.mixed[j]) {
      EXPECT_EQ(result.index.matrix().col_count(j), m) << "identity " << j;
      EXPECT_DOUBLE_EQ(result.report.betas[j], 1.0);
    } else {
      EXPECT_EQ(result.report.revealed_frequencies[j],
                net.membership.col_count(j));
    }
  }
  // 4. Betas stay in [0, 1].
  for (const double beta : result.report.betas) {
    EXPECT_GE(beta, 0.0);
    EXPECT_LE(beta, 1.0);
  }
  // 5. Without mixing, apparent commons == true commons.
  if (!mixing) {
    for (std::size_t j = 0; j < kN; ++j) {
      EXPECT_EQ(result.report.mixed[j],
                net.membership.col_count(j) >= thresholds[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConstructorSweep,
    ::testing::Values(
        std::make_tuple(4, 2, PolicyKind::kBasic, true),
        std::make_tuple(4, 2, PolicyKind::kChernoff, false),
        std::make_tuple(6, 3, PolicyKind::kBasic, true),
        std::make_tuple(6, 3, PolicyKind::kIncExp, true),
        std::make_tuple(8, 3, PolicyKind::kChernoff, true),
        std::make_tuple(8, 5, PolicyKind::kBasic, false),
        std::make_tuple(10, 4, PolicyKind::kChernoff, true),
        std::make_tuple(12, 3, PolicyKind::kIncExp, false),
        std::make_tuple(12, 6, PolicyKind::kChernoff, true),
        std::make_tuple(16, 2, PolicyKind::kBasic, true),
        std::make_tuple(8, 3, PolicyKind::kExact, true),
        std::make_tuple(10, 2, PolicyKind::kExact, false)));

// The paper's Appendix B counterexample, verbatim: one owner at 100% of
// providers, every other owner at exactly one provider; any grouping with
// more than two groups exposes the common owner with certainty, while ε-PPI
// hides it behind decoys.
TEST(AppendixBExampleTest, GroupingExposesTheOnlyCommonTerm) {
  eppi::Rng rng(2014);
  constexpr std::size_t kM = 60;
  constexpr std::size_t kN = 40;
  std::vector<std::uint64_t> freqs(kN, 1);
  freqs[0] = kM;  // the 100%-frequency common term
  const auto net = eppi::dataset::make_network_with_frequencies(kM, freqs, rng);

  // Grouping with > 2 groups: only the true common term can appear in every
  // group, so its column in the provider view is the only full one.
  const eppi::baseline::GroupingPpi grouping(net.membership, 6, rng);
  std::size_t full_columns = 0;
  bool common_is_full = false;
  for (std::size_t j = 0; j < kN; ++j) {
    if (grouping.apparent_frequency(static_cast<IdentityId>(j)) == kM) {
      ++full_columns;
      if (j == 0) common_is_full = true;
    }
  }
  EXPECT_TRUE(common_is_full);
  EXPECT_EQ(full_columns, 1u);  // attacker identifies it with certainty

  // ε-PPI: mixing makes other columns full too.
  std::vector<double> epsilons(kN, 0.8);
  ConstructionOptions options;
  options.policy = BetaPolicy::basic();
  const auto eppi_result =
      construct_centralized(net.membership, epsilons, options, rng);
  std::size_t eppi_full = 0;
  for (std::size_t j = 0; j < kN; ++j) {
    if (eppi_result.index.matrix().col_count(j) == kM) ++eppi_full;
  }
  EXPECT_GT(eppi_full, 1u);  // the common term has company
}

}  // namespace
}  // namespace eppi::core
