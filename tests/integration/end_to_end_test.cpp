// Integration tests: the whole pipeline — synthetic network, distributed
// secure construction, query serving, two-phase search, and the paper's
// attacks — exercised together, the way examples/ and bench/ drive it.
#include <gtest/gtest.h>

#include "attack/common_identity_attack.h"
#include "attack/primary_attack.h"
#include "attack/privacy_degree.h"
#include "baseline/grouping_ppi.h"
#include "core/auth_search.h"
#include "core/constructor.h"
#include "core/distributed_constructor.h"
#include "core/mixing.h"
#include "core/publisher.h"
#include "dataset/synthetic.h"

namespace eppi {
namespace {

struct Scenario {
  dataset::Network network;
  std::vector<double> epsilons;
};

Scenario make_scenario(std::uint64_t seed, std::size_t m = 12,
                       std::size_t n = 10) {
  Rng rng(seed);
  dataset::SyntheticConfig config;
  config.providers = m;
  config.identities = n;
  config.zipf_exponent = 0.8;
  config.max_fraction = 0.95;
  Scenario s;
  s.network = dataset::make_zipf_network(config, rng);
  s.epsilons = dataset::random_epsilons(n, rng, 0.2, 0.8);
  return s;
}

TEST(EndToEndTest, DistributedConstructionServesCompleteSearches) {
  const Scenario s = make_scenario(101);
  core::DistributedOptions options;
  options.c = 3;
  options.policy = core::BetaPolicy::chernoff(0.9);
  const auto result =
      core::construct_distributed(s.network.membership, s.epsilons, options);

  // Every search through the index finds every true provider.
  for (std::size_t j = 0; j < s.network.identities(); ++j) {
    const auto outcome = core::two_phase_search(
        result.index, s.network.membership,
        static_cast<core::IdentityId>(j));
    std::size_t expected = s.network.membership.col_count(j);
    EXPECT_EQ(outcome.matched.size(), expected) << "identity " << j;
  }
}

TEST(EndToEndTest, HigherEpsilonMeansMoreSearchOverhead) {
  Rng rng(102);
  constexpr std::size_t kM = 400;
  const auto net = dataset::make_network_with_frequencies(
      kM, std::vector<std::uint64_t>(8, 10), rng);
  double low_overhead = 0.0;
  double high_overhead = 0.0;
  for (const double eps : {0.2, 0.9}) {
    const std::vector<double> epsilons(8, eps);
    core::ConstructionOptions options;
    options.policy = core::BetaPolicy::chernoff(0.9);
    Rng crng(103);
    const auto result = core::construct_centralized(net.membership, epsilons,
                                                    options, crng);
    double total = 0.0;
    for (std::size_t j = 0; j < 8; ++j) {
      const auto outcome = core::two_phase_search(
          result.index, net.membership, static_cast<core::IdentityId>(j));
      total += static_cast<double>(outcome.wasted_contacts());
    }
    (eps < 0.5 ? low_overhead : high_overhead) = total;
  }
  EXPECT_GT(high_overhead, low_overhead);
}

TEST(EndToEndTest, EpsilonPpiResistsPrimaryAttack) {
  Rng rng(104);
  constexpr std::size_t kM = 800;
  constexpr std::size_t kN = 30;
  std::vector<std::uint64_t> freqs(kN);
  for (auto& f : freqs) f = 5 + rng.next_below(40);
  const auto net = dataset::make_network_with_frequencies(kM, freqs, rng);
  const std::vector<double> epsilons(kN, 0.6);
  core::ConstructionOptions options;
  options.policy = core::BetaPolicy::chernoff(0.95);
  const auto result =
      core::construct_centralized(net.membership, epsilons, options, rng);
  const auto confidences =
      attack::exact_confidences(net.membership, result.index.matrix());
  EXPECT_EQ(attack::classify_degree(confidences, epsilons),
            attack::PrivacyDegree::kEpsPrivate);
}

TEST(EndToEndTest, GroupingPpiFailsPersonalizedBounds) {
  Rng rng(105);
  constexpr std::size_t kM = 400;
  constexpr std::size_t kN = 40;
  std::vector<std::uint64_t> freqs(kN);
  for (auto& f : freqs) f = 2 + rng.next_below(10);
  const auto net = dataset::make_network_with_frequencies(kM, freqs, rng);
  // Demanding, heterogeneous requirements: grouping cannot personalize.
  const auto epsilons = dataset::random_epsilons(kN, rng, 0.85, 0.999);
  const baseline::GroupingPpi grouping(net.membership, 100, rng);
  const auto confidences =
      attack::exact_confidences(net.membership, grouping.provider_view());
  EXPECT_NE(attack::classify_degree(confidences, epsilons),
            attack::PrivacyDegree::kEpsPrivate);
}

TEST(EndToEndTest, CommonIdentityAttackDefeatedByMixing) {
  Rng rng(106);
  constexpr std::size_t kM = 60;
  constexpr std::size_t kN = 120;
  std::vector<std::uint64_t> freqs(kN, 2);
  freqs[0] = 58;  // one true common identity
  const auto net = dataset::make_network_with_frequencies(kM, freqs, rng);
  std::vector<double> epsilons(kN, 0.8);
  core::ConstructionOptions options;
  options.policy = core::BetaPolicy::basic();
  const auto result =
      core::construct_centralized(net.membership, epsilons, options, rng);
  ASSERT_TRUE(result.info.is_common[0]);
  // The attacker reads apparent frequencies off the published matrix and
  // flags full columns as common.
  std::vector<std::uint64_t> knowledge(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    knowledge[j] = result.index.matrix().col_count(j);
  }
  const auto outcome = attack::common_identity_attack(
      net.membership, knowledge, kM, result.info.is_common, 10, rng);
  // The decoy fraction bounds identification confidence by 1 − ξ.
  EXPECT_LE(outcome.identification_confidence(), 1.0 - result.info.xi + 0.1);
  // And the decoy set achieved at least ξ.
  EXPECT_GE(core::achieved_decoy_fraction(result.info.is_common,
                                          result.info.is_apparent_common),
            result.info.xi - 0.1);
}

TEST(EndToEndTest, MixingAblationLeavesCommonsExposed) {
  Rng rng(107);
  constexpr std::size_t kM = 60;
  constexpr std::size_t kN = 120;
  std::vector<std::uint64_t> freqs(kN, 2);
  freqs[0] = 58;
  const auto net = dataset::make_network_with_frequencies(kM, freqs, rng);
  std::vector<double> epsilons(kN, 0.8);
  core::ConstructionOptions options;
  options.policy = core::BetaPolicy::basic();
  options.enable_mixing = false;
  const auto result =
      core::construct_centralized(net.membership, epsilons, options, rng);
  std::vector<std::uint64_t> knowledge(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    knowledge[j] = result.index.matrix().col_count(j);
  }
  const auto outcome = attack::common_identity_attack(
      net.membership, knowledge, kM, result.info.is_common, 10, rng);
  // Without mixing, only the truly common column is full: identification is
  // certain — exactly the common-identity vulnerability.
  EXPECT_DOUBLE_EQ(outcome.identification_confidence(), 1.0);
}

TEST(EndToEndTest, DistributedAndCentralizedAgreeStatistically) {
  // Same network, same policy: per-identity achieved false-positive rates
  // from the two constructors must match in distribution. We compare means
  // over repeated runs for a few representative identities.
  Rng rng(108);
  const auto net = dataset::make_network_with_frequencies(
      10, std::vector<std::uint64_t>{3, 5, 1}, rng);
  const std::vector<double> epsilons{0.5, 0.4, 0.6};
  core::DistributedOptions dopt;
  dopt.c = 3;
  dopt.policy = core::BetaPolicy::basic();

  core::ConstructionOptions copt;
  copt.policy = dopt.policy;

  std::vector<double> dist_rates(3, 0.0);
  std::vector<double> cent_rates(3, 0.0);
  constexpr int kRuns = 15;
  for (int run = 0; run < kRuns; ++run) {
    dopt.seed = 1000 + run;
    const auto d =
        core::construct_distributed(net.membership, epsilons, dopt);
    const auto dr =
        core::false_positive_rates(net.membership, d.index.matrix());
    Rng crng(2000 + run);
    const auto c = core::construct_centralized(net.membership, epsilons,
                                               copt, crng);
    const auto cr =
        core::false_positive_rates(net.membership, c.index.matrix());
    for (std::size_t j = 0; j < 3; ++j) {
      dist_rates[j] += dr[j] / kRuns;
      cent_rates[j] += cr[j] / kRuns;
    }
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(dist_rates[j], cent_rates[j], 0.25) << "identity " << j;
  }
}

TEST(EndToEndTest, PerOwnerEpsilonIsActuallyPersonalized) {
  // Two identities with identical frequency but different ε must end with
  // different amounts of published noise.
  Rng rng(109);
  constexpr std::size_t kM = 2000;
  const auto net = dataset::make_network_with_frequencies(
      kM, std::vector<std::uint64_t>{20, 20}, rng);
  const std::vector<double> epsilons{0.2, 0.9};
  core::ConstructionOptions options;
  options.policy = core::BetaPolicy::chernoff(0.9);
  const auto result =
      core::construct_centralized(net.membership, epsilons, options, rng);
  const auto low = result.index.apparent_frequency(0);
  const auto high = result.index.apparent_frequency(1);
  EXPECT_LT(low * 3, high);  // far more noise for the ε = 0.9 owner
}

}  // namespace
}  // namespace eppi
