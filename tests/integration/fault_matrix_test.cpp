// End-to-end dropout matrix for the distributed construction: any single
// non-coordinator provider may crash mid-SecSumShare and the construction
// still commits a correct index over the survivors; a coordinator crash
// aborts with a typed PartyFailure within the configured deadlines; the
// epoch manager degrades to the previous epoch's index on a failed rebuild.
#include <gtest/gtest.h>

#include <chrono>

#include "common/bit_matrix.h"
#include "common/error.h"
#include "core/beta_policy.h"
#include "core/constructor.h"
#include "core/distributed_constructor.h"
#include "core/epoch_manager.h"
#include "secret/sec_sum_share.h"

namespace eppi::core {
namespace {

using eppi::net::PartyId;
using namespace std::chrono_literals;

constexpr std::size_t kM = 6;
constexpr std::size_t kN = 5;

const std::vector<std::vector<std::uint8_t>> kRows{
    {1, 1, 0, 0, 1}, {1, 0, 1, 0, 0}, {1, 1, 0, 1, 0},
    {1, 0, 0, 0, 1}, {1, 1, 1, 0, 0}, {1, 0, 0, 1, 1}};
const std::vector<double> kEpsilons{0.5, 0.4, 0.6, 0.3, 0.5};

eppi::BitMatrix truth_matrix() {
  eppi::BitMatrix truth(kM, kN);
  for (std::size_t i = 0; i < kM; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      if (kRows[i][j]) truth.set(i, j, true);
    }
  }
  return truth;
}

DistributedOptions ft_options() {
  DistributedOptions options;
  options.policy = BetaPolicy::basic();
  options.c = 2;
  options.seed = 31;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.stage_timeout = 150ms;
  options.fault_tolerance.mpc_timeout = 3000ms;
  options.fault_tolerance.max_attempts = 3;
  return options;
}

// Validates a committed construction against the centralized reference
// computed over the surviving providers only.
void expect_correct_over_survivors(const DistributedResult& result,
                                   const std::vector<PartyId>& survivors) {
  const std::size_t m_eff = survivors.size();

  // Ground-truth frequencies over the survivors (plain_frequency_sums is the
  // centralized reference the SecSumShare output must equal).
  std::vector<std::vector<std::uint8_t>> survivor_rows;
  for (const PartyId i : survivors) survivor_rows.push_back(kRows[i]);
  const auto freqs = eppi::secret::plain_frequency_sums(survivor_rows, kN);

  const auto thresholds =
      common_thresholds(BetaPolicy::basic(), kEpsilons, m_eff);
  for (std::size_t j = 0; j < kN; ++j) {
    const bool common = freqs[j] >= thresholds[j];
    if (common) {
      EXPECT_TRUE(result.report.mixed[j]) << "identity " << j;
    }
    if (result.report.mixed[j]) {
      EXPECT_EQ(result.report.revealed_frequencies[j], 0u) << j;
      EXPECT_EQ(result.report.betas[j], 1.0) << j;
    } else {
      EXPECT_EQ(result.report.revealed_frequencies[j], freqs[j]) << j;
    }
  }

  // Centralized constructor on the survivor submatrix: unmixed β must agree.
  eppi::BitMatrix survivor_truth(m_eff, kN);
  for (std::size_t i = 0; i < m_eff; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      if (survivor_rows[i][j]) survivor_truth.set(i, j, true);
    }
  }
  ConstructionOptions copt;
  copt.policy = BetaPolicy::basic();
  eppi::Rng crng(1);
  const auto cent = calculate_betas(survivor_truth, kEpsilons, copt, crng);
  for (std::size_t j = 0; j < kN; ++j) {
    if (!result.report.mixed[j] && !cent.is_apparent_common[j]) {
      EXPECT_NEAR(result.report.betas[j], cent.betas[j], 1e-9) << j;
    }
  }

  // Index shape: full recall for every survivor, silence for the crashed.
  const auto& published = result.index.matrix();
  for (const PartyId i : survivors) {
    for (std::size_t j = 0; j < kN; ++j) {
      if (kRows[i][j]) {
        EXPECT_TRUE(published.get(i, j)) << "provider " << i << " id " << j;
      }
    }
  }
  for (const PartyId i : result.report.crashed) {
    for (std::size_t j = 0; j < kN; ++j) {
      EXPECT_FALSE(published.get(i, j)) << "crashed provider " << i;
    }
  }
}

TEST(FaultMatrixTest, FaultTolerantModeWithoutFaultsMatchesPlainContract) {
  const auto result =
      construct_distributed(truth_matrix(), kEpsilons, ft_options());
  EXPECT_TRUE(result.report.crashed.empty());
  EXPECT_EQ(result.report.survivors.size(), kM);
  EXPECT_EQ(result.report.secsum_attempts, 1u);
  expect_correct_over_survivors(result,
                                {0, 1, 2, 3, 4, 5});
}

TEST(FaultMatrixTest, AnySingleNonCoordinatorCrashStillCommits) {
  // The acceptance matrix: each non-coordinator provider in turn crashes on
  // its super-share send (mid-SecSumShare, after distributing ring shares).
  for (PartyId f = 2; f < kM; ++f) {
    DistributedOptions options = ft_options();
    options.fault_tolerance.fault_scenario =
        "crash " + std::to_string(f) + " after 1 sends";
    const auto result =
        construct_distributed(truth_matrix(), kEpsilons, options);

    EXPECT_EQ(result.report.crashed, std::vector<PartyId>{f}) << "f=" << f;
    EXPECT_EQ(result.report.secsum_attempts, 2u) << "f=" << f;
    std::vector<PartyId> survivors;
    for (PartyId i = 0; i < kM; ++i) {
      if (i != f) survivors.push_back(i);
    }
    EXPECT_EQ(result.report.survivors, survivors) << "f=" << f;
    expect_correct_over_survivors(result, survivors);
  }
}

TEST(FaultMatrixTest, CrashRecoveryIsDeterministicForFixedSeed) {
  DistributedOptions options = ft_options();
  options.fault_tolerance.fault_scenario = "crash 4 after 1 sends";
  const auto a = construct_distributed(truth_matrix(), kEpsilons, options);
  const auto b = construct_distributed(truth_matrix(), kEpsilons, options);
  EXPECT_EQ(a.index.matrix(), b.index.matrix());
  EXPECT_EQ(a.report.betas, b.report.betas);
  EXPECT_EQ(a.report.crashed, b.report.crashed);
}

TEST(FaultMatrixTest, CoordinatorCrashInSecSumShareAbortsTyped) {
  DistributedOptions options = ft_options();
  options.fault_tolerance.fault_scenario = "crash 1 after 0 sends";
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)construct_distributed(truth_matrix(), kEpsilons, options);
    FAIL() << "expected PartyFailure";
  } catch (const eppi::PartyFailure& failure) {
    EXPECT_EQ(failure.party(), PartyId{1});
  }
  // "Within the configured deadline": bounded by the failure detector's
  // view-change waits, nowhere near a hang. Generous bound for slow CI.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s);
}

TEST(FaultMatrixTest, CoordinatorCrashMidMpcAbortsTyped) {
  DistributedOptions options = ft_options();
  // Tag 4 = kMpcOpen: coordinator 1 survives SecSumShare and dies on its
  // first GMW opening — the surviving coordinator's bounded recv must
  // surface the death, not hang.
  options.fault_tolerance.fault_scenario = "crash 1 at tag 4";
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      (void)construct_distributed(truth_matrix(), kEpsilons, options),
      eppi::PartyFailure);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s);
}

TEST(FaultMatrixTest, LossyNetworkWithReliabilityStillCommits) {
  DistributedOptions options = ft_options();
  options.fault_tolerance.fault_scenario = "all: drop=0.05";
  options.fault_tolerance.reliable_delivery = true;
  options.fault_tolerance.reliable.rto = 2ms;
  options.fault_tolerance.reliable.deadline = 5000ms;
  options.fault_tolerance.stage_timeout = 1000ms;
  options.fault_tolerance.mpc_timeout = 20000ms;
  const auto result =
      construct_distributed(truth_matrix(), kEpsilons, options);
  EXPECT_TRUE(result.report.crashed.empty());
  expect_correct_over_survivors(result, {0, 1, 2, 3, 4, 5});
}

TEST(FaultMatrixTest, EpochManagerServesPreviousIndexOnFailedRebuild) {
  EpochManager manager;
  const auto truth = truth_matrix();

  const auto first =
      manager.rebuild_distributed(truth, kEpsilons, ft_options());
  ASSERT_FALSE(first.degraded);
  EXPECT_EQ(first.epoch, 1u);

  DistributedOptions failing = ft_options();
  failing.fault_tolerance.fault_scenario = "crash 1 after 0 sends";
  const auto degraded =
      manager.rebuild_distributed(truth, kEpsilons, failing);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.epoch, 1u);  // no new epoch
  EXPECT_FALSE(degraded.failure.empty());
  EXPECT_EQ(degraded.index.matrix(), first.index.matrix());
  EXPECT_EQ(manager.failed_rebuilds(), 1u);
  EXPECT_EQ(manager.epochs_built(), 1u);

  // Service recovers on the next healthy rebuild.
  const auto second =
      manager.rebuild_distributed(truth, kEpsilons, ft_options());
  EXPECT_FALSE(second.degraded);
  EXPECT_EQ(second.epoch, 2u);
}

TEST(FaultMatrixTest, FirstEpochFailureHasNoFallbackAndPropagates) {
  EpochManager manager;
  DistributedOptions failing = ft_options();
  failing.fault_tolerance.fault_scenario = "crash 1 after 0 sends";
  EXPECT_THROW(
      (void)manager.rebuild_distributed(truth_matrix(), kEpsilons, failing),
      eppi::PartyFailure);
  EXPECT_EQ(manager.epochs_built(), 0u);
}

}  // namespace
}  // namespace eppi::core
