// Lifecycle integration: a network that keeps evolving, an epoch manager
// that keeps rebuilding, audits that keep passing, and coordinators that
// proactively reshare between epochs.
#include <gtest/gtest.h>

#include "attack/threat_report.h"
#include "common/error.h"
#include "core/epoch_manager.h"
#include "core/publisher.h"
#include "dataset/evolution.h"
#include "dataset/synthetic.h"
#include "secret/reshare.h"
#include "secret/sec_sum_share.h"

namespace eppi {
namespace {

TEST(LifecycleTest, EvolvingNetworkStaysPrivateAcrossEpochs) {
  Rng rng(77);
  constexpr std::size_t kM = 150;
  constexpr std::size_t kN = 60;
  std::vector<std::uint64_t> freqs(kN, 3);
  freqs[0] = 145;
  auto net = dataset::make_network_with_frequencies(kM, freqs, rng);
  const auto epsilons = dataset::random_epsilons(kN, rng, 0.4, 0.8);

  core::EpochManager manager;
  dataset::EvolutionConfig churn;
  churn.new_delegations_per_step = 6.0;
  dataset::NetworkEvolution evolution(net.membership, churn, Rng(78));

  core::EpochManager::EpochResult previous;
  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto result = manager.rebuild(net.membership, epsilons);

    // Invariants every epoch: recall, bounded churn, privacy audit.
    EXPECT_TRUE(core::full_recall(net.membership, result.index.matrix()))
        << "epoch " << epoch;
    if (epoch > 0) {
      // Churn stays in the same order as the ground-truth change (a few
      // delegations per step touch a few columns), far below full rebuild.
      EXPECT_LT(result.churn, kM * kN / 4) << "epoch " << epoch;
    }
    Rng audit_rng(100 + epoch);
    // Ground-truth common flags at this epoch.
    std::vector<bool> common(kN);
    for (std::size_t j = 0; j < kN; ++j) {
      common[j] = result.info.is_common[j];
    }
    const auto report =
        attack::audit_index(net.membership, result.index.matrix(), epsilons,
                            common, audit_rng);
    EXPECT_EQ(report.primary_degree, attack::PrivacyDegree::kEpsPrivate)
        << "epoch " << epoch;

    previous = result;
    (void)evolution.step();
  }
}

TEST(LifecycleTest, ReshareBetweenEpochsPreservesAggregates) {
  // Coordinators reshare between construction epochs; the shared
  // frequencies (and anything computed from them later) are unchanged.
  constexpr std::size_t kM = 10;
  constexpr std::size_t kC = 3;
  constexpr std::size_t kN = 12;
  Rng rng(5);
  std::vector<std::vector<std::uint8_t>> inputs(
      kM, std::vector<std::uint8_t>(kN));
  std::vector<std::uint64_t> freqs(kN, 0);
  for (std::size_t i = 0; i < kM; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      inputs[i][j] = rng.bernoulli(0.5) ? 1 : 0;
      freqs[j] += inputs[i][j];
    }
  }
  net::Cluster cluster(kM, 6);
  const secret::SecSumShareParams params{kC, 0, kN};
  const auto ring = secret::resolve_ring(params, kM);
  std::vector<std::vector<secret::SecretU64>> final_shares(kC);
  cluster.run([&](net::PartyContext& ctx) {
    auto shares =
        secret::run_sec_sum_share_party(ctx, params, inputs[ctx.id()]);
    if (ctx.id() >= kC) return;
    std::vector<net::PartyId> parties;
    for (std::size_t i = 0; i < kC; ++i) {
      parties.push_back(static_cast<net::PartyId>(i));
    }
    // Two resharing epochs back to back.
    auto updated = secret::run_reshare_party(ctx, parties, *shares, ring, 1);
    updated = secret::run_reshare_party(ctx, parties, updated, ring, 2);
    final_shares[ctx.id()] = std::move(updated);
  });
  // The test stands in for all kC coordinators, so opening is legitimate.
  for (std::size_t j = 0; j < kN; ++j) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kC; ++i) {
      total = ring.add(total, final_shares[i][j].reveal());
    }
    EXPECT_EQ(total, freqs[j]) << "identity " << j;
  }
}

}  // namespace
}  // namespace eppi
