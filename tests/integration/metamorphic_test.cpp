// Metamorphic properties: relabeling providers or owners must not change
// anything semantically — the deterministic parts of the pipeline commute
// with permutations exactly, and the keyed (sticky) publication commutes
// when the keys move with the providers.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/beta_policy.h"
#include "core/constructor.h"
#include "core/guarantee.h"
#include "core/sticky_publisher.h"
#include "dataset/synthetic.h"

namespace eppi::core {
namespace {

struct Instance {
  eppi::BitMatrix truth;
  std::vector<double> epsilons;
};

Instance make_instance(std::uint64_t seed, std::size_t m = 40,
                       std::size_t n = 25) {
  eppi::Rng rng(seed);
  Instance inst;
  std::vector<std::uint64_t> freqs(n);
  for (std::size_t j = 0; j < n; ++j) {
    freqs[j] = j == 0 ? m - 1 : rng.next_below(m / 2 + 1);
  }
  inst.truth =
      eppi::dataset::make_network_with_frequencies(m, freqs, rng).membership;
  inst.epsilons = eppi::dataset::random_epsilons(n, rng, 0.2, 0.9);
  return inst;
}

std::vector<std::size_t> random_permutation(std::size_t n,
                                            std::uint64_t seed) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  eppi::Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return perm;
}

TEST(MetamorphicTest, ThresholdsCommuteWithOwnerPermutation) {
  const Instance inst = make_instance(1);
  const std::size_t n = inst.epsilons.size();
  const auto perm = random_permutation(n, 7);
  const auto policy = BetaPolicy::chernoff(0.9);
  const auto base = common_thresholds(policy, inst.epsilons, 40);
  std::vector<double> permuted_eps(n);
  for (std::size_t j = 0; j < n; ++j) permuted_eps[j] = inst.epsilons[perm[j]];
  const auto permuted = common_thresholds(policy, permuted_eps, 40);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(permuted[j], base[perm[j]]);
  }
}

TEST(MetamorphicTest, BetasCommuteWithOwnerPermutation) {
  // With mixing off, calculate_betas is a deterministic per-owner function
  // of (frequency, epsilon) — it must commute with owner relabeling.
  const Instance inst = make_instance(2);
  const std::size_t m = inst.truth.rows();
  const std::size_t n = inst.truth.cols();
  const auto perm = random_permutation(n, 9);

  eppi::BitMatrix permuted_truth(m, n);
  std::vector<double> permuted_eps(n);
  for (std::size_t j = 0; j < n; ++j) {
    permuted_eps[j] = inst.epsilons[perm[j]];
    for (std::size_t i = 0; i < m; ++i) {
      if (inst.truth.get(i, perm[j])) permuted_truth.set(i, j, true);
    }
  }
  ConstructionOptions options;
  options.policy = BetaPolicy::basic();
  options.enable_mixing = false;
  eppi::Rng rng_a(3);
  eppi::Rng rng_b(3);
  const auto base = calculate_betas(inst.truth, inst.epsilons, options, rng_a);
  const auto perm_info =
      calculate_betas(permuted_truth, permuted_eps, options, rng_b);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_DOUBLE_EQ(perm_info.betas[j], base.betas[perm[j]]);
    EXPECT_EQ(perm_info.is_common[j], base.is_common[perm[j]]);
  }
  EXPECT_DOUBLE_EQ(perm_info.xi, base.xi);
}

TEST(MetamorphicTest, StickyPublicationCommutesWithProviderPermutation) {
  // Moving a provider (and its key) must move its published row verbatim.
  const Instance inst = make_instance(3);
  const std::size_t m = inst.truth.rows();
  const std::size_t n = inst.truth.cols();
  std::vector<double> betas(n, 0.4);
  eppi::Rng rng(4);
  std::vector<std::uint64_t> keys(m);
  for (auto& k : keys) k = rng.next();

  const auto base = sticky_publish_matrix(inst.truth, betas, keys);

  const auto perm = random_permutation(m, 11);
  eppi::BitMatrix permuted_truth(m, n);
  std::vector<std::uint64_t> permuted_keys(m);
  for (std::size_t i = 0; i < m; ++i) {
    permuted_keys[i] = keys[perm[i]];
    for (std::size_t j = 0; j < n; ++j) {
      if (inst.truth.get(perm[i], j)) permuted_truth.set(i, j, true);
    }
  }
  const auto permuted =
      sticky_publish_matrix(permuted_truth, betas, permuted_keys);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(permuted.get(i, j), base.get(perm[i], j));
    }
  }
}

TEST(MetamorphicTest, GuaranteeIsScaleConsistent) {
  // Doubling (m, f) at fixed sigma barely moves beta but tightens the
  // binomial concentration: success probability must not decrease for the
  // Chernoff policy.
  const auto policy = BetaPolicy::chernoff(0.9);
  double prev = 0.0;
  for (const std::size_t m : {250u, 500u, 1000u, 2000u, 4000u}) {
    const double p = policy_success_probability(policy, m, m / 20, 0.5);
    EXPECT_GE(p, prev - 0.02) << "m=" << m;
    prev = p;
  }
}

TEST(MetamorphicTest, PublishedNoiseIndependentAcrossIdentities) {
  // Removing an identity from the input must not change another identity's
  // sticky noise (column independence).
  const Instance inst = make_instance(5);
  const std::size_t m = inst.truth.rows();
  std::vector<double> betas(inst.truth.cols(), 0.3);
  eppi::Rng rng(6);
  std::vector<std::uint64_t> keys(m);
  for (auto& k : keys) k = rng.next();
  const auto full = sticky_publish_matrix(inst.truth, betas, keys);

  // Rebuild with identity 0's memberships cleared.
  eppi::BitMatrix truncated = inst.truth;
  for (std::size_t i = 0; i < m; ++i) truncated.set(i, 0, false);
  const auto rebuilt = sticky_publish_matrix(truncated, betas, keys);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 1; j < inst.truth.cols(); ++j) {
      EXPECT_EQ(rebuilt.get(i, j), full.get(i, j));
    }
  }
}

}  // namespace
}  // namespace eppi::core
