#include "mpc/arith.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "net/cluster.h"

namespace eppi::mpc {
namespace {

using eppi::net::Cluster;
using eppi::net::PartyContext;
using eppi::net::PartyId;
using eppi::secret::ModRing;

// Runs `body` as a c-party arithmetic session; every party gets the same
// session parameters.
void run_session(std::size_t c, std::uint64_t q,
                 const std::function<void(ArithSession&, std::size_t)>& body,
                 std::uint64_t seed = 1) {
  Cluster cluster(c, seed);
  cluster.run([&](PartyContext& ctx) {
    std::vector<PartyId> parties;
    for (std::size_t i = 0; i < c; ++i) {
      parties.push_back(static_cast<PartyId>(i));
    }
    ArithSession session(ctx, parties, ModRing(q));
    body(session, ctx.id());
  });
}

TEST(ArithSessionTest, InputAndOpenRoundTrip) {
  const std::vector<std::uint64_t> secrets{3, 141, 59, 0, 1023};
  run_session(3, 1024, [&](ArithSession& s, std::size_t) {
    const auto shares = s.input_vector(0, secrets, secrets.size());
    const auto opened = s.open_batch(shares);
    EXPECT_EQ(opened, secrets);
  });
}

TEST(ArithSessionTest, LinearOpsAreLocalAndCorrect) {
  run_session(2, 1 << 16, [&](ArithSession& s, std::size_t) {
    const std::vector<std::uint64_t> xs{100, 200};
    const auto shares = s.input_vector(0, xs, 2);
    const auto sum = s.add(shares[0], shares[1]);
    const auto diff = s.sub(shares[1], shares[0]);
    const auto scaled = s.scalar_mul(shares[0], 7);
    const auto bumped = s.add_public(shares[0], 11);
    const std::vector<ArithSession::Share> all{sum, diff, scaled, bumped};
    const auto opened = s.open_batch(all);
    EXPECT_EQ(opened[0], 300u);
    EXPECT_EQ(opened[1], 100u);
    EXPECT_EQ(opened[2], 700u);
    EXPECT_EQ(opened[3], 111u);
  });
}

TEST(ArithSessionTest, MultiplicationMatchesPlain) {
  eppi::Rng rng(5);
  constexpr std::uint64_t kQ = 1 << 20;
  std::vector<std::uint64_t> xs(16), ys(16);
  for (auto& x : xs) x = rng.next_below(kQ);
  for (auto& y : ys) y = rng.next_below(kQ);
  for (const std::size_t c : {2u, 3u, 5u}) {
    run_session(c, kQ, [&](ArithSession& s, std::size_t) {
      const auto sx = s.input_vector(0, xs, xs.size());
      const auto sy = s.input_vector(s.n_parties() > 1 ? 1 : 0, ys, ys.size());
      const auto products = s.mul_batch(sx, sy);
      const auto opened = s.open_batch(products);
      for (std::size_t j = 0; j < xs.size(); ++j) {
        const auto expected = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(xs[j]) * ys[j]) % kQ);
        EXPECT_EQ(opened[j], expected) << "j=" << j << " c=" << c;
      }
    });
  }
}

TEST(ArithSessionTest, InnerProductUnderSharing) {
  // sum_j x_j * y_j computed securely.
  const std::vector<std::uint64_t> xs{2, 3, 5, 7};
  const std::vector<std::uint64_t> ys{11, 13, 17, 19};
  run_session(3, 1 << 12, [&](ArithSession& s, std::size_t) {
    const auto sx = s.input_vector(0, xs, 4);
    const auto sy = s.input_vector(1, ys, 4);
    const auto products = s.mul_batch(sx, sy);
    ArithSession::Share acc;  // zero share
    for (const auto& p : products) acc = s.add(acc, p);
    EXPECT_EQ(s.open(acc), 2u * 11 + 3 * 13 + 5 * 17 + 7 * 19);
  });
}

TEST(ArithSessionTest, PolynomialEvaluation) {
  // f(x) = x^3 + 2x + 5 at a shared x.
  constexpr std::uint64_t kX = 9;
  run_session(2, 1 << 16, [&](ArithSession& s, std::size_t) {
    const std::vector<std::uint64_t> input{kX};
    const auto x = s.input_vector(0, input, 1)[0];
    const auto x2 = s.mul(x, x);
    const auto x3 = s.mul(x2, x);
    auto acc = s.add(x3, s.scalar_mul(x, 2));
    acc = s.add_public(acc, 5);
    EXPECT_EQ(s.open(acc), kX * kX * kX + 2 * kX + 5);
  });
}

TEST(ArithSessionTest, SharesAloneRevealNothing) {
  // A single party's share of a constant input is uniform across seeds.
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_session(
        3, 1 << 10,
        [&](ArithSession& s, std::size_t id) {
          const std::vector<std::uint64_t> secret{777};
          const auto shares = s.input_vector(0, secret, 1);
          if (id == 1) seen.insert(shares[0].reveal());
        },
        seed);
  }
  EXPECT_GT(seen.size(), 6u);
}

TEST(ArithSessionTest, Validates) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 const std::vector<PartyId> parties{0};
                 ArithSession session(ctx, parties, ModRing(16));
               }),
               eppi::ConfigError);
  Cluster cluster2(3);
  EXPECT_THROW(cluster2.run([&](PartyContext& ctx) {
                 if (ctx.id() != 2) return;
                 const std::vector<PartyId> parties{0, 1};
                 ArithSession session(ctx, parties, ModRing(16));
               }),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::mpc
