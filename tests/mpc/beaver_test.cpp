#include "mpc/beaver.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eppi::mpc {
namespace {

TEST(PackedBitsTest, SetGetRoundTrip) {
  std::vector<std::uint8_t> buf(packed_size(20), 0);
  set_packed_bit(buf, 0, true);
  set_packed_bit(buf, 7, true);
  set_packed_bit(buf, 8, true);
  set_packed_bit(buf, 19, true);
  EXPECT_TRUE(get_packed_bit(buf, 0));
  EXPECT_FALSE(get_packed_bit(buf, 1));
  EXPECT_TRUE(get_packed_bit(buf, 7));
  EXPECT_TRUE(get_packed_bit(buf, 8));
  EXPECT_TRUE(get_packed_bit(buf, 19));
  set_packed_bit(buf, 8, false);
  EXPECT_FALSE(get_packed_bit(buf, 8));
}

TEST(PackedBitsTest, PackedSize) {
  EXPECT_EQ(packed_size(0), 0u);
  EXPECT_EQ(packed_size(1), 1u);
  EXPECT_EQ(packed_size(8), 1u);
  EXPECT_EQ(packed_size(9), 2u);
}

class TripleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TripleSweep, TriplesSatisfyBeaverRelation) {
  const std::size_t n_parties = GetParam();
  eppi::Rng rng(n_parties);
  constexpr std::uint64_t kCount = 500;
  const auto shares = deal_triples(n_parties, kCount, rng);
  ASSERT_EQ(shares.size(), n_parties);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    bool a = false;
    bool b = false;
    bool c = false;
    // The test plays the dealer and every party, so opening is legitimate.
    for (const auto& s : shares) {
      a ^= s.a_bit(i).reveal();
      b ^= s.b_bit(i).reveal();
      c ^= s.c_bit(i).reveal();
    }
    ASSERT_EQ(c, a && b) << "triple " << i;
  }
}

TEST_P(TripleSweep, TripleBitsAreBalanced) {
  const std::size_t n_parties = GetParam();
  eppi::Rng rng(n_parties + 100);
  constexpr std::uint64_t kCount = 20000;
  const auto shares = deal_triples(n_parties, kCount, rng);
  std::uint64_t a_ones = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    bool a = false;
    for (const auto& s : shares) a ^= s.a_bit(i).reveal();
    a_ones += a ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(a_ones) / kCount, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Parties, TripleSweep, ::testing::Values(2, 3, 5, 8));

TEST(TripleTest, ZeroTriplesProduceEmptyShares) {
  eppi::Rng rng(1);
  const auto shares = deal_triples(3, 0, rng);
  ASSERT_EQ(shares.size(), 3u);
  for (const auto& s : shares) EXPECT_EQ(s.count, 0u);
}

}  // namespace
}  // namespace eppi::mpc
