#include "mpc/circuit_builder.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "mpc/plain_eval.h"

namespace eppi::mpc {
namespace {

// Builds a circuit with a single party owning `width` input bits, applies
// `body`, and evaluates it on `value`.
template <typename Body>
std::uint64_t eval_unary(unsigned width, std::uint64_t value, Body body) {
  CircuitBuilder cb;
  const WireVec in = cb.input_bits(0, width);
  cb.output_vec(body(cb, in));
  const Circuit circuit = cb.take();
  return bits_to_u64(evaluate_plain(circuit, u64_to_bits(value, width)));
}

template <typename Body>
std::uint64_t eval_binary(unsigned width, std::uint64_t a, std::uint64_t b,
                          Body body) {
  CircuitBuilder cb;
  const WireVec wa = cb.input_bits(0, width);
  const WireVec wb = cb.input_bits(0, width);
  cb.output_vec(body(cb, wa, wb));
  const Circuit circuit = cb.take();
  std::vector<bool> inputs = u64_to_bits(a, width);
  const auto bbits = u64_to_bits(b, width);
  inputs.insert(inputs.end(), bbits.begin(), bbits.end());
  return bits_to_u64(evaluate_plain(circuit, inputs));
}

TEST(BitWidthForTest, Values) {
  EXPECT_EQ(bit_width_for(0), 1u);
  EXPECT_EQ(bit_width_for(1), 1u);
  EXPECT_EQ(bit_width_for(2), 2u);
  EXPECT_EQ(bit_width_for(7), 3u);
  EXPECT_EQ(bit_width_for(8), 4u);
}

TEST(CircuitBuilderTest, ConstantsAreShared) {
  CircuitBuilder cb;
  const Wire z1 = cb.zero();
  const Wire z2 = cb.zero();
  const Wire o1 = cb.one();
  EXPECT_EQ(z1, z2);
  EXPECT_NE(z1, o1);
}

TEST(CircuitBuilderTest, ConstantFoldingEliminatesGates) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  // AND with constant 0 -> constant; no AND gate materialized.
  (void)cb.And(a, cb.zero());
  // XOR with constant 0 -> passthrough.
  EXPECT_EQ(cb.Xor(a, cb.zero()), a);
  // AND with constant 1 -> passthrough.
  EXPECT_EQ(cb.And(a, cb.one()), a);
  // a AND a -> a.
  EXPECT_EQ(cb.And(a, a), a);
  // a XOR a -> 0.
  EXPECT_EQ(cb.Xor(a, a), cb.zero());
  EXPECT_EQ(cb.stats().and_gates, 0u);
  EXPECT_EQ(cb.stats().xor_gates, 0u);
}

TEST(CircuitBuilderTest, NotOfConstantFolds) {
  CircuitBuilder cb;
  EXPECT_EQ(cb.Not(cb.zero()), cb.one());
  EXPECT_EQ(cb.Not(cb.one()), cb.zero());
  EXPECT_EQ(cb.stats().not_gates, 0u);
}

TEST(CircuitBuilderTest, GateStatsCountMaterializedGates) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(0);
  (void)cb.And(a, b);
  (void)cb.Xor(a, b);
  (void)cb.Not(a);
  EXPECT_EQ(cb.stats().and_gates, 1u);
  EXPECT_EQ(cb.stats().xor_gates, 1u);
  EXPECT_EQ(cb.stats().not_gates, 1u);
  EXPECT_EQ(cb.stats().input_wires, 2u);
  EXPECT_EQ(cb.stats().and_depth, 1u);
}

TEST(CircuitBuilderTest, AndDepthTracksChains) {
  CircuitBuilder cb;
  Wire acc = cb.input_bit(0);
  for (int i = 0; i < 5; ++i) acc = cb.And(acc, cb.input_bit(0));
  EXPECT_EQ(cb.stats().and_depth, 5u);
}

TEST(CircuitBuilderTest, SingleBitGateTruthTables) {
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      CircuitBuilder cb;
      const Wire wa = cb.input_bit(0);
      const Wire wb = cb.input_bit(0);
      cb.output(cb.Xor(wa, wb));
      cb.output(cb.And(wa, wb));
      cb.output(cb.Or(wa, wb));
      cb.output(cb.Not(wa));
      cb.output(cb.Mux(wa, wb, cb.zero()));  // a ? b : 0 == a & b
      const Circuit circuit = cb.take();
      const auto out = evaluate_plain(circuit, {a, b});
      EXPECT_EQ(out[0], a != b);
      EXPECT_EQ(out[1], a && b);
      EXPECT_EQ(out[2], a || b);
      EXPECT_EQ(out[3], !a);
      EXPECT_EQ(out[4], a && b);
    }
  }
}

class ArithmeticSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
 protected:
  static constexpr unsigned kWidth = 6;  // values in [0, 64)
};

TEST_P(ArithmeticSweep, AddTruncMatchesModularAdd) {
  const auto [a, b] = GetParam();
  const std::uint64_t got = eval_binary(
      kWidth, a, b,
      [](CircuitBuilder& cb, const WireVec& x, const WireVec& y) {
        return cb.add_trunc(x, y);
      });
  EXPECT_EQ(got, (a + b) % 64);
}

TEST_P(ArithmeticSweep, AddExpandMatchesFullAdd) {
  const auto [a, b] = GetParam();
  const std::uint64_t got = eval_binary(
      kWidth, a, b,
      [](CircuitBuilder& cb, const WireVec& x, const WireVec& y) {
        return cb.add_expand(x, y);
      });
  EXPECT_EQ(got, a + b);
}

TEST_P(ArithmeticSweep, ComparatorsMatch) {
  const auto [a, b] = GetParam();
  CircuitBuilder cb;
  const WireVec wa = cb.input_bits(0, kWidth);
  const WireVec wb = cb.input_bits(0, kWidth);
  cb.output(cb.lt(wa, wb));
  cb.output(cb.ge(wa, wb));
  const Circuit circuit = cb.take();
  std::vector<bool> inputs = u64_to_bits(a, kWidth);
  const auto bbits = u64_to_bits(b, kWidth);
  inputs.insert(inputs.end(), bbits.begin(), bbits.end());
  const auto out = evaluate_plain(circuit, inputs);
  EXPECT_EQ(out[0], a < b);
  EXPECT_EQ(out[1], a >= b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ArithmeticSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(0, 1, 7, 31, 32, 63),
                       ::testing::Values<std::uint64_t>(0, 1, 7, 31, 32, 63)));

TEST(CircuitBuilderTest, AddModGeneralModulus) {
  eppi::Rng rng(2024);
  for (const std::uint64_t q : {5ull, 7ull, 12ull, 100ull}) {
    const unsigned width = bit_width_for(q - 1);
    for (int trial = 0; trial < 30; ++trial) {
      const std::uint64_t a = rng.next_below(q);
      const std::uint64_t b = rng.next_below(q);
      const std::uint64_t got = eval_binary(
          width, a, b,
          [q](CircuitBuilder& cb, const WireVec& x, const WireVec& y) {
            return cb.add_mod(x, y, q);
          });
      EXPECT_EQ(got, (a + b) % q) << "q=" << q << " a=" << a << " b=" << b;
    }
  }
}

TEST(CircuitBuilderTest, AddModPowerOfTwoUsesNoComparator) {
  CircuitBuilder cb;
  const WireVec a = cb.input_bits(0, 3);
  const WireVec b = cb.input_bits(0, 3);
  cb.output_vec(cb.add_mod(a, b, 8));
  // A 3-bit truncated adder needs at most 2 ANDs per bit; the conditional-
  // subtract path would need far more.
  EXPECT_LE(cb.stats().and_gates, 6u);
}

TEST(CircuitBuilderTest, ConstantComparisonsFoldAggressively) {
  CircuitBuilder cb;
  const WireVec a = cb.input_bits(0, 8);
  (void)cb.ge_const(a, 0);  // always true -> fully folded
  EXPECT_EQ(cb.stats().and_gates, 0u);
}

TEST(CircuitBuilderTest, LtConstMatchesPlain) {
  for (const std::uint64_t t : {0ull, 1ull, 5ull, 8ull, 15ull, 16ull, 200ull}) {
    for (std::uint64_t v = 0; v < 16; ++v) {
      const std::uint64_t got = eval_unary(
          4, v, [t](CircuitBuilder& cb, const WireVec& x) {
            return WireVec{cb.lt_const(x, t)};
          });
      EXPECT_EQ(got, v < t ? 1u : 0u) << "v=" << v << " t=" << t;
    }
  }
}

TEST(CircuitBuilderTest, EqConstMatchesPlain) {
  for (const std::uint64_t t : {0ull, 3ull, 15ull, 16ull, 99ull}) {
    for (std::uint64_t v = 0; v < 16; ++v) {
      const std::uint64_t got = eval_unary(
          4, v, [t](CircuitBuilder& cb, const WireVec& x) {
            return WireVec{cb.eq_const(x, t)};
          });
      EXPECT_EQ(got, v == t ? 1u : 0u) << "v=" << v << " t=" << t;
    }
  }
}

TEST(CircuitBuilderTest, PopcountMatchesPlain) {
  eppi::Rng rng(55);
  for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 20u, 33u}) {
    CircuitBuilder cb;
    std::vector<Wire> bits;
    for (std::size_t i = 0; i < n; ++i) bits.push_back(cb.input_bit(0));
    cb.output_vec(cb.popcount(bits));
    const Circuit circuit = cb.take();
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> inputs(n);
      std::size_t expected = 0;
      for (std::size_t i = 0; i < n; ++i) {
        inputs[i] = rng.bernoulli(0.5);
        expected += inputs[i] ? 1 : 0;
      }
      EXPECT_EQ(bits_to_u64(evaluate_plain(circuit, inputs)), expected);
    }
  }
}

TEST(CircuitBuilderTest, SumTreeMatchesPlain) {
  eppi::Rng rng(66);
  CircuitBuilder cb;
  std::vector<WireVec> values;
  std::vector<bool> inputs;
  std::uint64_t expected = 0;
  for (int k = 0; k < 5; ++k) {
    values.push_back(cb.input_bits(0, 4));
    const std::uint64_t v = rng.next_below(16);
    const auto bits = u64_to_bits(v, 4);
    inputs.insert(inputs.end(), bits.begin(), bits.end());
    expected += v;
  }
  cb.output_vec(cb.sum_tree(values));
  const Circuit circuit = cb.take();
  EXPECT_EQ(bits_to_u64(evaluate_plain(circuit, inputs)), expected);
}

TEST(CircuitBuilderTest, MuxVecSelects) {
  CircuitBuilder cb;
  const Wire sel = cb.input_bit(0);
  const WireVec a = cb.input_bits(0, 3);
  const WireVec b = cb.input_bits(0, 3);
  cb.output_vec(cb.mux_vec(sel, a, b));
  const Circuit circuit = cb.take();
  for (const bool s : {false, true}) {
    std::vector<bool> inputs{s};
    const auto abits = u64_to_bits(5, 3);
    const auto bbits = u64_to_bits(2, 3);
    inputs.insert(inputs.end(), abits.begin(), abits.end());
    inputs.insert(inputs.end(), bbits.begin(), bbits.end());
    EXPECT_EQ(bits_to_u64(evaluate_plain(circuit, inputs)), s ? 5u : 2u);
  }
}

TEST(CircuitBuilderTest, ZextCannotNarrow) {
  CircuitBuilder cb;
  WireVec v = cb.input_bits(0, 4);
  EXPECT_THROW(cb.zext(v, 2), eppi::ConfigError);
}

TEST(CircuitBuilderTest, BadOutputWireRejected) {
  CircuitBuilder cb;
  EXPECT_THROW(cb.output(1234), eppi::ConfigError);
}

TEST(CircuitTest, InputsOfFiltersByOwner) {
  CircuitBuilder cb;
  const Wire a0 = cb.input_bit(0);
  const Wire b0 = cb.input_bit(1);
  const Wire a1 = cb.input_bit(0);
  cb.output(cb.Xor(cb.Xor(a0, b0), a1));
  const Circuit circuit = cb.take();
  EXPECT_EQ(circuit.inputs_of(0), (WireVec{a0, a1}));
  EXPECT_EQ(circuit.inputs_of(1), (WireVec{b0}));
  EXPECT_EQ(circuit.input_owner(b0), 1u);
  EXPECT_THROW(circuit.input_owner(circuit.outputs()[0]), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::mpc
