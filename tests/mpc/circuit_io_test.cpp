#include "mpc/circuit_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "mpc/circuit_builder.h"
#include "mpc/eppi_circuits.h"
#include "mpc/plain_eval.h"

namespace eppi::mpc {
namespace {

Circuit random_circuit(std::uint64_t seed, std::size_t n_inputs = 6,
                       int n_gates = 40) {
  eppi::Rng rng(seed);
  CircuitBuilder cb;
  std::vector<Wire> pool;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    pool.push_back(cb.input_bit(static_cast<std::uint32_t>(i % 2)));
  }
  for (int g = 0; g < n_gates; ++g) {
    const Wire a = pool[rng.next_below(pool.size())];
    const Wire b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(4)) {
      case 0:
        pool.push_back(cb.And(a, b));
        break;
      case 1:
        pool.push_back(cb.Xor(a, b));
        break;
      case 2:
        pool.push_back(cb.Not(a));
        break;
      default:
        pool.push_back(cb.Or(a, b));
        break;
    }
  }
  for (int o = 0; o < 4; ++o) cb.output(pool[pool.size() - 1 - o]);
  return cb.take();
}

TEST(CircuitIoTest, RoundTripPreservesStatsAndSemantics) {
  const Circuit original = random_circuit(11);
  std::stringstream ss;
  save_circuit(ss, original);
  const Circuit loaded = load_circuit(ss);
  EXPECT_EQ(loaded.stats().and_gates, original.stats().and_gates);
  EXPECT_EQ(loaded.stats().xor_gates, original.stats().xor_gates);
  EXPECT_EQ(loaded.stats().not_gates, original.stats().not_gates);
  EXPECT_EQ(loaded.stats().and_depth, original.stats().and_depth);
  EXPECT_EQ(loaded.inputs().size(), original.inputs().size());
  EXPECT_EQ(loaded.outputs().size(), original.outputs().size());

  eppi::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> inputs(original.inputs().size());
    for (auto&& b : inputs) b = rng.bernoulli(0.5);
    EXPECT_EQ(evaluate_plain(loaded, inputs),
              evaluate_plain(original, inputs));
  }
}

TEST(CircuitIoTest, RoundTripPreservesInputOwnership) {
  const Circuit original = random_circuit(12);
  std::stringstream ss;
  save_circuit(ss, original);
  const Circuit loaded = load_circuit(ss);
  EXPECT_EQ(loaded.inputs_of(0).size(), original.inputs_of(0).size());
  EXPECT_EQ(loaded.inputs_of(1).size(), original.inputs_of(1).size());
}

TEST(CircuitIoTest, RoundTripEppiCircuit) {
  CountBelowSpec spec;
  spec.c = 3;
  spec.q = 64;
  spec.thresholds = {10, 20, 30};
  spec.xi_ranks = {1, 2, 3};
  const Circuit original = build_count_below_circuit(spec);
  std::stringstream ss;
  save_circuit(ss, original);
  const Circuit loaded = load_circuit(ss);
  EXPECT_EQ(loaded.stats().total_gates(), original.stats().total_gates());
  eppi::Rng rng(4);
  std::vector<bool> inputs(original.inputs().size());
  for (auto&& b : inputs) b = rng.bernoulli(0.5);
  EXPECT_EQ(evaluate_plain(loaded, inputs), evaluate_plain(original, inputs));
}

TEST(CircuitIoTest, BadMagicRejected) {
  std::stringstream ss("garbage garbage garbage");
  EXPECT_THROW(load_circuit(ss), eppi::SerializeError);
}

TEST(CircuitIoTest, TruncatedPayloadRejected) {
  const Circuit original = random_circuit(13);
  std::stringstream ss;
  save_circuit(ss, original);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 5));
  EXPECT_THROW(load_circuit(truncated), eppi::SerializeError);
}

TEST(CircuitIoTest, EmptyStreamRejected) {
  std::stringstream ss;
  EXPECT_THROW(load_circuit(ss), eppi::SerializeError);
}

}  // namespace
}  // namespace eppi::mpc
