#include "mpc/eppi_circuits.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "mpc/circuit_builder.h"
#include "mpc/plain_eval.h"
#include "secret/additive_share.h"
#include "secret/mod_ring.h"

namespace eppi::mpc {
namespace {

// Splits per-identity frequencies into c share vectors and returns
// shares_per_party[i][j].
std::vector<std::vector<std::uint64_t>> share_out(
    const std::vector<std::uint64_t>& values, std::size_t c, std::uint64_t q,
    eppi::Rng& rng) {
  const eppi::secret::ModRing ring(q);
  std::vector<std::vector<std::uint64_t>> per_party(
      c, std::vector<std::uint64_t>(values.size()));
  for (std::size_t j = 0; j < values.size(); ++j) {
    const auto shares =
        eppi::secret::split_additive(values[j], c, ring, rng);
    // Opened immediately: this helper feeds the *plain* circuit evaluator,
    // which stands in for all c parties at once.
    for (std::size_t i = 0; i < c; ++i) per_party[i][j] = shares[i].reveal();
  }
  return per_party;
}

// Flattens shares into plain-eval input bits (party-major, as declared).
std::vector<bool> flatten_share_inputs(
    const std::vector<std::vector<std::uint64_t>>& per_party,
    unsigned width) {
  std::vector<bool> bits;
  for (const auto& vec : per_party) {
    for (const std::uint64_t s : vec) {
      for (unsigned b = 0; b < width; ++b) bits.push_back((s >> b) & 1);
    }
  }
  return bits;
}

TEST(CountBelowCircuitTest, MatchesPlainOnRandomInstances) {
  eppi::Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    CountBelowSpec spec;
    spec.c = 2 + trial % 3;
    spec.q = 32;
    const std::size_t n = 1 + rng.next_below(8);
    spec.thresholds.resize(n);
    std::vector<std::uint64_t> freqs(n);
    for (std::size_t j = 0; j < n; ++j) {
      spec.thresholds[j] = rng.next_below(20);
      freqs[j] = rng.next_below(20);
    }
    const auto per_party = share_out(freqs, spec.c, spec.q, rng);
    const Circuit circuit = build_count_below_circuit(spec);
    const auto bits = flatten_share_inputs(per_party, 5);
    const auto out_bits = evaluate_plain(circuit, bits);
    std::vector<bool> out_vec(out_bits.begin(), out_bits.end());
    const auto got = decode_count_below(spec, out_vec);
    const auto expected = plain_count_below(spec, per_party);
    EXPECT_EQ(got.common_count, expected.common_count) << "trial " << trial;
    // Plain count must equal the direct count on frequencies.
    std::uint64_t direct = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (freqs[j] >= spec.thresholds[j]) ++direct;
    }
    EXPECT_EQ(got.common_count, direct);
  }
}

TEST(CountBelowCircuitTest, XiRankSelectsMaxOverCommons) {
  eppi::Rng rng(405);
  CountBelowSpec spec;
  spec.c = 3;
  spec.q = 16;
  // freq/threshold: identities 0,2 common (ranks 3, 5); identity 1 not
  // (rank 7 must not leak into the max).
  spec.thresholds = {4, 10, 2};
  spec.xi_ranks = {3, 7, 5};
  const std::vector<std::uint64_t> freqs{6, 3, 2};
  const auto per_party = share_out(freqs, spec.c, spec.q, rng);
  const Circuit circuit = build_count_below_circuit(spec);
  const auto out_bits =
      evaluate_plain(circuit, flatten_share_inputs(per_party, 4));
  const auto got = decode_count_below(spec, out_bits);
  EXPECT_EQ(got.common_count, 2u);
  EXPECT_EQ(got.max_xi_rank, 5u);
  const auto expected = plain_count_below(spec, per_party);
  EXPECT_EQ(got.max_xi_rank, expected.max_xi_rank);
}

TEST(CountBelowCircuitTest, NoCommonsGivesRankZero) {
  eppi::Rng rng(406);
  CountBelowSpec spec;
  spec.c = 2;
  spec.q = 16;
  spec.thresholds = {10, 10};
  spec.xi_ranks = {1, 2};
  const std::vector<std::uint64_t> freqs{1, 2};
  const auto per_party = share_out(freqs, spec.c, spec.q, rng);
  const Circuit circuit = build_count_below_circuit(spec);
  const auto got = decode_count_below(
      spec, evaluate_plain(circuit, flatten_share_inputs(per_party, 4)));
  EXPECT_EQ(got.common_count, 0u);
  EXPECT_EQ(got.max_xi_rank, 0u);
}

TEST(CountBelowCircuitTest, RejectsBadSpecs) {
  CountBelowSpec spec;
  spec.c = 1;
  spec.q = 8;
  spec.thresholds = {1};
  EXPECT_THROW(build_count_below_circuit(spec), eppi::ConfigError);
  spec.c = 3;
  spec.q = 0;
  EXPECT_THROW(build_count_below_circuit(spec), eppi::ConfigError);
  spec.q = 8;
  spec.thresholds.clear();
  EXPECT_THROW(build_count_below_circuit(spec), eppi::ConfigError);
}

TEST(MixRevealCircuitTest, MatchesPlainReference) {
  eppi::Rng rng(500);
  MixRevealSpec spec;
  spec.c = 3;
  spec.q = 32;
  spec.thresholds = {8, 20, 1, 31};
  spec.lambda = 0.5;
  spec.coin_bits = 6;
  const std::vector<std::uint64_t> freqs{10, 3, 0, 15};
  const auto per_party = share_out(freqs, spec.c, spec.q, rng);
  // Per-party coin words.
  std::vector<std::vector<std::uint64_t>> coins(
      spec.c, std::vector<std::uint64_t>(freqs.size()));
  for (auto& vec : coins) {
    for (auto& w : vec) w = rng.next_below(1u << spec.coin_bits);
  }
  const Circuit circuit = build_mix_reveal_circuit(spec);
  std::vector<bool> bits = flatten_share_inputs(per_party, 5);
  // Coin inputs are declared party-major after the shares.
  for (const auto& vec : coins) {
    for (const std::uint64_t w : vec) {
      for (unsigned b = 0; b < spec.coin_bits; ++b) {
        bits.push_back((w >> b) & 1);
      }
    }
  }
  const auto got = decode_mix_reveal(spec, evaluate_plain(circuit, bits));
  const auto expected = plain_mix_reveal(spec, per_party, coins);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].mixed, expected[j].mixed) << "identity " << j;
    EXPECT_EQ(got[j].frequency, expected[j].frequency) << "identity " << j;
  }
}

TEST(MixRevealCircuitTest, CommonIdentityFrequencyIsHidden) {
  eppi::Rng rng(501);
  MixRevealSpec spec;
  spec.c = 2;
  spec.q = 16;
  spec.thresholds = {5};
  spec.lambda = 0.0;
  spec.coin_bits = 4;
  const std::vector<std::uint64_t> freqs{9};  // common (9 >= 5)
  const auto per_party = share_out(freqs, spec.c, spec.q, rng);
  std::vector<bool> bits = flatten_share_inputs(per_party, 4);
  for (std::size_t p = 0; p < spec.c; ++p) {
    for (unsigned b = 0; b < spec.coin_bits; ++b) bits.push_back(false);
  }
  const Circuit circuit = build_mix_reveal_circuit(spec);
  const auto got = decode_mix_reveal(spec, evaluate_plain(circuit, bits));
  EXPECT_TRUE(got[0].mixed);
  EXPECT_EQ(got[0].frequency, 0u);  // true frequency 9 never opened
}

TEST(MixRevealCircuitTest, LambdaOneMixesEverything) {
  eppi::Rng rng(502);
  MixRevealSpec spec;
  spec.c = 2;
  spec.q = 16;
  spec.thresholds = {15, 15};
  spec.lambda = 1.0;
  spec.coin_bits = 4;
  const std::vector<std::uint64_t> freqs{1, 2};  // both non-common
  const auto per_party = share_out(freqs, spec.c, spec.q, rng);
  std::vector<bool> bits = flatten_share_inputs(per_party, 4);
  for (std::size_t p = 0; p < spec.c; ++p) {
    for (std::size_t j = 0; j < freqs.size(); ++j) {
      for (unsigned b = 0; b < spec.coin_bits; ++b) {
        bits.push_back(rng.bernoulli(0.5));
      }
    }
  }
  const Circuit circuit = build_mix_reveal_circuit(spec);
  const auto got = decode_mix_reveal(spec, evaluate_plain(circuit, bits));
  EXPECT_TRUE(got[0].mixed);
  EXPECT_TRUE(got[1].mixed);
}

TEST(MixRevealCircuitTest, LambdaZeroRevealsNonCommons) {
  eppi::Rng rng(503);
  MixRevealSpec spec;
  spec.c = 2;
  spec.q = 16;
  spec.thresholds = {15};
  spec.lambda = 0.0;
  spec.coin_bits = 4;
  const std::vector<std::uint64_t> freqs{7};
  const auto per_party = share_out(freqs, spec.c, spec.q, rng);
  std::vector<bool> bits = flatten_share_inputs(per_party, 4);
  for (std::size_t p = 0; p < spec.c; ++p) {
    for (unsigned b = 0; b < spec.coin_bits; ++b) {
      bits.push_back(rng.bernoulli(0.5));
    }
  }
  const Circuit circuit = build_mix_reveal_circuit(spec);
  const auto got = decode_mix_reveal(spec, evaluate_plain(circuit, bits));
  EXPECT_FALSE(got[0].mixed);
  EXPECT_EQ(got[0].frequency, 7u);
}

TEST(PureMpcCircuitTest, MatchesDirectComputation) {
  eppi::Rng rng(600);
  PureMpcSpec spec;
  spec.m = 6;
  spec.thresholds = {3, 5, 1};
  spec.lambda = 0.0;
  spec.coin_bits = 4;
  // Membership bits per provider.
  std::vector<std::vector<bool>> membership(spec.m,
                                            std::vector<bool>(3, false));
  std::vector<std::uint64_t> freqs(3, 0);
  for (std::size_t i = 0; i < spec.m; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      membership[i][j] = rng.bernoulli(0.5);
      freqs[j] += membership[i][j] ? 1 : 0;
    }
  }
  const Circuit circuit = build_pure_mpc_circuit(spec);
  std::vector<bool> bits;
  for (std::size_t i = 0; i < spec.m; ++i) {
    bits.insert(bits.end(), membership[i].begin(), membership[i].end());
  }
  for (std::size_t i = 0; i < spec.m; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (unsigned b = 0; b < spec.coin_bits; ++b) bits.push_back(false);
    }
  }
  const auto got = decode_pure_mpc(spec, evaluate_plain(circuit, bits));
  std::uint64_t expected_count = 0;
  for (std::size_t j = 0; j < 3; ++j) {
    const bool common = freqs[j] >= spec.thresholds[j];
    if (common) ++expected_count;
    EXPECT_EQ(got.identities[j].mixed, common) << "identity " << j;
    EXPECT_EQ(got.identities[j].frequency, common ? 0 : freqs[j]);
  }
  EXPECT_EQ(got.common_count, expected_count);
}

TEST(PureMpcCircuitTest, CircuitSizeGrowsWithProviders) {
  PureMpcSpec small;
  small.m = 4;
  small.thresholds = {2};
  PureMpcSpec large = small;
  large.m = 32;
  const auto s = build_pure_mpc_circuit(small).stats();
  const auto l = build_pure_mpc_circuit(large).stats();
  EXPECT_GT(l.total_gates(), 4 * s.total_gates());
}

TEST(CountBelowCircuitTest, SizeIndependentOfProviderCount) {
  // The MPC-reduced design's point: the CountBelow circuit depends on c and
  // the ring width, not on m. Doubling the ring width (m 2x) grows the
  // circuit only logarithmically.
  CountBelowSpec spec;
  spec.c = 3;
  spec.q = 1 << 10;  // m ~ 1000
  spec.thresholds = std::vector<std::uint64_t>(16, 100);
  const auto small = build_count_below_circuit(spec).stats();
  spec.q = 1 << 20;  // m ~ 1,000,000
  const auto large = build_count_below_circuit(spec).stats();
  EXPECT_LT(large.total_gates(), 3 * small.total_gates());
}

}  // namespace
}  // namespace eppi::mpc
