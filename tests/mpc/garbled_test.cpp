#include "mpc/garbled.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "mpc/circuit_builder.h"
#include "mpc/gmw.h"
#include "mpc/plain_eval.h"
#include "net/cluster.h"

namespace eppi::mpc {
namespace {

using eppi::net::Cluster;
using eppi::net::PartyContext;

// Runs the two-party garbled protocol; returns garbler's outputs and checks
// both parties agree.
std::vector<bool> run_garbled(const Circuit& circuit,
                              const std::vector<bool>& garbler_inputs,
                              const std::vector<bool>& evaluator_inputs,
                              std::uint64_t seed = 1) {
  Cluster cluster(2, seed);
  std::vector<std::vector<bool>> outputs(2);
  cluster.run([&](PartyContext& ctx) {
    GarbledSession session;
    outputs[ctx.id()] = run_garbled_party(
        ctx, session, circuit,
        ctx.id() == 0 ? garbler_inputs : evaluator_inputs);
  });
  EXPECT_EQ(outputs[0], outputs[1]);
  return outputs[0];
}

TEST(GarbledTest, AndGateTruthTable) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(1);
  cb.output(cb.And(a, b));
  const Circuit circuit = cb.take();
  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto out = run_garbled(circuit, {va}, {vb});
      EXPECT_EQ(out[0], va && vb) << va << " & " << vb;
    }
  }
}

TEST(GarbledTest, XorNotAndConstants) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(1);
  cb.output(cb.Xor(a, b));
  cb.output(cb.Not(a));
  cb.output(cb.one());
  cb.output(cb.zero());
  cb.output(cb.Or(a, b));
  const Circuit circuit = cb.take();
  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto out = run_garbled(circuit, {va}, {vb});
      EXPECT_EQ(out[0], va != vb);
      EXPECT_EQ(out[1], !va);
      EXPECT_TRUE(out[2]);
      EXPECT_FALSE(out[3]);
      EXPECT_EQ(out[4], va || vb);
    }
  }
}

TEST(GarbledTest, AdderMatchesPlain) {
  CircuitBuilder cb;
  const WireVec a = cb.input_bits(0, 6);
  const WireVec b = cb.input_bits(1, 6);
  cb.output_vec(cb.add_expand(a, b));
  const Circuit circuit = cb.take();
  eppi::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t va = rng.next_below(64);
    const std::uint64_t vb = rng.next_below(64);
    const auto out = run_garbled(circuit, u64_to_bits(va, 6),
                                 u64_to_bits(vb, 6), trial + 1);
    EXPECT_EQ(bits_to_u64(out), va + vb);
  }
}

class GarbledEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(GarbledEquivalenceSweep, MatchesPlainOnRandomCircuits) {
  eppi::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 5);
  CircuitBuilder cb;
  std::vector<Wire> pool;
  std::vector<bool> g_inputs, e_inputs;
  for (int k = 0; k < 5; ++k) {
    pool.push_back(cb.input_bit(0));
    g_inputs.push_back(rng.bernoulli(0.5));
    pool.push_back(cb.input_bit(1));
    e_inputs.push_back(rng.bernoulli(0.5));
  }
  for (int g = 0; g < 50; ++g) {
    const Wire a = pool[rng.next_below(pool.size())];
    const Wire b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(4)) {
      case 0:
        pool.push_back(cb.And(a, b));
        break;
      case 1:
        pool.push_back(cb.Xor(a, b));
        break;
      case 2:
        pool.push_back(cb.Not(a));
        break;
      default:
        pool.push_back(cb.Mux(a, b, pool[rng.next_below(pool.size())]));
        break;
    }
  }
  for (int o = 0; o < 6; ++o) cb.output(pool[pool.size() - 1 - o]);
  const Circuit circuit = cb.take();

  // Plain inputs interleave in declaration order (g, e, g, e, ...).
  std::vector<bool> flat;
  for (std::size_t k = 0; k < g_inputs.size(); ++k) {
    flat.push_back(g_inputs[k]);
    flat.push_back(e_inputs[k]);
  }
  const auto expected = evaluate_plain(circuit, flat);
  const auto got = run_garbled(circuit, g_inputs, e_inputs, GetParam() + 1);
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbledEquivalenceSweep,
                         ::testing::Range(0, 10));

TEST(GarbledTest, AgreesWithGmwOnSameCircuit) {
  CircuitBuilder cb;
  const WireVec a = cb.input_bits(0, 5);
  const WireVec b = cb.input_bits(1, 5);
  cb.output(cb.lt(a, b));
  cb.output(cb.ge(a, b));
  const Circuit circuit = cb.take();
  eppi::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t va = rng.next_below(32);
    const std::uint64_t vb = rng.next_below(32);
    const auto garbled = run_garbled(circuit, u64_to_bits(va, 5),
                                     u64_to_bits(vb, 5), trial + 1);
    Cluster cluster(2, trial + 1);
    std::vector<bool> gmw_out;
    cluster.run([&](PartyContext& ctx) {
      GmwSession session;
      session.parties = {0, 1};
      auto out = run_gmw_party(
          ctx, session, circuit,
          ctx.id() == 0 ? u64_to_bits(va, 5) : u64_to_bits(vb, 5));
      if (ctx.id() == 0) gmw_out = std::move(out);
    });
    EXPECT_EQ(garbled, gmw_out) << va << " vs " << vb;
  }
}

TEST(GarbledTest, ConstantRoundsRegardlessOfDepth) {
  // A deep AND chain: GMW pays one round per level; Yao stays at 3.
  CircuitBuilder cb;
  Wire acc = cb.input_bit(0);
  for (int i = 0; i < 20; ++i) acc = cb.And(acc, cb.input_bit(1));
  cb.output(acc);
  const Circuit circuit = cb.take();
  ASSERT_EQ(circuit.stats().and_depth, 20u);

  Cluster cluster(2);
  cluster.run([&](PartyContext& ctx) {
    GarbledSession session;
    const std::vector<bool> inputs(ctx.id() == 0 ? 1 : 20, true);
    (void)run_garbled_party(ctx, session, circuit, inputs);
  });
  EXPECT_EQ(cluster.meter().snapshot().rounds, 3u);
}

TEST(GarbledTest, TableBytesMatchAndCount) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(1);
  cb.output(cb.And(cb.And(a, b), cb.Xor(a, b)));
  const Circuit circuit = cb.take();
  EXPECT_EQ(garbled_table_bytes(circuit),
            4u * 8u * circuit.stats().and_gates);
}

TEST(GarbledTest, RejectsThreePartyCircuits) {
  CircuitBuilder cb;
  cb.output(cb.And(cb.input_bit(0), cb.input_bit(2)));
  const Circuit circuit = cb.take();
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 GarbledSession session;
                 (void)run_garbled_party(ctx, session, circuit, {true});
               }),
               eppi::ConfigError);
}

TEST(GarbledTest, WrongInputCountThrows) {
  CircuitBuilder cb;
  cb.output(cb.And(cb.input_bit(0), cb.input_bit(1)));
  const Circuit circuit = cb.take();
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 GarbledSession session;
                 const std::vector<bool> too_many{true, false};
                 (void)run_garbled_party(ctx, session, circuit, too_many);
               }),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::mpc
