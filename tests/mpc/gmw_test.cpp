#include "mpc/gmw.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "mpc/circuit_builder.h"
#include "mpc/plain_eval.h"
#include "net/cluster.h"

namespace eppi::mpc {
namespace {

using eppi::net::Cluster;
using eppi::net::PartyContext;
using eppi::net::PartyId;

// Runs `circuit` under GMW with `n_parties` parties; inputs_by_party[i] are
// party i's input bits. Returns party 0's opened outputs (and checks all
// parties agree).
std::vector<bool> run_secure(const Circuit& circuit,
                             const std::vector<std::vector<bool>>& inputs,
                             std::uint64_t seed = 1) {
  const std::size_t n = inputs.size();
  Cluster cluster(n, seed);
  std::vector<std::vector<bool>> outputs(n);
  cluster.run([&](PartyContext& ctx) {
    GmwSession session;
    for (std::size_t i = 0; i < n; ++i) {
      session.parties.push_back(static_cast<PartyId>(i));
    }
    outputs[ctx.id()] =
        run_gmw_party(ctx, session, circuit, inputs[ctx.id()]);
  });
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(outputs[i], outputs[0]) << "party " << i << " disagrees";
  }
  return outputs[0];
}

TEST(GmwTest, TwoPartyAnd) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(1);
  cb.output(cb.And(a, b));
  const Circuit circuit = cb.take();
  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto out = run_secure(circuit, {{va}, {vb}});
      EXPECT_EQ(out[0], va && vb) << va << " & " << vb;
    }
  }
}

TEST(GmwTest, XorOnlyCircuitNeedsNoAndRounds) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(1);
  cb.output(cb.Xor(a, b));
  const Circuit circuit = cb.take();
  EXPECT_EQ(gmw_round_count(circuit), 3u);  // triples + inputs + outputs
  const auto out = run_secure(circuit, {{true}, {false}});
  EXPECT_TRUE(out[0]);
}

TEST(GmwTest, ConstantAndNotGates) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  (void)cb.input_bit(1);  // unused second-party input keeps both engaged
  cb.output(cb.Not(a));
  cb.output(cb.one());
  cb.output(cb.zero());
  const Circuit circuit = cb.take();
  const auto out = run_secure(circuit, {{false}, {true}});
  EXPECT_TRUE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_FALSE(out[2]);
}

// Randomized equivalence: GMW result must equal plain evaluation for random
// mixed circuits, across party counts.
class GmwEquivalenceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GmwEquivalenceSweep, MatchesPlainEvaluationOnRandomCircuits) {
  const std::size_t n_parties = GetParam();
  eppi::Rng rng(n_parties * 31 + 7);
  for (int trial = 0; trial < 5; ++trial) {
    CircuitBuilder cb;
    // Random pool of wires seeded by per-party inputs.
    std::vector<Wire> pool;
    std::vector<std::vector<bool>> inputs(n_parties);
    std::vector<bool> flat_inputs;
    for (std::size_t p = 0; p < n_parties; ++p) {
      for (int k = 0; k < 4; ++k) {
        pool.push_back(cb.input_bit(static_cast<std::uint32_t>(p)));
        const bool v = rng.bernoulli(0.5);
        inputs[p].push_back(v);
      }
    }
    // NOTE: plain evaluation consumes inputs in declaration order, which is
    // party-major here.
    for (std::size_t p = 0; p < n_parties; ++p) {
      flat_inputs.insert(flat_inputs.end(), inputs[p].begin(),
                         inputs[p].end());
    }
    for (int g = 0; g < 40; ++g) {
      const Wire a = pool[rng.next_below(pool.size())];
      const Wire b = pool[rng.next_below(pool.size())];
      switch (rng.next_below(4)) {
        case 0:
          pool.push_back(cb.And(a, b));
          break;
        case 1:
          pool.push_back(cb.Xor(a, b));
          break;
        case 2:
          pool.push_back(cb.Not(a));
          break;
        default:
          pool.push_back(cb.Or(a, b));
          break;
      }
    }
    for (int o = 0; o < 8; ++o) {
      cb.output(pool[pool.size() - 1 - o]);
    }
    const Circuit circuit = cb.take();
    const auto expected = evaluate_plain(circuit, flat_inputs);
    const auto got = run_secure(circuit, inputs, /*seed=*/trial + 1);
    EXPECT_EQ(got, expected) << "parties=" << n_parties << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Parties, GmwEquivalenceSweep,
                         ::testing::Values(2, 3, 4, 5));

TEST(GmwTest, MultiBitAdderAcrossParties) {
  // Party 0 and party 1 each contribute a 5-bit number; compute the sum.
  CircuitBuilder cb;
  const WireVec a = cb.input_bits(0, 5);
  const WireVec b = cb.input_bits(1, 5);
  cb.output_vec(cb.add_expand(a, b));
  const Circuit circuit = cb.take();
  eppi::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t va = rng.next_below(32);
    const std::uint64_t vb = rng.next_below(32);
    const auto out = run_secure(circuit, {u64_to_bits(va, 5), u64_to_bits(vb, 5)},
                                trial + 1);
    EXPECT_EQ(bits_to_u64(out), va + vb);
  }
}

TEST(GmwTest, RoundCountMatchesAndDepth) {
  CircuitBuilder cb;
  Wire acc = cb.input_bit(0);
  for (int i = 0; i < 4; ++i) acc = cb.And(acc, cb.input_bit(1));
  cb.output(acc);
  const Circuit circuit = cb.take();
  EXPECT_EQ(circuit.stats().and_depth, 4u);

  Cluster cluster(2);
  cluster.run([&](PartyContext& ctx) {
    GmwSession session;
    session.parties = {0, 1};
    const std::vector<bool> inputs(ctx.id() == 0 ? 1 : 4, true);
    (void)run_gmw_party(ctx, session, circuit, inputs);
  });
  EXPECT_EQ(cluster.meter().snapshot().rounds, gmw_round_count(circuit));
}

TEST(GmwTest, SubsetSessionInsideLargerCluster) {
  // 5-party cluster; only parties 2 and 4 run the MPC.
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(1);
  cb.output(cb.And(a, b));
  const Circuit circuit = cb.take();

  Cluster cluster(5);
  std::vector<bool> result;
  cluster.run([&](PartyContext& ctx) {
    if (ctx.id() != 2 && ctx.id() != 4) return;
    GmwSession session;
    session.parties = {2, 4};
    const std::vector<bool> inputs{true};
    auto out = run_gmw_party(ctx, session, circuit, inputs);
    if (ctx.id() == 2) result = std::move(out);
  });
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0]);
}

TEST(GmwTest, ConsecutiveSessionsWithDistinctSeqBases) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(1);
  cb.output(cb.And(a, b));
  const Circuit circuit = cb.take();

  Cluster cluster(2);
  std::vector<bool> first, second;
  cluster.run([&](PartyContext& ctx) {
    GmwSession s1;
    s1.parties = {0, 1};
    s1.seq_base = 0;
    GmwSession s2 = s1;
    s2.seq_base = GmwSession::kSeqStride;
    auto o1 = run_gmw_party(ctx, s1, circuit, {true});
    auto o2 = run_gmw_party(ctx, s2, circuit, {ctx.id() == 0});
    if (ctx.id() == 0) {
      first = std::move(o1);
      second = std::move(o2);
    }
  });
  EXPECT_TRUE(first[0]);    // 1 & 1
  EXPECT_FALSE(second[0]);  // 1 & 0
}

TEST(GmwTest, WrongInputCountThrows) {
  CircuitBuilder cb;
  cb.output(cb.And(cb.input_bit(0), cb.input_bit(1)));
  const Circuit circuit = cb.take();
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 GmwSession session;
                 session.parties = {0, 1};
                 const std::vector<bool> too_many{true, false};
                 (void)run_gmw_party(ctx, session, circuit, too_many);
               }),
               eppi::ConfigError);
}

TEST(GmwTest, NonMemberCallerRejected) {
  CircuitBuilder cb;
  cb.output(cb.And(cb.input_bit(0), cb.input_bit(1)));
  const Circuit circuit = cb.take();
  Cluster cluster(3);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 if (ctx.id() != 2) return;  // only the outsider calls in
                 GmwSession session;
                 session.parties = {0, 1};
                 (void)run_gmw_party(ctx, session, circuit, {true});
               }),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::mpc
