#include "mpc/optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mpc/circuit_builder.h"
#include "mpc/eppi_circuits.h"
#include "mpc/plain_eval.h"

namespace eppi::mpc {
namespace {

TEST(OptimizerTest, RemovesDeadGates) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(0);
  (void)cb.And(a, b);  // dead: never used as output
  cb.output(cb.Xor(a, b));
  const Circuit circuit = cb.take();
  const auto result = optimize_circuit(circuit);
  EXPECT_EQ(result.stats.dead_removed, 1u);
  EXPECT_EQ(result.circuit.stats().and_gates, 0u);
  EXPECT_EQ(result.circuit.stats().xor_gates, 1u);
}

TEST(OptimizerTest, KeepsAllInputsEvenIfUnused) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  (void)cb.input_bit(1);  // unused input must survive
  cb.output(a);
  const Circuit circuit = cb.take();
  const auto result = optimize_circuit(circuit);
  EXPECT_EQ(result.circuit.inputs().size(), 2u);
  EXPECT_EQ(result.circuit.inputs_of(1).size(), 1u);
}

TEST(OptimizerTest, MergesCommonSubexpressions) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(0);
  // Same AND built twice, once with swapped operands.
  const Wire x = cb.And(a, b);
  const Wire y = cb.And(b, a);
  cb.output(cb.Xor(x, y));
  const Circuit circuit = cb.take();
  ASSERT_EQ(circuit.stats().and_gates, 2u);  // builder doesn't CSE
  const auto result = optimize_circuit(circuit);
  EXPECT_EQ(result.stats.cse_merged, 1u);
  EXPECT_EQ(result.circuit.stats().and_gates, 1u);
  // x ^ x folds to constant 0 in the rebuild.
  EXPECT_EQ(result.circuit.stats().xor_gates, 0u);
}

TEST(OptimizerTest, CollapsesDoubleNegation) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  cb.output(cb.Not(cb.Not(a)));
  const Circuit circuit = cb.take();
  ASSERT_EQ(circuit.stats().not_gates, 2u);
  const auto result = optimize_circuit(circuit);
  EXPECT_EQ(result.stats.not_collapsed, 1u);
  EXPECT_EQ(result.circuit.stats().not_gates, 1u);
  // Semantics: identity.
  EXPECT_EQ(evaluate_plain(result.circuit, {true})[0], true);
  EXPECT_EQ(evaluate_plain(result.circuit, {false})[0], false);
}

// Property: optimization never changes the computed function.
class OptimizerEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalenceSweep, PreservesSemanticsOnRandomCircuits) {
  eppi::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  CircuitBuilder cb;
  std::vector<Wire> pool;
  constexpr std::size_t kInputs = 8;
  for (std::size_t i = 0; i < kInputs; ++i) {
    pool.push_back(cb.input_bit(0));
  }
  for (int g = 0; g < 60; ++g) {
    const Wire a = pool[rng.next_below(pool.size())];
    const Wire b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(4)) {
      case 0:
        pool.push_back(cb.And(a, b));
        break;
      case 1:
        pool.push_back(cb.Xor(a, b));
        break;
      case 2:
        pool.push_back(cb.Not(a));
        break;
      default:
        pool.push_back(cb.Or(a, b));
        break;
    }
  }
  for (int o = 0; o < 6; ++o) cb.output(pool[pool.size() - 1 - o]);
  const Circuit circuit = cb.take();
  const auto optimized = optimize_circuit(circuit);
  EXPECT_LE(optimized.circuit.stats().total_gates(),
            circuit.stats().total_gates());
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> inputs(kInputs);
    for (std::size_t i = 0; i < kInputs; ++i) inputs[i] = rng.bernoulli(0.5);
    EXPECT_EQ(evaluate_plain(optimized.circuit, inputs),
              evaluate_plain(circuit, inputs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceSweep,
                         ::testing::Range(0, 8));

TEST(OptimizerTest, ShrinksEppiCircuits) {
  CountBelowSpec spec;
  spec.c = 3;
  spec.q = 1 << 10;
  spec.thresholds = std::vector<std::uint64_t>(16, 100);
  spec.xi_ranks = std::vector<std::uint64_t>(16, 3);  // repeated ranks: CSE fodder
  const Circuit circuit = build_count_below_circuit(spec);
  const auto optimized = optimize_circuit(circuit);
  EXPECT_LT(optimized.circuit.stats().total_gates(),
            circuit.stats().total_gates());
  // Equivalence on a random share assignment.
  eppi::Rng rng(5);
  std::vector<bool> inputs(circuit.inputs().size());
  for (auto&& bit : inputs) bit = rng.bernoulli(0.5);
  EXPECT_EQ(evaluate_plain(optimized.circuit, inputs),
            evaluate_plain(circuit, inputs));
}

TEST(OptimizerTest, IdempotentOnOptimizedCircuit) {
  CircuitBuilder cb;
  const Wire a = cb.input_bit(0);
  const Wire b = cb.input_bit(0);
  cb.output(cb.And(a, b));
  const Circuit circuit = cb.take();
  const auto once = optimize_circuit(circuit);
  const auto twice = optimize_circuit(once.circuit);
  EXPECT_EQ(twice.stats.dead_removed, 0u);
  EXPECT_EQ(twice.stats.cse_merged, 0u);
  EXPECT_EQ(twice.circuit.stats().total_gates(),
            once.circuit.stats().total_gates());
}

}  // namespace
}  // namespace eppi::mpc
