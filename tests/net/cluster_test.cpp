#include "net/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.h"

namespace eppi::net {
namespace {

TEST(ClusterTest, RingPassAroundToken) {
  constexpr std::size_t kParties = 5;
  Cluster cluster(kParties);
  std::vector<std::uint8_t> received(kParties, 0);
  cluster.run([&](PartyContext& ctx) {
    const PartyId next = (ctx.id() + 1) % kParties;
    const PartyId prev = (ctx.id() + kParties - 1) % kParties;
    ctx.send(next, MessageTag::kUserBase, 0, {static_cast<std::uint8_t>(ctx.id())});
    const auto payload = ctx.recv(prev, MessageTag::kUserBase, 0);
    received[ctx.id()] = payload[0];
  });
  for (std::size_t i = 0; i < kParties; ++i) {
    EXPECT_EQ(received[i], (i + kParties - 1) % kParties);
  }
}

TEST(ClusterTest, MeterCountsMessagesAndBytes) {
  Cluster cluster(3);
  cluster.run([&](PartyContext& ctx) {
    if (ctx.id() == 0) {
      ctx.send(1, MessageTag::kUserBase, 0, {1, 2, 3});
      ctx.mark_round();
    } else if (ctx.id() == 1) {
      (void)ctx.recv(0, MessageTag::kUserBase, 0);
    }
  });
  const CostSnapshot cost = cluster.meter().snapshot();
  EXPECT_EQ(cost.messages, 1u);
  EXPECT_EQ(cost.bytes, 24u + 3u);
  EXPECT_EQ(cost.rounds, 1u);
}

TEST(ClusterTest, PartyExceptionPropagatesToCaller) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](PartyContext& ctx) {
                 if (ctx.id() == 1) {
                   throw eppi::ProtocolError("boom");
                 }
               }),
               eppi::ProtocolError);
}

TEST(ClusterTest, HeterogeneousBodies) {
  Cluster cluster(2);
  std::atomic<int> sum{0};
  std::vector<std::function<void(PartyContext&)>> bodies;
  bodies.emplace_back([&](PartyContext&) { sum += 1; });
  bodies.emplace_back([&](PartyContext&) { sum += 10; });
  cluster.run(bodies);
  EXPECT_EQ(sum.load(), 11);
}

TEST(ClusterTest, BodyCountMismatchThrows) {
  Cluster cluster(3);
  std::vector<std::function<void(PartyContext&)>> bodies(2,
                                                         [](PartyContext&) {});
  EXPECT_THROW(cluster.run(bodies), eppi::ConfigError);
}

TEST(ClusterTest, PartyRngStreamsAreDeterministicAcrossRuns) {
  std::vector<std::uint64_t> first(4), second(4);
  for (auto* out : {&first, &second}) {
    Cluster cluster(4, /*seed=*/77);
    cluster.run([&](PartyContext& ctx) {
      (*out)[ctx.id()] = ctx.rng().next();
    });
  }
  EXPECT_EQ(first, second);
  // And per-party streams differ from each other.
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_NE(first[0], first[i]);
  }
}

TEST(ClusterTest, RecvForTimesOutOnDroppedMessage) {
  Cluster cluster(2);
  DroppingTransport dropper(cluster.base_transport(), /*drop_every=*/1);
  cluster.set_transport(dropper);
  std::atomic<bool> timed_out{false};
  cluster.run([&](PartyContext& ctx) {
    if (ctx.id() == 0) {
      ctx.send(1, MessageTag::kUserBase, 0, {9});  // dropped
    } else {
      const auto result = ctx.recv_for(0, MessageTag::kUserBase, 0,
                                       std::chrono::milliseconds(50));
      timed_out = !result.has_value();
    }
  });
  EXPECT_TRUE(timed_out.load());
  EXPECT_EQ(dropper.dropped(), 1u);
}

TEST(ClusterTest, RecvForReturnsDeliveredMessage) {
  Cluster cluster(2);
  cluster.run([&](PartyContext& ctx) {
    if (ctx.id() == 0) {
      ctx.send(1, MessageTag::kUserBase, 3, {5});
    } else {
      const auto result = ctx.recv_for(0, MessageTag::kUserBase, 3,
                                       std::chrono::milliseconds(500));
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ((*result)[0], 5);
    }
  });
}

TEST(ClusterTest, ZeroPartiesRejected) {
  EXPECT_THROW(Cluster(0), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::net
