// CostMeter under concurrent recording (runs in the `ctest -L concurrency`
// binary, which CI also executes under TSan). Pins the documented contract:
// per-counter totals are exact after a join, snapshots taken concurrently
// with recorders are monotone per counter, and snapshot deltas (the quantity
// net::PhaseSpan attaches to phase spans) never go negative even when the
// snapshot races recording.
#include "net/cost_meter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace eppi::net {
namespace {

TEST(CostMeterConcurrencyTest, TotalsAreExactAfterJoin) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20000;
  CostMeter meter;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&meter, t] {
      for (std::size_t k = 0; k < kPerThread; ++k) {
        meter.record_message(t + 1);  // thread t adds t+1 bytes per message
      }
    });
  }
  for (auto& w : workers) w.join();
  meter.record_round(3);

  const CostSnapshot snap = meter.snapshot();
  EXPECT_EQ(snap.messages, kThreads * kPerThread);
  // Σ over threads of kPerThread * (t+1) = kPerThread * (1+2+3+4).
  EXPECT_EQ(snap.bytes, kPerThread * (1 + 2 + 3 + 4));
  EXPECT_EQ(snap.rounds, 3u);
}

TEST(CostMeterConcurrencyTest, ConcurrentSnapshotsAreMonotone) {
  CostMeter meter;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        meter.record_message(64);
        meter.record_round();
      }
    });
  }

  CostSnapshot prev = meter.snapshot();
  for (int k = 0; k < 2000; ++k) {
    const CostSnapshot now = meter.snapshot();
    // Each counter individually never runs backwards...
    EXPECT_GE(now.messages, prev.messages);
    EXPECT_GE(now.bytes, prev.bytes);
    EXPECT_GE(now.rounds, prev.rounds);
    // ...so the phase-delta arithmetic PhaseSpan performs is well defined
    // (no unsigned wrap-around from a "negative" delta). Note bytes and
    // messages may tear against each other mid-run — that is documented and
    // accepted — so only the per-counter deltas are pinned here.
    const CostSnapshot delta = now - prev;
    EXPECT_EQ(delta.messages, now.messages - prev.messages);
    EXPECT_EQ(delta.bytes, now.bytes - prev.bytes);
    prev = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  const CostSnapshot final_snap = meter.snapshot();
  EXPECT_EQ(final_snap.bytes, 64 * final_snap.messages);
  EXPECT_EQ(final_snap.rounds, final_snap.messages);
}

}  // namespace
}  // namespace eppi::net
