#include "net/cost_model.h"

#include <gtest/gtest.h>

namespace eppi::net {
namespace {

TEST(CostModelTest, ZeroWorkCostsOnlySetup) {
  const CostModel model;
  const double t = model.modeled_seconds(0, 0, {}, 3, 3);
  EXPECT_DOUBLE_EQ(t, 3 * model.costs().per_party_setup_s);
}

TEST(CostModelTest, MonotoneInEveryInput) {
  const CostModel model;
  const CostSnapshot comm{10, 1000, 5};
  const double base = model.modeled_seconds(100, 1000, comm, 3, 3);
  EXPECT_GT(model.modeled_seconds(200, 1000, comm, 3, 3), base);
  EXPECT_GT(model.modeled_seconds(100, 5000, comm, 3, 3), base);
  EXPECT_GT(model.modeled_seconds(100, 1000, {10, 99999, 5}, 3, 3), base);
  EXPECT_GT(model.modeled_seconds(100, 1000, {10, 1000, 50}, 3, 3), base);
  EXPECT_GT(model.modeled_seconds(100, 1000, comm, 9, 3), base);
}

TEST(CostModelTest, GateCostScalesWithMpcParties) {
  const CostModel model;
  const double at_ref = model.modeled_seconds(1000, 0, {}, 0, 3);
  const double at_nine = model.modeled_seconds(1000, 0, {}, 0, 9);
  EXPECT_NEAR(at_nine, 3.0 * at_ref, 1e-9);
  // Below the reference there is no discount.
  EXPECT_DOUBLE_EQ(model.modeled_seconds(1000, 0, {}, 0, 2), at_ref);
}

TEST(CostModelTest, AndGatesDominateXorGates) {
  const CostModel model;
  const double and_cost = model.modeled_seconds(1000, 0, {}, 0, 3);
  const double xor_cost = model.modeled_seconds(0, 1000, {}, 0, 3);
  EXPECT_GT(and_cost, 10.0 * xor_cost);
}

TEST(CostSnapshotTest, SubtractionGivesDeltas) {
  const CostSnapshot before{5, 100, 2};
  const CostSnapshot after{9, 350, 7};
  const CostSnapshot delta = after - before;
  EXPECT_EQ(delta.messages, 4u);
  EXPECT_EQ(delta.bytes, 250u);
  EXPECT_EQ(delta.rounds, 5u);
}

TEST(CostMeterTest, RecordAndReset) {
  CostMeter meter;
  meter.record_message(100);
  meter.record_message(50);
  meter.record_round(2);
  CostSnapshot snap = meter.snapshot();
  EXPECT_EQ(snap.messages, 2u);
  EXPECT_EQ(snap.bytes, 150u);
  EXPECT_EQ(snap.rounds, 2u);
  meter.reset();
  snap = meter.snapshot();
  EXPECT_EQ(snap.messages, 0u);
  EXPECT_EQ(snap.bytes, 0u);
  EXPECT_EQ(snap.rounds, 0u);
}

}  // namespace
}  // namespace eppi::net
