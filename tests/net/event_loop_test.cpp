// EventLoop reactor semantics: posted closures run on the loop thread in
// FIFO order, timers fire (periodic ones re-arm, cancelled ones don't), fd
// readiness dispatches to the registered callback, and stop() terminates
// promptly even when idle in epoll_wait.
#include "net/event_loop.h"

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace eppi::net {
namespace {

using namespace std::chrono_literals;

// Runs the loop on a helper thread for the test body's duration.
class LoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    runner_ = std::thread([this] { loop_.run(); });
  }
  void TearDown() override {
    loop_.stop();
    runner_.join();
  }
  EventLoop loop_;
  std::thread runner_;
};

TEST_F(LoopFixture, PostRunsOnLoopThreadInOrder) {
  std::atomic<bool> done{false};
  std::vector<int> order;
  bool on_loop = false;
  loop_.post([&] { order.push_back(1); });
  loop_.post([&] { order.push_back(2); });
  loop_.post([&] {
    order.push_back(3);
    on_loop = loop_.in_loop_thread();
    done = true;
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!done && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(done.load());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(on_loop);
  EXPECT_FALSE(loop_.in_loop_thread());  // we are not the loop thread
}

TEST_F(LoopFixture, OneShotTimerFiresOnce) {
  std::atomic<int> fired{0};
  loop_.post([&] { loop_.add_timer(5ms, 0ms, [&] { ++fired; }); });
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(LoopFixture, PeriodicTimerRepeatsUntilCancelled) {
  // The callback cancels its own timer on the third firing — exercising
  // self-cancellation, the trickiest re-arm path. Both captures are
  // heap-held so a late firing can never touch a dead stack frame.
  auto fired = std::make_shared<std::atomic<int>>(0);
  auto id = std::make_shared<EventLoop::TimerId>(0);
  loop_.post([this, fired, id] {
    *id = loop_.add_timer(2ms, 2ms, [this, fired, id] {
      if (++*fired == 3) loop_.cancel_timer(*id);
    });
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fired->load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fired->load(), 3);
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(fired->load(), 3);  // cancelled: no further firings
}

TEST_F(LoopFixture, CancelledTimerNeverFires) {
  std::atomic<int> fired{0};
  loop_.post([&] {
    const auto id = loop_.add_timer(20ms, 0ms, [&] { ++fired; });
    loop_.cancel_timer(id);
  });
  std::this_thread::sleep_for(80ms);
  EXPECT_EQ(fired.load(), 0);
}

TEST_F(LoopFixture, FdReadabilityDispatches) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<bool> readable{false};
  char got = 0;
  loop_.post([&] {
    loop_.add_fd(fds[0], EPOLLIN, [&](std::uint32_t events) {
      if (events & EPOLLIN) {
        ASSERT_EQ(::read(fds[0], &got, 1), 1);
        loop_.remove_fd(fds[0]);
        readable = true;
      }
    });
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!readable && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(readable.load());
  EXPECT_EQ(got, 'x');
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, StopWakesIdleLoop) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::this_thread::sleep_for(20ms);  // loop is idle in epoll_wait
  const auto start = std::chrono::steady_clock::now();
  loop.stop();
  runner.join();
  // A stop must not wait out the idle epoll timeout (1s).
  EXPECT_LT(std::chrono::steady_clock::now() - start, 900ms);
}

TEST(EventLoopTest, PostBeforeRunExecutesOnStart) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  loop.post([&] { ran = true; });
  std::thread runner([&] { loop.run(); });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!ran && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(ran.load());
  loop.stop();
  runner.join();
}

}  // namespace
}  // namespace eppi::net
