// Failure injection: protocols must fail cleanly (ProtocolError), not hang,
// when the transport drops messages — exercised through the cluster-level
// receive timeout and the DroppingTransport decorator.
#include <gtest/gtest.h>

#include <chrono>

#include "common/error.h"
#include "mpc/circuit_builder.h"
#include "mpc/gmw.h"
#include "net/cluster.h"
#include "secret/sec_sum_share.h"

namespace eppi::net {
namespace {

TEST(FailureInjectionTest, SecSumShareFailsCleanlyOnMessageLoss) {
  constexpr std::size_t kM = 5;
  std::vector<std::vector<std::uint8_t>> inputs(
      kM, std::vector<std::uint8_t>(2, 1));
  Cluster cluster(kM);
  cluster.set_recv_timeout(std::chrono::milliseconds(100));
  DroppingTransport dropper(cluster.base_transport(), /*drop_every=*/3);
  cluster.set_transport(dropper);
  const eppi::secret::SecSumShareParams params{3, 0, 2};
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 (void)eppi::secret::run_sec_sum_share_party(
                     ctx, params, inputs[ctx.id()]);
               }),
               eppi::ProtocolError);
  EXPECT_GT(dropper.dropped(), 0u);
}

TEST(FailureInjectionTest, GmwFailsCleanlyOnMessageLoss) {
  eppi::mpc::CircuitBuilder cb;
  const auto a = cb.input_bits(0, 4);
  const auto b = cb.input_bits(1, 4);
  cb.output_vec(cb.add_trunc(a, b));
  const eppi::mpc::Circuit circuit = cb.take();

  Cluster cluster(2);
  cluster.set_recv_timeout(std::chrono::milliseconds(100));
  DroppingTransport dropper(cluster.base_transport(), /*drop_every=*/4);
  cluster.set_transport(dropper);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 eppi::mpc::GmwSession session;
                 session.parties = {0, 1};
                 const std::vector<bool> inputs(4, true);
                 (void)eppi::mpc::run_gmw_party(ctx, session, circuit,
                                                inputs);
               }),
               eppi::ProtocolError);
}

TEST(FailureInjectionTest, LossFreeRunsSucceedWithTimeoutArmed) {
  // The timeout must be harmless when nothing is lost.
  constexpr std::size_t kM = 5;
  std::vector<std::vector<std::uint8_t>> inputs(
      kM, std::vector<std::uint8_t>(2, 1));
  Cluster cluster(kM);
  cluster.set_recv_timeout(std::chrono::milliseconds(2000));
  const eppi::secret::SecSumShareParams params{3, 0, 2};
  cluster.run([&](PartyContext& ctx) {
    (void)eppi::secret::run_sec_sum_share_party(ctx, params,
                                                inputs[ctx.id()]);
  });
  EXPECT_EQ(cluster.meter().snapshot().rounds, 2u);
}

TEST(FailureInjectionTest, CrashedPeerSurfacesAsTimeout) {
  // Party 1 "crashes" (returns immediately); party 0's recv must throw
  // rather than block forever.
  Cluster cluster(2);
  cluster.set_recv_timeout(std::chrono::milliseconds(50));
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 if (ctx.id() == 1) return;  // crash before sending
                 (void)ctx.recv(1, MessageTag::kUserBase, 0);
               }),
               eppi::ProtocolError);
}

}  // namespace
}  // namespace eppi::net
