// Fault-injection framework: scenario DSL parsing and the seeded
// FaultyTransport decorator (drop / duplicate / delay / crash semantics).
#include "net/fault.h"

#include <gtest/gtest.h>

#include <chrono>

#include "common/error.h"
#include "net/cluster.h"
#include "net/faulty_transport.h"

namespace eppi::net {
namespace {

using namespace std::chrono_literals;

Message data_msg(PartyId from, PartyId to, std::uint64_t seq,
                 std::uint32_t tag = MessageTag::kUserBase) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.tag = tag;
  msg.seq = seq;
  msg.payload = {static_cast<std::uint8_t>(seq & 0xff)};
  return msg;
}

TEST(FaultScenarioTest, ParsesFullDsl) {
  const auto scenario = FaultScenario::parse(
      "all: drop=0.1, dup=0.05, delay=1..5ms; link 2->0: drop=1.0; "
      "crash 3 after 4 sends; crash 1 at tag 2");
  EXPECT_DOUBLE_EQ(scenario.default_fault.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(scenario.default_fault.dup_prob, 0.05);
  EXPECT_EQ(scenario.default_fault.delay_min, 1000us);
  EXPECT_EQ(scenario.default_fault.delay_max, 5000us);

  EXPECT_DOUBLE_EQ(scenario.fault_for(2, 0).drop_prob, 1.0);
  // Unlisted links fall back to the default.
  EXPECT_DOUBLE_EQ(scenario.fault_for(0, 2).drop_prob, 0.1);

  ASSERT_EQ(scenario.crashes.count(3), 1u);
  EXPECT_EQ(scenario.crashes.at(3).after_sends, std::uint64_t{4});
  ASSERT_EQ(scenario.crashes.count(1), 1u);
  EXPECT_EQ(scenario.crashes.at(1).at_tag, std::uint32_t{2});
}

TEST(FaultScenarioTest, EmptySpecIsLossless) {
  const auto scenario = FaultScenario::parse("");
  EXPECT_TRUE(scenario.default_fault.lossless());
  EXPECT_TRUE(scenario.crashes.empty());
  EXPECT_TRUE(scenario.link_faults.empty());
  EXPECT_TRUE(scenario.churn.empty());
  EXPECT_EQ(scenario.last_churn_round(), 0u);
}

TEST(FaultScenarioTest, ParsesChurnStatements) {
  const auto scenario = FaultScenario::parse(
      "churn 2: join_at=3; churn 4: leave_at=2; churn 1: flap=2..5; "
      "all: drop=0.1");
  ASSERT_EQ(scenario.churn.size(), 3u);
  EXPECT_EQ(scenario.churn.at(2).join_at, std::uint64_t{3});
  EXPECT_FALSE(scenario.churn.at(2).leave_at.has_value());
  EXPECT_EQ(scenario.churn.at(4).leave_at, std::uint64_t{2});
  // flap = leave then rejoin.
  EXPECT_EQ(scenario.churn.at(1).leave_at, std::uint64_t{2});
  EXPECT_EQ(scenario.churn.at(1).join_at, std::uint64_t{5});

  // Round queries, ascending party order.
  EXPECT_EQ(scenario.leaves_at(2), (std::vector<PartyId>{1, 4}));
  EXPECT_EQ(scenario.joins_at(3), std::vector<PartyId>{2});
  EXPECT_TRUE(scenario.joins_at(2).empty());
  EXPECT_EQ(scenario.last_churn_round(), 5u);
  // Churn composes with transport faults in one spec.
  EXPECT_DOUBLE_EQ(scenario.default_fault.drop_prob, 0.1);
}

TEST(FaultScenarioTest, RejectsMalformedChurn) {
  // A flap that rejoins before it leaves is a contradiction, not churn.
  EXPECT_THROW(FaultScenario::parse("churn 1: flap=4..2"),
               eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("churn 1: flap=3"), eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("churn 1:"), eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("churn 1: join_at=0"),
               eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("churn 1: evaporate_at=2"),
               eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("churn x: join_at=2"),
               eppi::ConfigError);
}

TEST(FaultScenarioTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultScenario::parse("drop=0.1"), eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("all: flop=0.1"), eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("link 2: drop=1.0"), eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("crash x after 4 sends"),
               eppi::ConfigError);
  EXPECT_THROW(FaultScenario::parse("all: drop=nope"), eppi::ConfigError);
}

TEST(FaultyTransportTest, DropsAreDeterministicForFixedSeed) {
  const auto scenario = FaultScenario::parse("all: drop=0.3");
  constexpr std::size_t kSends = 200;
  const auto run_once = [&] {
    std::vector<Mailbox> boxes(2);
    CostMeter meter;
    InMemoryTransport inner(boxes, meter);
    FaultyTransport faulty(inner, scenario, /*seed=*/42);
    for (std::size_t i = 0; i < kSends; ++i) {
      faulty.send(data_msg(0, 1, i));
    }
    std::vector<bool> arrived(kSends);
    Message out;
    for (std::size_t i = 0; i < kSends; ++i) {
      arrived[i] = boxes[1].try_recv(0, MessageTag::kUserBase, i, out);
    }
    return std::make_pair(arrived, faulty.stats().dropped);
  };
  const auto [first, first_dropped] = run_once();
  const auto [second, second_dropped] = run_once();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_dropped, second_dropped);
  EXPECT_GT(first_dropped, 0u);
  EXPECT_LT(first_dropped, kSends);
}

TEST(FaultyTransportTest, LinksUseIndependentStreams) {
  // The same scenario must yield link-local decisions: inserting traffic on
  // one link does not change what another link drops.
  const auto scenario = FaultScenario::parse("all: drop=0.5");
  constexpr std::size_t kSends = 64;
  const auto deliveries_on_01 = [&](bool with_other_traffic) {
    std::vector<Mailbox> boxes(3);
    CostMeter meter;
    InMemoryTransport inner(boxes, meter);
    FaultyTransport faulty(inner, scenario, /*seed=*/7);
    for (std::size_t i = 0; i < kSends; ++i) {
      if (with_other_traffic) faulty.send(data_msg(2, 1, i));
      faulty.send(data_msg(0, 1, i));
    }
    std::vector<bool> arrived(kSends);
    Message out;
    for (std::size_t i = 0; i < kSends; ++i) {
      arrived[i] = boxes[1].try_recv(0, MessageTag::kUserBase, i, out);
    }
    return arrived;
  };
  EXPECT_EQ(deliveries_on_01(false), deliveries_on_01(true));
}

TEST(FaultyTransportTest, DuplicationDeliversTwiceWithoutReliability) {
  const auto scenario = FaultScenario::parse("all: dup=1.0");
  std::vector<Mailbox> boxes(2);
  CostMeter meter;
  InMemoryTransport inner(boxes, meter);
  FaultyTransport faulty(inner, scenario, 1);
  faulty.send(data_msg(0, 1, 9));
  Message out;
  EXPECT_TRUE(boxes[1].try_recv(0, MessageTag::kUserBase, 9, out));
  EXPECT_TRUE(boxes[1].try_recv(0, MessageTag::kUserBase, 9, out));
  EXPECT_FALSE(boxes[1].try_recv(0, MessageTag::kUserBase, 9, out));
  EXPECT_EQ(faulty.stats().duplicated, 1u);
}

TEST(FaultyTransportTest, DelayedMessagesFlushOnDrain) {
  const auto scenario = FaultScenario::parse("all: delay=50..50ms");
  std::vector<Mailbox> boxes(2);
  CostMeter meter;
  InMemoryTransport inner(boxes, meter);
  FaultyTransport faulty(inner, scenario, 1);
  faulty.send(data_msg(0, 1, 3));
  Message out;
  EXPECT_FALSE(boxes[1].try_recv(0, MessageTag::kUserBase, 3, out));
  EXPECT_EQ(faulty.stats().delayed, 1u);
  faulty.drain();  // releases held messages immediately
  EXPECT_TRUE(boxes[1].try_recv(0, MessageTag::kUserBase, 3, out));
}

TEST(FaultyTransportTest, CrashAfterSendsTripsOnNextSendThenSwallows) {
  const auto scenario = FaultScenario::parse("crash 0 after 3 sends");
  std::vector<Mailbox> boxes(2);
  CostMeter meter;
  InMemoryTransport inner(boxes, meter);
  FaultyTransport faulty(inner, scenario, 1);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_NO_THROW(faulty.send(data_msg(0, 1, i)));
  }
  EXPECT_FALSE(faulty.crashed(0));
  EXPECT_THROW(faulty.send(data_msg(0, 1, 3)), SimulatedCrash);
  EXPECT_TRUE(faulty.crashed(0));
  // Post-crash sends (e.g. retransmissions on its behalf) vanish silently.
  EXPECT_NO_THROW(faulty.send(data_msg(0, 1, 4)));
  Message out;
  EXPECT_FALSE(boxes[1].try_recv(0, MessageTag::kUserBase, 3, out));
  EXPECT_FALSE(boxes[1].try_recv(0, MessageTag::kUserBase, 4, out));
  EXPECT_EQ(faulty.stats().swallowed, 1u);
}

TEST(FaultyTransportTest, CrashAtTagTargetsProtocolStage) {
  const auto scenario = FaultScenario::parse("crash 0 at tag 2");
  std::vector<Mailbox> boxes(2);
  CostMeter meter;
  InMemoryTransport inner(boxes, meter);
  FaultyTransport faulty(inner, scenario, 1);
  EXPECT_NO_THROW(faulty.send(data_msg(0, 1, 0, MessageTag::kShareDistribute)));
  EXPECT_THROW(faulty.send(data_msg(0, 1, 0, MessageTag::kSuperShare)),
               SimulatedCrash);
}

TEST(FaultyTransportTest, ClusterRecordsCrashedPartyWithoutFailingRun) {
  Cluster cluster(2);
  cluster.inject_faults(FaultScenario::parse("crash 1 after 0 sends"));
  std::optional<std::vector<std::uint8_t>> got;
  cluster.run([&](PartyContext& ctx) {
    if (ctx.id() == 1) {
      ctx.send(0, MessageTag::kUserBase, 0, {1});  // trips the crash point
      return;
    }
    got = ctx.recv_for(1, MessageTag::kUserBase, 0,
                       std::chrono::milliseconds(100));
  });
  EXPECT_EQ(cluster.crashed(), std::vector<PartyId>{1});
  EXPECT_FALSE(got.has_value());
}

TEST(DroppingTransportTest, CountsOnlyDataFrames) {
  // The migrated alias fixes the old semantics: ack frames neither advance
  // the every-k counter nor are counted as drops.
  std::vector<Mailbox> boxes(2);
  CostMeter meter;
  InMemoryTransport inner(boxes, meter);
  DroppingTransport dropper(inner, /*drop_every=*/2);
  Message ack = data_msg(0, 1, 50);
  ack.tag |= kAckBit;
  dropper.send(data_msg(0, 1, 0));  // data #1: forwarded
  dropper.send(ack);                // ack: ignored by the counter
  dropper.send(data_msg(0, 1, 1));  // data #2: dropped
  dropper.send(data_msg(0, 1, 2));  // data #3: forwarded
  dropper.send(data_msg(0, 1, 3));  // data #4: dropped
  EXPECT_EQ(dropper.dropped(), 2u);
  Message out;
  EXPECT_TRUE(boxes[1].try_recv(0, MessageTag::kUserBase, 0, out));
  EXPECT_FALSE(boxes[1].try_recv(0, MessageTag::kUserBase, 1, out));
  EXPECT_TRUE(boxes[1].try_recv(0, MessageTag::kUserBase, 2, out));
  EXPECT_FALSE(boxes[1].try_recv(0, MessageTag::kUserBase, 3, out));
}

}  // namespace
}  // namespace eppi::net
