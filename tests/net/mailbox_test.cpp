#include "net/mailbox.h"

#include <gtest/gtest.h>

#include <thread>

namespace eppi::net {
namespace {

Message make(PartyId from, std::uint32_t tag, std::uint64_t seq,
             std::uint8_t byte) {
  Message m;
  m.from = from;
  m.to = 0;
  m.tag = tag;
  m.seq = seq;
  m.payload = {byte};
  return m;
}

TEST(MailboxTest, DeliverThenRecv) {
  Mailbox box;
  box.deliver(make(1, 7, 0, 0xAA));
  const Message got = box.recv(1, 7, 0);
  EXPECT_EQ(got.payload[0], 0xAA);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(MailboxTest, SelectiveRecvIgnoresOtherKeys) {
  Mailbox box;
  box.deliver(make(2, 7, 0, 0x01));
  box.deliver(make(1, 8, 0, 0x02));
  box.deliver(make(1, 7, 1, 0x03));
  box.deliver(make(1, 7, 0, 0x04));
  EXPECT_EQ(box.recv(1, 7, 0).payload[0], 0x04);
  EXPECT_EQ(box.pending(), 3u);
  EXPECT_EQ(box.recv(1, 7, 1).payload[0], 0x03);
  EXPECT_EQ(box.recv(1, 8, 0).payload[0], 0x02);
  EXPECT_EQ(box.recv(2, 7, 0).payload[0], 0x01);
}

TEST(MailboxTest, RecvBlocksUntilDelivery) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.deliver(make(3, 1, 5, 0x42));
  });
  const Message got = box.recv(3, 1, 5);  // must block, then succeed
  EXPECT_EQ(got.payload[0], 0x42);
  producer.join();
}

TEST(MailboxTest, TryRecvDoesNotBlock) {
  Mailbox box;
  Message out;
  EXPECT_FALSE(box.try_recv(1, 1, 1, out));
  box.deliver(make(1, 1, 1, 0x77));
  EXPECT_TRUE(box.try_recv(1, 1, 1, out));
  EXPECT_EQ(out.payload[0], 0x77);
  EXPECT_FALSE(box.try_recv(1, 1, 1, out));
}

TEST(MailboxTest, DuplicateKeysQueueInOrderOfArrival) {
  Mailbox box;
  box.deliver(make(1, 1, 0, 0x01));
  box.deliver(make(1, 1, 0, 0x02));
  EXPECT_EQ(box.pending(), 2u);
  // Multimap preserves insertion order per key.
  EXPECT_EQ(box.recv(1, 1, 0).payload[0], 0x01);
  EXPECT_EQ(box.recv(1, 1, 0).payload[0], 0x02);
}

TEST(MailboxTest, WireSizeCoversHeaderAndPayload) {
  const Message m = make(1, 1, 0, 0x00);
  EXPECT_EQ(m.wire_size(), 24u + 1u);
}

}  // namespace
}  // namespace eppi::net
