// MiniHttpServer under concurrent scrapes: parallel clients hitting
// /metrics, /healthz and /trace must each get a complete, well-formed
// response — no torn bodies, no cross-connection mixups. The CI TSan job
// runs this binary (`ctest -L concurrency`), certifying the handler path
// and the per-connection threads race-free.
#include "net/mini_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace eppi::net {
namespace {

// Blocking HTTP/1.1 GET against loopback; returns the raw response text.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(MiniHttpConcurrencyTest, ParallelScrapesGetCompleteResponses) {
  // Bodies chosen so truncation or interleaving is detectable: each path
  // returns a distinct repeated marker with a known terminator.
  const std::string metrics_body = [] {
    std::string s;
    for (int i = 0; i < 2000; ++i) s += "eppi_test_metric 1\n";
    return s + "# EOF\n";
  }();
  std::atomic<int> requests{0};
  MiniHttpServer server(0, [&](const HttpRequest& req) {
    requests.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    if (req.path == "/healthz") {
      resp.body = "ok\n";
    } else if (req.path == "/metrics") {
      resp.body = metrics_body;
    } else if (req.path == "/trace") {
      resp.content_type = "application/x-ndjson";
      std::string body;
      for (int i = 0; i < 500; ++i) {
        body += "{\"span\":" + std::to_string(i) + ",\"name\":\"t\"}\n";
      }
      resp.body = body;
    } else {
      resp.status = 404;
      resp.body = "not found\n";
    }
    return resp;
  });
  server.start();
  const std::uint16_t port = server.port();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int which = (t + i) % 3;
        const std::string path =
            which == 0 ? "/metrics" : which == 1 ? "/healthz" : "/trace";
        const std::string resp = http_get(port, path);
        if (resp.find("HTTP/1.1 200") != 0) {
          failures.fetch_add(1);
          continue;
        }
        const auto header_end = resp.find("\r\n\r\n");
        if (header_end == std::string::npos) {
          failures.fetch_add(1);
          continue;
        }
        const std::string body = resp.substr(header_end + 4);
        bool ok = true;
        if (which == 0) {
          ok = body == metrics_body;
        } else if (which == 1) {
          ok = body == "ok\n";
        } else {
          // Full JSONL: first line, last line, and line count all intact.
          ok = body.find("{\"span\":0,") == 0 &&
               body.find("{\"span\":499,") != std::string::npos &&
               std::count(body.begin(), body.end(), '\n') == 500;
        }
        if (!ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  server.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(requests.load(), kThreads * kPerThread);
}

TEST(MiniHttpConcurrencyTest, StopWithInFlightRequestsIsClean) {
  MiniHttpServer server(0, [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "slowish\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return resp;
  });
  server.start();
  const std::uint16_t port = server.port();
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([port] { (void)http_get(port, "/x"); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.stop();  // must join per-connection threads, not abandon them
  for (auto& c : clients) c.join();
  SUCCEED();
}

}  // namespace
}  // namespace eppi::net
