// Reliable delivery under injected faults: retransmission recovers from
// loss, duplicates are suppressed, and persistent silence turns into a typed
// PartyFailure at the deadline instead of a hang.
#include "net/reliable_transport.h"

#include <gtest/gtest.h>

#include <chrono>

#include "common/error.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "secret/sec_sum_share.h"

namespace eppi::net {
namespace {

using namespace std::chrono_literals;

ReliableOptions fast_reliability() {
  ReliableOptions options;
  options.rto = 2ms;
  options.max_rto = 20ms;
  options.deadline = 5000ms;
  return options;
}

TEST(ReliableTransportTest, RecoversFromHeavyLoss) {
  constexpr std::size_t kMessages = 50;
  Cluster cluster(2);
  cluster.set_recv_timeout(10000ms);
  cluster.inject_faults(FaultScenario::parse("all: drop=0.4"), /*seed=*/9);
  ReliableTransport& reliable =
      cluster.enable_reliability(fast_reliability());
  std::vector<std::uint8_t> received(kMessages, 0);
  cluster.run([&](PartyContext& ctx) {
    if (ctx.id() == 0) {
      for (std::size_t i = 0; i < kMessages; ++i) {
        ctx.send(1, MessageTag::kUserBase, i,
                 {static_cast<std::uint8_t>(i * 3)});
      }
    } else {
      for (std::size_t i = 0; i < kMessages; ++i) {
        received[i] = ctx.recv(0, MessageTag::kUserBase, i)[0];
      }
    }
  });
  for (std::size_t i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[i], static_cast<std::uint8_t>(i * 3)) << i;
  }
  const ReliableStats stats = reliable.stats();
  EXPECT_EQ(stats.sent, kMessages);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(stats.expired, 0u);
}

TEST(ReliableTransportTest, DeduplicatesDuplicatedFrames) {
  constexpr std::size_t kMessages = 20;
  Cluster cluster(2);
  cluster.set_recv_timeout(5000ms);
  cluster.inject_faults(FaultScenario::parse("all: dup=1.0"));
  cluster.enable_reliability(fast_reliability());
  std::size_t extras = 0;
  cluster.run([&](PartyContext& ctx) {
    if (ctx.id() == 0) {
      for (std::size_t i = 0; i < kMessages; ++i) {
        ctx.send(1, MessageTag::kUserBase, i, {7});
      }
    } else {
      for (std::size_t i = 0; i < kMessages; ++i) {
        (void)ctx.recv(0, MessageTag::kUserBase, i);
      }
      // Every frame was duplicated in flight; the mailbox must have
      // suppressed the copies.
      for (std::size_t i = 0; i < kMessages; ++i) {
        if (ctx.recv_for(0, MessageTag::kUserBase, i, 10ms)) ++extras;
      }
    }
  });
  EXPECT_EQ(extras, 0u);
}

TEST(ReliableTransportTest, DeadLinkExpiresAndSurfacesAsPartyFailure) {
  Cluster cluster(2);
  cluster.set_recv_timeout(500ms);
  cluster.inject_faults(FaultScenario::parse("link 0->1: drop=1.0"));
  ReliableOptions options = fast_reliability();
  options.deadline = 100ms;
  ReliableTransport& reliable = cluster.enable_reliability(options);
  try {
    cluster.run([&](PartyContext& ctx) {
      if (ctx.id() == 0) {
        ctx.send(1, MessageTag::kUserBase, 0, {1});
      } else {
        (void)ctx.recv(0, MessageTag::kUserBase, 0);
      }
    });
    FAIL() << "expected PartyFailure";
  } catch (const eppi::PartyFailure& failure) {
    EXPECT_EQ(failure.party(), PartyId{0});
  }
  EXPECT_GE(reliable.stats().expired, 1u);
}

TEST(ReliableTransportTest, SecSumShareSurvivesLossyLinks) {
  constexpr std::size_t kM = 5;
  constexpr std::size_t kN = 4;
  const std::vector<std::vector<std::uint8_t>> inputs{
      {1, 0, 1, 0}, {1, 1, 0, 0}, {1, 0, 0, 1}, {0, 0, 1, 0}, {1, 1, 0, 0}};
  const eppi::secret::SecSumShareParams params{3, 0, kN};
  const auto ring = eppi::secret::resolve_ring(params, kM);

  Cluster cluster(kM);
  cluster.set_recv_timeout(10000ms);
  cluster.inject_faults(FaultScenario::parse("all: drop=0.2"), /*seed=*/5);
  cluster.enable_reliability(fast_reliability());

  std::vector<std::vector<eppi::SecretU64>> views(params.c);
  cluster.run([&](PartyContext& ctx) {
    const auto result =
        eppi::secret::run_sec_sum_share_party(ctx, params, inputs[ctx.id()]);
    if (ctx.id() < params.c) views[ctx.id()] = *result;
  });

  // The test stands in for all coordinators, so opening is legitimate.
  const auto expected = eppi::secret::plain_frequency_sums(inputs, kN);
  for (std::size_t j = 0; j < kN; ++j) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < params.c; ++i) {
      sum = ring.add(sum, views[i][j].reveal());
    }
    EXPECT_EQ(sum, expected[j]) << "identity " << j;
  }
}

}  // namespace
}  // namespace eppi::net
