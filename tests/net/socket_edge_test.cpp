// SocketRuntime edge cases against a raw TCP peer: a disconnect mid-frame,
// an oversized frame header, a protocol-version mismatch, and an impostor
// party id must all be contained — the reader drops the offending
// connection, the runtime stays usable, and nothing hangs.
#include "net/socket_transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "common/error.h"
#include "net/wire.h"

namespace eppi::net {
namespace {

using namespace std::chrono_literals;

// Same free-range probing as socket_transport_test.cpp (separate TU).
std::uint16_t next_port_base() {
  static std::atomic<std::uint16_t> cursor{static_cast<std::uint16_t>(
      24000 + (::getpid() * 137) % 20000)};
  for (int attempts = 0; attempts < 200; ++attempts) {
    const std::uint16_t base = cursor.fetch_add(16);
    bool all_free = true;
    for (int k = 0; k < 16 && all_free; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        all_free = false;
        break;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + k));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        all_free = false;
      }
      ::close(fd);
    }
    if (all_free) return base;
  }
  throw eppi::ProtocolError("no free port range found for socket tests");
}

std::vector<Endpoint> loopback_mesh(std::size_t m, std::uint16_t base) {
  std::vector<Endpoint> endpoints(m);
  for (std::size_t i = 0; i < m; ++i) {
    endpoints[i].port = static_cast<std::uint16_t>(base + i);
  }
  return endpoints;
}

// Raw TCP client standing in for a (mis)behaving peer.
int connect_with_retry(std::uint16_t port) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() > deadline) {
      throw eppi::ProtocolError("raw peer: cannot reach runtime under test");
    }
    ::usleep(10000);
  }
}

void write_exact(int fd, const void* data, std::size_t len) {
  ASSERT_EQ(::write(fd, data, len), static_cast<ssize_t>(len));
}

// v2 handshake from the raw peer's side.
void send_hello(int fd, PartyId party, std::uint64_t session = 0x5e55,
                std::uint16_t version = wire::kProtocolVersion) {
  wire::Hello h;
  h.version = version;
  h.party = party;
  h.session = session;
  unsigned char buf[wire::kHelloBytes];
  wire::encode_hello(h, buf);
  write_exact(fd, buf, sizeof(buf));
}

std::vector<unsigned char> make_header(std::uint32_t from, std::uint32_t to,
                                       std::uint32_t tag, std::uint64_t seq,
                                       std::uint32_t len) {
  wire::FrameHeader h;
  h.from = from;
  h.to = to;
  h.tag = tag;
  h.seq = seq;
  h.len = len;
  std::vector<unsigned char> out(wire::kHeaderBytes);
  wire::encode_frame_header(h, out.data());
  return out;
}

// Drains the runtime's own Hello (it sends one immediately on accept) so a
// subsequent read observes connection fate, not leftover handshake bytes.
void drain_runtime_hello(int fd) {
  unsigned char buf[wire::kHelloBytes];
  std::size_t got = 0;
  while (got < sizeof(buf)) {
    const ssize_t n = ::read(fd, buf + got, sizeof(buf) - got);
    ASSERT_GT(n, 0) << "runtime closed before sending its hello";
    got += static_cast<std::size_t>(n);
  }
  const wire::Hello h = wire::decode_hello(buf);
  EXPECT_EQ(h.magic, wire::kMagic);
  EXPECT_EQ(h.version, wire::kProtocolVersion);
}

TEST(SocketEdgeTest, PeerDisconnectMidFrameIsContained) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  std::optional<bool> got_message;
  std::thread host([&] {
    SocketRuntime runtime(0, endpoints, 7);
    got_message = runtime.context()
                      .recv_for(1, MessageTag::kUserBase, 0, 500ms)
                      .has_value();
  });

  const int fd = connect_with_retry(endpoints[0].port);
  send_hello(fd, 1);  // valid handshake: mesh forms
  // Wait for the runtime's hello before closing: a close racing the
  // runtime's accept-side hello write would RST the connection and the
  // kernel would discard our (still unread) handshake with it.
  drain_runtime_hello(fd);
  // First 10 bytes of a 24-byte header, then vanish.
  const auto header = make_header(1, 0, MessageTag::kUserBase, 0, 4);
  write_exact(fd, header.data(), 10);
  ::close(fd);

  host.join();
  ASSERT_TRUE(got_message.has_value());
  EXPECT_FALSE(*got_message);  // truncated frame never delivered, no hang
}

TEST(SocketEdgeTest, OversizedFrameDropsConnectionNotRuntime) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  std::optional<std::vector<std::uint8_t>> first;
  std::optional<bool> second_arrived;
  std::thread host([&] {
    SocketRuntime runtime(0, endpoints, 7);
    first = runtime.context().recv_for(1, MessageTag::kUserBase, 0, 2000ms);
    second_arrived = runtime.context()
                         .recv_for(1, MessageTag::kUserBase, 1, 300ms)
                         .has_value();
  });

  const int fd = connect_with_retry(endpoints[0].port);
  send_hello(fd, 1);
  // A valid frame first: must be delivered.
  const auto ok = make_header(1, 0, MessageTag::kUserBase, 0, 2);
  write_exact(fd, ok.data(), ok.size());
  const unsigned char payload[2] = {0xab, 0xcd};
  write_exact(fd, payload, sizeof(payload));
  // Then a header claiming a > 1 GiB payload: the reader must drop the
  // connection (EPPI_WARN path) instead of allocating.
  const auto huge =
      make_header(1, 0, MessageTag::kUserBase, 1, wire::kMaxPayload + 1);
  write_exact(fd, huge.data(), huge.size());

  host.join();
  ::close(fd);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (std::vector<std::uint8_t>{0xab, 0xcd}));
  ASSERT_TRUE(second_arrived.has_value());
  EXPECT_FALSE(*second_arrived);  // connection was dropped, runtime survived
}

TEST(SocketEdgeTest, VersionMismatchRejectedThenCurrentPeerAccepted) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  std::optional<std::vector<std::uint8_t>> got;
  std::uint64_t rejects = 0;
  std::thread host([&] {
    SocketRuntime runtime(0, endpoints, 7);
    got = runtime.context().recv_for(1, MessageTag::kUserBase, 0, 5000ms);
    rejects = runtime.stats().handshake_rejects;
  });

  // A v1 speaker is refused: the runtime closes the connection without
  // counting it toward the mesh.
  const int stale = connect_with_retry(endpoints[0].port);
  send_hello(stale, 1, 0x5e55, /*version=*/1);
  drain_runtime_hello(stale);
  char probe;
  EXPECT_EQ(::read(stale, &probe, 1), 0);  // EOF: rejected
  ::close(stale);

  // The same party speaking v2 completes the mesh and delivers.
  const int fd = connect_with_retry(endpoints[0].port);
  send_hello(fd, 1);
  const auto ok = make_header(1, 0, MessageTag::kUserBase, 0, 1);
  write_exact(fd, ok.data(), ok.size());
  const unsigned char payload[1] = {0x7f};
  write_exact(fd, payload, sizeof(payload));

  host.join();
  ::close(fd);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{0x7f}));
  EXPECT_EQ(rejects, 1u);
}

TEST(SocketEdgeTest, ImpostorPartyIdLeavesMeshUnformed) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  std::atomic<bool> threw_protocol_error{false};
  std::thread host([&] {
    SocketRuntimeOptions options;
    options.rng_seed = 7;
    options.connect_timeout_ms = 700;  // don't wait the default 10s
    try {
      SocketRuntime runtime(0, endpoints, options);
    } catch (const eppi::ProtocolError&) {
      threw_protocol_error = true;
    }
  });

  // Claims to be the listener itself; an acceptor only admits higher ids.
  const int fd = connect_with_retry(endpoints[0].port);
  send_hello(fd, 0);

  host.join();
  ::close(fd);
  EXPECT_TRUE(threw_protocol_error);
}

TEST(SocketEdgeTest, BadSelfIdIsConfigError) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  EXPECT_THROW(SocketRuntime(2, endpoints, 7), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::net
