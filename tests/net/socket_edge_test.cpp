// SocketRuntime edge cases: a peer disconnecting mid-frame, an oversized
// frame header, and a malformed handshake must all be contained — the reader
// drops the connection, the runtime stays usable, and nothing hangs.
#include "net/socket_transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "common/error.h"

namespace eppi::net {
namespace {

using namespace std::chrono_literals;

// Same free-range probing as socket_transport_test.cpp (separate TU).
std::uint16_t next_port_base() {
  static std::atomic<std::uint16_t> cursor{static_cast<std::uint16_t>(
      24000 + (::getpid() * 137) % 20000)};
  for (int attempts = 0; attempts < 200; ++attempts) {
    const std::uint16_t base = cursor.fetch_add(16);
    bool all_free = true;
    for (int k = 0; k < 16 && all_free; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        all_free = false;
        break;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + k));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        all_free = false;
      }
      ::close(fd);
    }
    if (all_free) return base;
  }
  throw eppi::ProtocolError("no free port range found for socket tests");
}

std::vector<Endpoint> loopback_mesh(std::size_t m, std::uint16_t base) {
  std::vector<Endpoint> endpoints(m);
  for (std::size_t i = 0; i < m; ++i) {
    endpoints[i].port = static_cast<std::uint16_t>(base + i);
  }
  return endpoints;
}

// Raw TCP client standing in for a (mis)behaving peer.
int connect_with_retry(std::uint16_t port) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() > deadline) {
      throw eppi::ProtocolError("raw peer: cannot reach runtime under test");
    }
    ::usleep(10000);
  }
}

void write_exact(int fd, const void* data, std::size_t len) {
  ASSERT_EQ(::write(fd, data, len), static_cast<ssize_t>(len));
}

// Little-endian frame header matching SocketRuntime's wire format:
// [from u32, to u32, tag u32, seq u64, len u32].
std::vector<unsigned char> make_header(std::uint32_t from, std::uint32_t to,
                                       std::uint32_t tag, std::uint64_t seq,
                                       std::uint32_t len) {
  std::vector<unsigned char> out;
  const auto put32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  };
  put32(from);
  put32(to);
  put32(tag);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<unsigned char>(seq >> (8 * i)));
  put32(len);
  return out;
}

TEST(SocketEdgeTest, PeerDisconnectMidFrameIsContained) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  std::optional<bool> got_message;
  std::thread host([&] {
    SocketRuntime runtime(0, endpoints, 7);
    got_message = runtime.context()
                      .recv_for(1, MessageTag::kUserBase, 0, 500ms)
                      .has_value();
  });

  const int fd = connect_with_retry(endpoints[0].port);
  const std::uint32_t my_id = 1;
  write_exact(fd, &my_id, sizeof(my_id));  // valid handshake: mesh forms
  // First 10 bytes of a 24-byte header, then vanish.
  const auto header = make_header(1, 0, MessageTag::kUserBase, 0, 4);
  write_exact(fd, header.data(), 10);
  ::close(fd);

  host.join();
  ASSERT_TRUE(got_message.has_value());
  EXPECT_FALSE(*got_message);  // truncated frame never delivered, no hang
}

TEST(SocketEdgeTest, OversizedFrameDropsConnectionNotRuntime) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  std::optional<std::vector<std::uint8_t>> first;
  std::optional<bool> second_arrived;
  std::thread host([&] {
    SocketRuntime runtime(0, endpoints, 7);
    first = runtime.context().recv_for(1, MessageTag::kUserBase, 0, 2000ms);
    second_arrived = runtime.context()
                         .recv_for(1, MessageTag::kUserBase, 1, 300ms)
                         .has_value();
  });

  const int fd = connect_with_retry(endpoints[0].port);
  const std::uint32_t my_id = 1;
  write_exact(fd, &my_id, sizeof(my_id));
  // A valid frame first: must be delivered.
  const auto ok = make_header(1, 0, MessageTag::kUserBase, 0, 2);
  write_exact(fd, ok.data(), ok.size());
  const unsigned char payload[2] = {0xab, 0xcd};
  write_exact(fd, payload, sizeof(payload));
  // Then a header claiming a > 1 GiB payload: the reader must drop the
  // connection (EPPI_WARN path) instead of allocating.
  const auto huge =
      make_header(1, 0, MessageTag::kUserBase, 1, (1u << 30) + 1);
  write_exact(fd, huge.data(), huge.size());

  host.join();
  ::close(fd);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (std::vector<std::uint8_t>{0xab, 0xcd}));
  ASSERT_TRUE(second_arrived.has_value());
  EXPECT_FALSE(*second_arrived);  // connection was dropped, runtime survived
}

TEST(SocketEdgeTest, BadHandshakeRejectsMesh) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  std::atomic<bool> threw_protocol_error{false};
  std::thread host([&] {
    try {
      SocketRuntime runtime(0, endpoints, 7);
    } catch (const eppi::ProtocolError&) {
      threw_protocol_error = true;
    }
  });

  const int fd = connect_with_retry(endpoints[0].port);
  const std::uint32_t impostor = 0;  // claims to be the listener itself
  write_exact(fd, &impostor, sizeof(impostor));

  host.join();
  ::close(fd);
  EXPECT_TRUE(threw_protocol_error);
}

}  // namespace
}  // namespace eppi::net
