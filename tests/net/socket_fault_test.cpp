// TCP-level fault matrix for the socket runtime, driven through the
// ChaosProxy: connection resets mid-stream must be healed by reconnect +
// session resumption without duplicate delivery; heartbeat timeouts must
// declare a silent peer failed exactly once; shaped links (split writes,
// throttling, probabilistic delay) must not corrupt framing; a blackholed
// link must fail mesh formation cleanly; and killing one provider process
// mid-construction must leave the survivors committing a degraded epoch,
// with the restarted party rejoining via reconnect/session-resume.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/beta_policy.h"
#include "core/construction_party.h"
#include "core/distributed_constructor.h"
#include "net/chaos_proxy.h"
#include "net/fault.h"
#include "net/socket_transport.h"
#include "net/wire.h"

namespace eppi::net {
namespace {

using namespace std::chrono_literals;

// Same free-range probing as the other socket test TUs.
std::uint16_t next_port_base() {
  static std::atomic<std::uint16_t> cursor{static_cast<std::uint16_t>(
      26000 + (::getpid() * 211) % 18000)};
  for (int attempts = 0; attempts < 200; ++attempts) {
    const std::uint16_t base = cursor.fetch_add(16);
    bool all_free = true;
    for (int k = 0; k < 16 && all_free; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        all_free = false;
        break;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + k));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        all_free = false;
      }
      ::close(fd);
    }
    if (all_free) return base;
  }
  throw eppi::ProtocolError("no free port range found for socket fault tests");
}

int connect_raw(std::uint16_t port) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    if (fd >= 0) ::close(fd);
    if (std::chrono::steady_clock::now() > deadline) {
      throw eppi::ProtocolError("raw peer: cannot reach runtime under test");
    }
    ::usleep(10000);
  }
}

// Two-party mesh where party 1 reaches party 0 only through a chaos proxy:
// peers dial the advertised proxy port, the process binds the real one.
struct ProxiedPair {
  std::vector<Endpoint> endpoints;  // [0] advertises the proxy port
  std::uint16_t real_port0 = 0;
  std::unique_ptr<ChaosProxy> proxy;

  explicit ProxiedPair(const std::string& scenario, std::uint64_t seed = 11) {
    const std::uint16_t base = next_port_base();
    real_port0 = base;
    const std::uint16_t proxy_port = static_cast<std::uint16_t>(base + 1);
    endpoints = {{.port = proxy_port}, {.port = static_cast<std::uint16_t>(base + 2)}};
    proxy = std::make_unique<ChaosProxy>(
        std::vector<ProxyRoute>{{.listen_port = proxy_port,
                                 .target_port = real_port0,
                                 .target_party = 0}},
        FaultScenario::parse(scenario), seed);
    proxy->start();
  }
};

TEST(SocketFaultTest, ReconnectAfterResetResumesWithoutDuplicates) {
  // Every relayed connection from party 1 to party 0 is hard-reset after
  // 4 KiB; reliable delivery must carry the sequence space across the
  // reconnects so all frames arrive exactly once.
  ProxiedPair net("link 1->0: reset_after=4096");

  constexpr std::size_t kMessages = 80;
  constexpr std::size_t kPayload = 128;

  SocketRuntimeOptions opt0;
  opt0.rng_seed = 5;
  opt0.listen_port_override = net.real_port0;
  opt0.reliable = true;
  SocketRuntimeOptions opt1;
  opt1.rng_seed = 6;
  opt1.reliable = true;
  opt1.reconnect_min = 10ms;

  std::vector<std::optional<std::vector<std::uint8_t>>> got(kMessages);
  std::uint64_t pending_at_end = 1;
  std::thread receiver([&] {
    SocketRuntime runtime(0, net.endpoints, opt0);
    for (std::size_t q = 0; q < kMessages; ++q) {
      got[q] = runtime.context().recv_for(1, MessageTag::kUserBase, q, 10000ms);
    }
    // Give straggling retransmits a beat, then confirm dedup left nothing.
    std::this_thread::sleep_for(100ms);
    pending_at_end = runtime.inbox().pending();
  });

  SocketRuntime sender(1, net.endpoints, opt1);
  for (std::size_t q = 0; q < kMessages; ++q) {
    std::vector<std::uint8_t> payload(kPayload,
                                      static_cast<std::uint8_t>(q & 0xff));
    sender.context().send(0, MessageTag::kUserBase, q, std::move(payload));
  }
  receiver.join();

  for (std::size_t q = 0; q < kMessages; ++q) {
    ASSERT_TRUE(got[q].has_value()) << "message " << q << " lost";
    ASSERT_EQ(got[q]->size(), kPayload) << q;
    EXPECT_EQ((*got[q])[0], static_cast<std::uint8_t>(q & 0xff)) << q;
  }
  EXPECT_EQ(pending_at_end, 0u);  // duplicates suppressed, nothing stranded
  // The stream (~12 KiB) cannot fit in one 4 KiB-reset connection.
  EXPECT_GE(sender.stats().reconnects, 1u);
  EXPECT_GE(net.proxy->stats().resets, 1u);
  net.proxy->stop();
}

TEST(SocketFaultTest, HeartbeatTimeoutMarksPeerFailedExactlyOnce) {
  const std::uint16_t base = next_port_base();
  const std::vector<Endpoint> endpoints{
      {.port = base}, {.port = static_cast<std::uint16_t>(base + 1)}};

  SocketRuntimeOptions opt;
  opt.rng_seed = 9;
  opt.heartbeat_interval = 40ms;
  opt.heartbeat_timeout = 250ms;

  std::atomic<int> down_calls{0};
  std::atomic<bool> recv_failed{false};
  std::thread host([&] {
    SocketRuntime runtime(0, endpoints, opt);
    runtime.set_peer_down_callback([&](PartyId) { ++down_calls; });
    // A blocked receive must be cut short by the failure declaration.
    try {
      (void)runtime.context().recv(1, MessageTag::kUserBase, 0);
    } catch (const eppi::PartyFailure&) {
      recv_failed = true;
    }
    // Linger well past several more heartbeat periods: the declaration must
    // not repeat while the peer stays dead.
    std::this_thread::sleep_for(600ms);
    EXPECT_EQ(runtime.stats().heartbeat_timeouts, 1u);
    EXPECT_FALSE(runtime.peer_up(1));
  });

  // A raw peer completes the v2 handshake, then goes silent: it answers no
  // pings, so only the heartbeat timeout can unstick the runtime.
  const int fd = connect_raw(endpoints[0].port);
  wire::Hello hello;
  hello.party = 1;
  hello.session = 0xfeed;
  unsigned char buf[wire::kHelloBytes];
  wire::encode_hello(hello, buf);
  ASSERT_EQ(::write(fd, buf, sizeof(buf)), static_cast<ssize_t>(sizeof(buf)));

  host.join();
  ::close(fd);
  EXPECT_TRUE(recv_failed.load());
  EXPECT_EQ(down_calls.load(), 1);
}

TEST(SocketFaultTest, ShapedLinkDeliversIntactFrames) {
  // Split writes re-chunk every frame boundary; throttle paces the reverse
  // path; probabilistic delay jitters both. Framing must reassemble exactly.
  ProxiedPair net(
      "link 1->0: split=96, delay=1..2ms; link 0->1: throttle=400000");

  constexpr std::size_t kMessages = 25;
  SocketRuntimeOptions opt0;
  opt0.rng_seed = 5;
  opt0.listen_port_override = net.real_port0;
  SocketRuntimeOptions opt1;
  opt1.rng_seed = 6;

  std::vector<std::optional<std::vector<std::uint8_t>>> got(kMessages);
  std::thread party0([&] {
    SocketRuntime runtime(0, net.endpoints, opt0);
    for (std::size_t q = 0; q < kMessages; ++q) {
      got[q] = runtime.context().recv_for(1, MessageTag::kUserBase, q, 10000ms);
      // Echo back through the throttled direction.
      if (got[q]) {
        runtime.context().send(1, MessageTag::kUserBase + 1, q, *got[q]);
      }
    }
  });

  SocketRuntime party1(1, net.endpoints, opt1);
  for (std::size_t q = 0; q < kMessages; ++q) {
    std::vector<std::uint8_t> payload(200 + q);
    for (std::size_t b = 0; b < payload.size(); ++b) {
      payload[b] = static_cast<std::uint8_t>((q * 31 + b) & 0xff);
    }
    party1.context().send(0, MessageTag::kUserBase, q, payload);
  }
  for (std::size_t q = 0; q < kMessages; ++q) {
    const auto echo =
        party1.context().recv_for(0, MessageTag::kUserBase + 1, q, 10000ms);
    ASSERT_TRUE(echo.has_value()) << "echo " << q;
    ASSERT_EQ(echo->size(), 200 + q) << q;
    for (std::size_t b = 0; b < echo->size(); ++b) {
      ASSERT_EQ((*echo)[b], static_cast<std::uint8_t>((q * 31 + b) & 0xff))
          << "byte " << b << " of echo " << q;
    }
  }
  party0.join();
  EXPECT_GT(net.proxy->stats().bytes_forwarded, 0u);
  net.proxy->stop();
}

TEST(SocketFaultTest, BlackholedLinkFailsMeshFormationCleanly) {
  ProxiedPair net("all: blackhole=1");
  SocketRuntimeOptions opt0;
  opt0.rng_seed = 5;
  opt0.listen_port_override = net.real_port0;
  opt0.connect_timeout_ms = 800;
  SocketRuntimeOptions opt1;
  opt1.rng_seed = 6;
  opt1.connect_timeout_ms = 800;

  // Party 0 never sees party 1's hello (swallowed by the proxy) and party 1
  // never sees party 0's: both sides must give up with a typed error rather
  // than hang.
  std::atomic<int> throws{0};
  std::thread party0([&] {
    try {
      SocketRuntime runtime(0, net.endpoints, opt0);
    } catch (const eppi::ProtocolError&) {
      ++throws;
    }
  });
  std::thread party1([&] {
    try {
      SocketRuntime runtime(1, net.endpoints, opt1);
    } catch (const eppi::ProtocolError&) {
      ++throws;
    }
  });
  party0.join();
  party1.join();
  EXPECT_EQ(throws.load(), 2);
  EXPECT_GT(net.proxy->stats().blackholed_bytes, 0u);
  net.proxy->stop();
}

// --- kill one provider process mid-construction ----------------------------

constexpr std::size_t kM = 4;
constexpr std::size_t kN = 5;
const std::vector<std::vector<std::uint8_t>> kRows{
    {1, 1, 0, 0, 1}, {1, 0, 1, 0, 0}, {1, 1, 0, 1, 0}, {1, 0, 0, 0, 1}};
const std::vector<double> kEpsilons{0.5, 0.4, 0.6, 0.3, 0.5};

TEST(SocketFaultTest, KillPartyMidConstructionSurvivorsDegradeAndRejoin) {
  const std::uint16_t base = next_port_base();
  std::vector<Endpoint> endpoints(kM);
  for (std::size_t i = 0; i < kM; ++i) {
    endpoints[i].port = static_cast<std::uint16_t>(base + i);
  }

  const auto runtime_options = [](std::size_t i) {
    SocketRuntimeOptions opt;
    opt.rng_seed = 100 + i;
    opt.reliable = true;
    opt.heartbeat_interval = 50ms;
    opt.heartbeat_timeout = 400ms;
    opt.recv_timeout = 4000ms;
    return opt;
  };

  // Mesh formation blocks until every link is up, so all four runtimes come
  // up concurrently.
  std::vector<std::unique_ptr<SocketRuntime>> runtimes(kM);
  {
    std::vector<std::thread> boot;
    for (std::size_t i = 0; i < kM; ++i) {
      boot.emplace_back([&, i] {
        runtimes[i] = std::make_unique<SocketRuntime>(
            static_cast<PartyId>(i), endpoints, runtime_options(i));
      });
    }
    for (auto& t : boot) t.join();
  }
  for (std::size_t i = 0; i < kM; ++i) ASSERT_NE(runtimes[i], nullptr);

  eppi::core::DistributedOptions options;
  options.policy = eppi::core::BetaPolicy::basic();
  options.c = 2;
  options.seed = 31;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.reliable_delivery = true;
  options.fault_tolerance.stage_timeout = 250ms;
  options.fault_tolerance.mpc_timeout = 3000ms;
  options.fault_tolerance.max_attempts = 3;

  // Parties 0..2 run the construction; party 3 is killed mid-construction
  // (its process shuts every socket, as SIGKILL would) before it sends its
  // first share.
  std::vector<std::optional<eppi::core::ConstructionPartyResult>> results(3);
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      results[i] = eppi::core::run_construction_party(
          runtimes[i]->context(), kRows[i], kEpsilons, options);
    });
  }
  std::this_thread::sleep_for(150ms);
  runtimes[3]->shutdown();
  for (auto& t : workers) t.join();

  const std::vector<PartyId> expected_survivors{0, 1, 2};
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(results[i].has_value()) << "party " << i;
    EXPECT_EQ(results[i]->survivors, expected_survivors) << "party " << i;
    EXPECT_EQ(results[i]->betas.size(), kN) << "party " << i;
    EXPECT_EQ(results[i]->published_row.size(), kN) << "party " << i;
  }
  // β is public and must agree across the surviving parties.
  EXPECT_EQ(results[0]->betas, results[1]->betas);
  EXPECT_EQ(results[0]->betas, results[2]->betas);

  // The restarted party (fresh process ⇒ fresh session nonce) rejoins the
  // mesh through the survivors' acceptors.
  const auto old_session = runtimes[3]->session_nonce();
  runtimes[3].reset();
  runtimes[3] = std::make_unique<SocketRuntime>(static_cast<PartyId>(3),
                                                endpoints, runtime_options(3));
  EXPECT_NE(runtimes[3]->session_nonce(), old_session);

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (std::size_t i = 0; i < 3; ++i) {
    while (!runtimes[i]->peer_up(3) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(5ms);
    }
    EXPECT_TRUE(runtimes[i]->peer_up(3)) << "party " << i;
    EXPECT_GE(runtimes[i]->stats().peer_restarts, 1u) << "party " << i;
    // The failure declaration was cleared: receives block normally again.
    EXPECT_FALSE(runtimes[i]->inbox().party_failed(3)) << "party " << i;
  }

  for (auto& r : runtimes) {
    if (r) r->shutdown();
  }
}

}  // namespace
}  // namespace eppi::net
