// Wire context propagation (protocol v3): a message sent while a span is
// open must materialize, on the receiving runtime, a net.recv event
// parented to the *sender's* span — the cross-process edge distributed
// trace merging is built on. Runs two real SocketRuntimes over loopback.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/socket_transport.h"
#include "obs/trace.h"

namespace eppi::net {
namespace {

std::uint16_t free_port_base() {
  static std::atomic<std::uint16_t> cursor{static_cast<std::uint16_t>(
      24000 + (::getpid() * 149) % 18000)};
  for (int attempts = 0; attempts < 200; ++attempts) {
    const std::uint16_t base = cursor.fetch_add(4);
    bool all_free = true;
    for (int k = 0; k < 2 && all_free; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return base;  // can't probe; let bind report it
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + k));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        all_free = false;
      }
      ::close(fd);
    }
    if (all_free) return base;
  }
  return 24000;
}

const obs::SpanAttr* find_attr(const obs::SpanEvent& ev,
                               std::string_view key) {
  for (std::uint32_t i = 0; i < ev.n_attrs; ++i) {
    if (std::string_view(ev.attrs[i].key,
                         ::strnlen(ev.attrs[i].key, obs::SpanAttr::kKeyCap)) ==
        key) {
      return &ev.attrs[i];
    }
  }
  return nullptr;
}

TEST(SocketTraceTest, RecvSpanParentsToRemoteSenderSpan) {
  (void)obs::default_sink().drain();  // start from a clean watermark

  const std::uint16_t base = free_port_base();
  std::vector<Endpoint> endpoints(2);
  endpoints[0].port = base;
  endpoints[1].port = static_cast<std::uint16_t>(base + 1);

  std::uint64_t sender_span = 0;
  std::uint64_t sender_trace = 0;
  const std::uint64_t before_send = monotonic_ns();
  std::thread receiver([&] {
    SocketRuntime runtime(1, endpoints, 11);
    auto& ctx = runtime.context();
    const auto got = ctx.recv(0, MessageTag::kUserBase, 7);
    EXPECT_EQ(got.size(), 3u);
    runtime.shutdown();
  });
  {
    SocketRuntime runtime(0, endpoints, 10);
    auto& ctx = runtime.context();
    {
      obs::Span span("phase:unit");
      sender_span = span.id();
      sender_trace = span.context().trace_id;
      ctx.send(1, MessageTag::kUserBase, 7, {1, 2, 3});
      receiver.join();  // receipt confirmed while the span is still open
    }
    runtime.shutdown();
  }

  const auto events = obs::default_sink().drain();
  const obs::SpanEvent* recv = nullptr;
  for (const auto& ev : events) {
    if (ev.name_view() == "net.recv" && ev.parent_id == sender_span) {
      recv = &ev;
    }
  }
  ASSERT_NE(recv, nullptr)
      << "no net.recv parented to the sending span among " << events.size()
      << " events";
  EXPECT_EQ(recv->trace_id, sender_trace);
  EXPECT_NE(recv->span_id, sender_span);

  const obs::SpanAttr* from = find_attr(*recv, "from");
  ASSERT_NE(from, nullptr);
  EXPECT_EQ(from->value.u64, 0u);
  const obs::SpanAttr* bytes = find_attr(*recv, "bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->value.u64, 3u);
  const obs::SpanAttr* send_ns = find_attr(*recv, "send_ns");
  ASSERT_NE(send_ns, nullptr);
  // The sender's clock at encode time: after the test started, before now.
  EXPECT_GE(send_ns->value.u64, before_send);
  EXPECT_LE(send_ns->value.u64, monotonic_ns());
  const obs::SpanAttr* rt = find_attr(*recv, "rt");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->value.u64, 0u);
}

TEST(SocketTraceTest, UntracedSendsProduceNoRecvSpan) {
  (void)obs::default_sink().drain();

  const std::uint16_t base = free_port_base();
  std::vector<Endpoint> endpoints(2);
  endpoints[0].port = base;
  endpoints[1].port = static_cast<std::uint16_t>(base + 1);

  std::thread receiver([&] {
    SocketRuntime runtime(1, endpoints, 21);
    auto& ctx = runtime.context();
    (void)ctx.recv(0, MessageTag::kUserBase, 9);
    runtime.shutdown();
  });
  {
    SocketRuntime runtime(0, endpoints, 20);
    auto& ctx = runtime.context();
    // No span open: the frame must travel without the v3 extension.
    ctx.send(1, MessageTag::kUserBase, 9, {42});
    receiver.join();
    runtime.shutdown();
  }

  for (const auto& ev : obs::default_sink().drain()) {
    EXPECT_NE(ev.name_view(), "net.recv");
  }
}

}  // namespace
}  // namespace eppi::net
