// Real-TCP runtime tests: the same protocol bodies that run on the
// in-process cluster must run unchanged over loopback sockets (one runtime
// per thread here; one per process in deployment).
#include "net/socket_transport.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "core/construction_party.h"
#include "core/publisher.h"
#include "mpc/circuit_builder.h"
#include "mpc/gmw.h"
#include "mpc/plain_eval.h"
#include "secret/sec_sum_share.h"

namespace eppi::net {
namespace {

// Finds a base such that [base, base+16) are all bindable right now; walks
// forward from a pid-salted start to dodge occupied ranges in shared CI
// environments.
std::uint16_t next_port_base() {
  static std::atomic<std::uint16_t> cursor{static_cast<std::uint16_t>(
      20000 + (::getpid() * 131) % 20000)};
  for (int attempts = 0; attempts < 200; ++attempts) {
    const std::uint16_t base = cursor.fetch_add(16);
    bool all_free = true;
    for (int k = 0; k < 16 && all_free; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        all_free = false;
        break;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + k));
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        all_free = false;
      }
      ::close(fd);
    }
    if (all_free) return base;
  }
  throw eppi::ProtocolError("no free port range found for socket tests");
}

std::vector<Endpoint> loopback_mesh(std::size_t m, std::uint16_t base) {
  std::vector<Endpoint> endpoints(m);
  for (std::size_t i = 0; i < m; ++i) {
    endpoints[i].port = static_cast<std::uint16_t>(base + i);
  }
  return endpoints;
}

// Runs `body` as m socket-backed parties (thread per party).
void run_over_sockets(
    std::size_t m, std::uint16_t base,
    const std::function<void(PartyContext&, std::size_t)>& body) {
  const auto endpoints = loopback_mesh(m, base);
  std::vector<std::thread> threads;
  std::exception_ptr error;
  std::mutex error_mutex;
  for (std::size_t i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      try {
        SocketRuntime runtime(static_cast<PartyId>(i), endpoints, 7);
        body(runtime.context(), i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

TEST(SocketTransportTest, PingPongAcrossTcp) {
  std::vector<std::uint8_t> received(3, 0);
  run_over_sockets(3, next_port_base(), [&](PartyContext& ctx, std::size_t i) {
    const PartyId next = static_cast<PartyId>((i + 1) % 3);
    const PartyId prev = static_cast<PartyId>((i + 2) % 3);
    ctx.send(next, MessageTag::kUserBase, 0,
             {static_cast<std::uint8_t>(10 + i)});
    received[i] = ctx.recv(prev, MessageTag::kUserBase, 0)[0];
  });
  EXPECT_EQ(received[0], 12);
  EXPECT_EQ(received[1], 10);
  EXPECT_EQ(received[2], 11);
}

TEST(SocketTransportTest, LargePayloadsSurviveFraming) {
  run_over_sockets(2, next_port_base(), [&](PartyContext& ctx, std::size_t i) {
    if (i == 0) {
      std::vector<std::uint8_t> big(1 << 20);
      for (std::size_t k = 0; k < big.size(); ++k) {
        big[k] = static_cast<std::uint8_t>(k * 31);
      }
      ctx.send(1, MessageTag::kUserBase, 5, big);
    } else {
      const auto got = ctx.recv(0, MessageTag::kUserBase, 5);
      ASSERT_EQ(got.size(), std::size_t{1} << 20);
      EXPECT_EQ(got[12345], static_cast<std::uint8_t>(12345 * 31));
    }
  });
}

TEST(SocketTransportTest, SecSumShareOverTcp) {
  constexpr std::size_t kM = 4;
  constexpr std::size_t kN = 6;
  std::vector<std::vector<std::uint8_t>> inputs{
      {1, 0, 1, 0, 1, 0}, {1, 1, 0, 0, 0, 0},
      {1, 0, 0, 1, 0, 0}, {1, 0, 0, 0, 0, 1}};
  const eppi::secret::SecSumShareParams params{2, 0, kN};
  const auto ring = eppi::secret::resolve_ring(params, kM);
  std::vector<std::vector<eppi::SecretU64>> views(2);
  run_over_sockets(kM, next_port_base(), [&](PartyContext& ctx, std::size_t i) {
    const auto result =
        eppi::secret::run_sec_sum_share_party(ctx, params, inputs[i]);
    if (i < 2) views[i] = *result;
  });
  // Both coordinators' views are opened by the test to check the total.
  const std::vector<std::uint64_t> expected{4, 1, 1, 1, 1, 1};
  for (std::size_t j = 0; j < kN; ++j) {
    EXPECT_EQ(ring.add(views[0][j].reveal(), views[1][j].reveal()),
              expected[j]);
  }
}

TEST(SocketTransportTest, GmwOverTcp) {
  eppi::mpc::CircuitBuilder cb;
  const auto a = cb.input_bits(0, 4);
  const auto b = cb.input_bits(1, 4);
  cb.output_vec(cb.add_expand(a, b));
  const auto circuit = cb.take();
  std::vector<std::vector<bool>> outputs(2);
  run_over_sockets(2, next_port_base(), [&](PartyContext& ctx, std::size_t i) {
    eppi::mpc::GmwSession session;
    session.parties = {0, 1};
    outputs[i] = eppi::mpc::run_gmw_party(
        ctx, session, circuit,
        eppi::mpc::u64_to_bits(i == 0 ? 9 : 6, 4));
  });
  EXPECT_EQ(eppi::mpc::bits_to_u64(outputs[0]), 15u);
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(SocketTransportTest, FullConstructionOverTcp) {
  // The entire ε-PPI construction, each provider on its own TCP runtime.
  constexpr std::size_t kM = 5;
  constexpr std::size_t kN = 4;
  const std::vector<std::vector<std::uint8_t>> rows{
      {1, 0, 1, 0}, {1, 1, 0, 0}, {1, 0, 0, 0}, {1, 0, 1, 0}, {1, 0, 0, 1}};
  const std::vector<double> epsilons{0.5, 0.4, 0.6, 0.3};
  eppi::core::DistributedOptions options;
  options.policy = eppi::core::BetaPolicy::basic();
  options.c = 2;

  std::vector<eppi::core::ConstructionPartyResult> results(kM);
  run_over_sockets(kM, next_port_base(), [&](PartyContext& ctx, std::size_t i) {
    results[i] =
        eppi::core::run_construction_party(ctx, rows[i], epsilons, options);
  });

  // Assemble and check the published index: full recall, coordinator report
  // coherent.
  for (std::size_t i = 0; i < kM; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      if (rows[i][j] != 0) {
        EXPECT_EQ(results[i].published_row[j], 1) << i << "," << j;
      }
    }
  }
  ASSERT_TRUE(results[0].coordinator.has_value());
  ASSERT_TRUE(results[1].coordinator.has_value());
  EXPECT_FALSE(results[2].coordinator.has_value());
  EXPECT_EQ(results[0].coordinator->common_count,
            results[1].coordinator->common_count);
  // Identity 0 is at every provider: common under the basic policy.
  EXPECT_TRUE(results[0].coordinator->mixed[0]);
  EXPECT_EQ(results[0].coordinator->revealed_frequencies[0], 0u);
}

TEST(SocketTransportTest, BadSelfIdRejected) {
  const auto endpoints = loopback_mesh(2, next_port_base());
  EXPECT_THROW(SocketRuntime(5, endpoints), eppi::ConfigError);
}

TEST(SocketTransportTest, UnreachablePeerTimesOut) {
  // Party 1 tries to connect to a party 0 that never starts.
  const auto endpoints = loopback_mesh(2, next_port_base());
  EXPECT_THROW(SocketRuntime(1, endpoints, 1, /*connect_timeout_ms=*/300),
               eppi::ProtocolError);
}

}  // namespace
}  // namespace eppi::net
