// Wire-format invariants: little-endian layout is byte-exact (so mixed-arch
// deployments interop), encode/decode round-trip, and hello_problem enforces
// the same acceptance rules the runtime applies on both connection sides.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

namespace eppi::net::wire {
namespace {

TEST(WireTest, HelloEncodesLittleEndianByteExact) {
  Hello h;
  h.magic = kMagic;
  h.version = 3;
  h.flags = kFlagResume;
  h.party = 0x01020304u;
  h.session = 0x1122334455667788ull;
  std::array<unsigned char, kHelloBytes> buf{};
  encode_hello(h, buf.data());
  // "ePPI" magic, low byte first.
  EXPECT_EQ(buf[0], 0x65);  // 'e'
  EXPECT_EQ(buf[1], 0x50);  // 'P'
  EXPECT_EQ(buf[2], 0x50);  // 'P'
  EXPECT_EQ(buf[3], 0x49);  // 'I'
  EXPECT_EQ(buf[4], 3);     // version lo
  EXPECT_EQ(buf[5], 0);     // version hi
  EXPECT_EQ(buf[6], 0x01);  // flags lo (kFlagResume)
  EXPECT_EQ(buf[7], 0x00);
  EXPECT_EQ(buf[8], 0x04);  // party, little-endian
  EXPECT_EQ(buf[11], 0x01);
  EXPECT_EQ(buf[12], 0x88);  // session, little-endian
  EXPECT_EQ(buf[19], 0x11);
}

TEST(WireTest, HelloRoundTrips) {
  Hello h;
  h.party = 7;
  h.session = 0xdeadbeefcafef00dull;
  h.flags = kFlagResume;
  std::array<unsigned char, kHelloBytes> buf{};
  encode_hello(h, buf.data());
  const Hello back = decode_hello(buf.data());
  EXPECT_EQ(back.magic, kMagic);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.flags, kFlagResume);
  EXPECT_EQ(back.party, 7u);
  EXPECT_EQ(back.session, 0xdeadbeefcafef00dull);
}

TEST(WireTest, FrameHeaderRoundTrips) {
  FrameHeader h;
  h.from = 3;
  h.to = 1;
  h.tag = MessageTag::kUserBase + 9;
  h.seq = (1ull << 40) + 17;
  h.len = 4096;
  std::array<unsigned char, kHeaderBytes> buf{};
  encode_frame_header(h, buf.data());
  const FrameHeader back = decode_frame_header(buf.data());
  EXPECT_EQ(back.from, 3u);
  EXPECT_EQ(back.to, 1u);
  EXPECT_EQ(back.tag, MessageTag::kUserBase + 9);
  EXPECT_EQ(back.seq, (1ull << 40) + 17);
  EXPECT_EQ(back.len, 4096u);
}

TEST(WireTest, HelloProblemAcceptsValidPeer) {
  Hello h;
  h.party = 2;
  EXPECT_TRUE(hello_problem(h, 4).empty());
}

TEST(WireTest, HelloProblemRejectsBadMagic) {
  Hello h;
  h.magic = 0x48545450u;  // "HTTP" — a confused scanner
  h.party = 0;
  const std::string why = hello_problem(h, 4);
  EXPECT_NE(why.find("magic"), std::string::npos);
}

TEST(WireTest, HelloProblemRejectsVersionMismatch) {
  Hello h;
  h.version = 1;
  h.party = 0;
  const std::string why = hello_problem(h, 4);
  EXPECT_NE(why.find("version mismatch"), std::string::npos);
  EXPECT_NE(why.find("v1"), std::string::npos);
  EXPECT_NE(why.find("v3"), std::string::npos);
}

TEST(WireTest, HelloProblemRejectsPartyOutOfRange) {
  Hello h;
  h.party = 4;
  EXPECT_NE(hello_problem(h, 4).find("out of range"), std::string::npos);
  EXPECT_TRUE(hello_problem(h, 5).empty());
}

TEST(WireTest, ControlTagsDisjointFromProtocolAndTransportTags) {
  EXPECT_TRUE(is_control_tag(kHeartbeatPing));
  EXPECT_TRUE(is_control_tag(kHeartbeatPong));
  // Protocol tags (below kControlBit) are not control frames.
  EXPECT_FALSE(is_control_tag(MessageTag::kUserBase));
  EXPECT_FALSE(is_control_tag(MessageTag::kUserBase + 1000));
  // Transport acks keep their own namespace even when kControlBit happens
  // to be set in the acked tag.
  EXPECT_FALSE(is_control_tag(kAckBit | kHeartbeatPing));
  EXPECT_FALSE(is_control_tag(kAckBit | MessageTag::kUserBase));
}

TEST(WireTest, TraceContextRoundTrips) {
  TraceContext t;
  t.trace_id = 0xAA55AA55AA55AA55ull;
  t.parent_span = (0x123456ull << 40) | 42;
  t.send_ns = 1'234'567'890'123ull;
  std::array<unsigned char, kTraceExtBytes> buf{};
  encode_trace_context(t, buf.data());
  const TraceContext back = decode_trace_context(buf.data());
  EXPECT_EQ(back.trace_id, t.trace_id);
  EXPECT_EQ(back.parent_span, t.parent_span);
  EXPECT_EQ(back.send_ns, t.send_ns);
  // Little-endian, trace_id first.
  EXPECT_EQ(buf[0], 0x55);
  EXPECT_EQ(buf[7], 0xAA);
}

TEST(WireTest, TraceContextBitDisjointFromOtherTagBits) {
  EXPECT_TRUE(has_trace_context(MessageTag::kUserBase | kTraceContextBit));
  EXPECT_FALSE(has_trace_context(MessageTag::kUserBase));
  EXPECT_FALSE(has_trace_context(kAckBit | kRetransmitBit | kControlBit));
  // Stripping transport bits recovers the protocol tag.
  const std::uint32_t tagged = (MessageTag::kUserBase + 7) | kRetransmitBit |
                               kTraceContextBit;
  EXPECT_EQ(tagged & ~kTransportTagBits, MessageTag::kUserBase + 7u);
  // The trace extension never rides control or ack frames.
  EXPECT_TRUE(is_control_tag(kHeartbeatPing));
  EXPECT_FALSE(is_control_tag(kHeartbeatPing | kAckBit));
}

TEST(WireTest, ByteOrderHelpersRoundTrip) {
  std::array<unsigned char, 14> buf{};
  unsigned char* out = buf.data();
  put_u16(out, 0xBEEF);
  put_u32(out, 0x01234567u);
  put_u64(out, 0x0123456789abcdefull);
  EXPECT_EQ(out, buf.data() + buf.size());
  const unsigned char* in = buf.data();
  EXPECT_EQ(get_u16(in), 0xBEEF);
  EXPECT_EQ(get_u32(in), 0x01234567u);
  EXPECT_EQ(get_u64(in), 0x0123456789abcdefull);
  EXPECT_EQ(in, buf.data() + buf.size());
}

}  // namespace
}  // namespace eppi::net::wire
