// Build-info exposition (obs/build_info.h): the eppi_build_info gauge must
// be present in the global registry's Prometheus output with version, sha
// and compiler labels — the join key that ties a scraped /metrics page or a
// BENCH_*.json snapshot back to the binary that produced it.
#include "obs/build_info.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/registry.h"

namespace eppi::obs {
namespace {

TEST(BuildInfoTest, FieldsAreNonEmpty) {
  EXPECT_FALSE(std::string(build_version()).empty());
  EXPECT_FALSE(std::string(build_git_sha()).empty());
  EXPECT_FALSE(std::string(build_compiler()).empty());
}

TEST(BuildInfoTest, RegistersGaugeWithLabels) {
  Registry reg;
  register_build_info(reg);
  const std::string prom = reg.render_prometheus();
  EXPECT_NE(prom.find("eppi_build_info"), std::string::npos);
  EXPECT_NE(prom.find("version=\"" + std::string(build_version()) + "\""),
            std::string::npos);
  EXPECT_NE(prom.find("sha=\"" + std::string(build_git_sha()) + "\""),
            std::string::npos);
  // The gauge's value is the conventional constant 1.
  EXPECT_NE(prom.find("} 1"), std::string::npos);
}

TEST(BuildInfoTest, GlobalRegistryCarriesBuildInfo) {
  const std::string prom = Registry::global().render_prometheus();
  EXPECT_NE(prom.find("eppi_build_info"), std::string::npos);
  const std::string json = Registry::global().render_json();
  EXPECT_NE(json.find("eppi_build_info"), std::string::npos);
}

}  // namespace
}  // namespace eppi::obs
