// Escaping contract (obs/json_escape.h): the exporters' shared helpers must
// produce valid JSON string bodies / Prometheus label values for arbitrary
// input — the trace and registry exporters both lean on these, so a control
// character in an attribute value must never break a JSONL consumer.
#include "obs/json_escape.h"

#include <gtest/gtest.h>

#include <string>

namespace eppi::obs {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("phase:secsum"), "phase:secsum");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("owner_42/shard-7"), "owner_42/shard-7");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("C:\\path"), "C:\\\\path");
}

TEST(JsonEscapeTest, EscapesNamedControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
}

TEST(JsonEscapeTest, EscapesRemainingControlCharactersAsUnicode) {
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json_escape(std::string("a\x1fz", 3)), "a\\u001fz");
  EXPECT_EQ(json_escape(std::string("a\x00z", 3)), "a\\u0000z");
}

TEST(JsonEscapeTest, LeavesHighBytesAlone) {
  // UTF-8 multibyte sequences pass through untouched (JSON is UTF-8).
  const std::string utf8 = "caf\xc3\xa9";
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(PromEscapeTest, EscapesOnlyWhatPrometheusRequires) {
  EXPECT_EQ(prom_escape("plain"), "plain");
  EXPECT_EQ(prom_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape("a\nb"), "a\\nb");
  // Prometheus label values keep tabs and other controls verbatim.
  EXPECT_EQ(prom_escape("a\tb"), "a\tb");
}

}  // namespace
}  // namespace eppi::obs
