// The observability acceptance gate: a distributed construction run's
// exported JSONL trace, replayed through obs::replay_trace (the same code
// behind `eppi_cli trace`), must reproduce the run's CostMeter ground truth
// exactly — summed per-phase bytes/messages/rounds across parties equal the
// cluster meter totals in the protocol report. This holds on the *plain*
// transport, where per-party meters (PartyContext::send) and the cluster
// meter see the same sends; reliability-layer acks and retransmits are
// metered at the transport only, so fault runs are excluded by design.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/distributed_constructor.h"
#include "dataset/synthetic.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_replay.h"

namespace eppi::core {
namespace {

TEST(ObsConstructionTest, ReplayedTraceMatchesCostMeterTotals) {
  // Clear residue from earlier tests in this binary, then require that the
  // run itself fits the ring: a dropped event would silently lose bytes.
  (void)eppi::obs::default_sink().drain();
  const std::uint64_t dropped_before = eppi::obs::default_sink().dropped();

  eppi::Rng rng(21);
  const auto net = eppi::dataset::make_network_with_frequencies(
      8, std::vector<std::uint64_t>{7, 1, 2, 5, 3, 2, 1, 4}, rng);
  const std::vector<double> eps{0.5, 0.4, 0.6, 0.3, 0.5, 0.2, 0.7, 0.4};
  DistributedOptions options;
  options.policy = BetaPolicy::chernoff(0.9);
  options.c = 3;
  options.seed = 5;
  const auto result = construct_distributed(net.membership, eps, options);

  const auto events = eppi::obs::default_sink().drain();
  ASSERT_EQ(eppi::obs::default_sink().dropped(), dropped_before)
      << "trace ring wrapped mid-run; byte accounting would be partial";
  ASSERT_FALSE(events.empty());

  // Round-trip through the JSONL exporter exactly as `eppi_cli trace` does.
  std::istringstream in(eppi::obs::to_jsonl(events));
  const eppi::obs::ReplaySummary summary = eppi::obs::replay_trace(in);
  EXPECT_EQ(summary.parse_errors, 0u);

  EXPECT_EQ(summary.total_bytes, result.report.total_cost.bytes);
  EXPECT_EQ(summary.total_messages, result.report.total_cost.messages);
  EXPECT_EQ(summary.total_rounds, result.report.total_cost.rounds);

  // The Fig. 6 phases all appear. Order is span *commit* order, which
  // interleaves across party threads (a non-coordinator can finish its
  // publish before party 0 closes the broadcast span), so compare as sets.
  std::vector<std::string> names;
  for (const auto& row : summary.phases) names.push_back(row.name);
  std::sort(names.begin(), names.end());
  std::vector<std::string> expected{"secsum", "count_below", "mix_reveal",
                                    "broadcast", "publish"};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(names, expected);

  const auto phase = [&](std::string_view name) -> const eppi::obs::PhaseRow& {
    for (const auto& row : summary.phases) {
      if (row.name == name) return row;
    }
    ADD_FAILURE() << "phase " << name << " missing";
    static const eppi::obs::PhaseRow empty{};
    return empty;
  };

  // Every phase span carries a party and the SecSumShare phase ran on all
  // eight providers.
  EXPECT_EQ(phase("secsum").spans, 8u);
  // MPC phases involve exactly the c coordinators.
  EXPECT_EQ(phase("count_below").spans, options.c);
  EXPECT_EQ(phase("mix_reveal").spans, options.c);

  const std::string table = eppi::obs::render_table(summary);
  EXPECT_NE(table.find("secsum"), std::string::npos);
  EXPECT_NE(table.find(std::to_string(result.report.total_cost.bytes)),
            std::string::npos);
}

TEST(ObsConstructionTest, SecsumRoundTripSpansParentUnderPhaseSpans) {
  (void)eppi::obs::default_sink().drain();

  eppi::Rng rng(22);
  const auto net = eppi::dataset::make_network_with_frequencies(
      6, std::vector<std::uint64_t>{5, 1, 2, 3, 2, 1}, rng);
  const std::vector<double> eps(6, 0.5);
  DistributedOptions options;
  options.c = 2;
  const auto result = construct_distributed(net.membership, eps, options);
  (void)result;

  const auto events = eppi::obs::default_sink().drain();
  std::uint64_t distribute = 0;
  std::uint64_t aggregate = 0;
  for (const auto& ev : events) {
    if (ev.name_view() == "secsum.distribute") {
      ++distribute;
      EXPECT_NE(ev.parent_id, 0u) << "round-trip span must nest in a phase";
    }
    if (ev.name_view() == "secsum.aggregate") ++aggregate;
  }
  EXPECT_EQ(distribute, 6u);  // one per party
  EXPECT_EQ(aggregate, 6u);
}

}  // namespace
}  // namespace eppi::core
