// Serving- and storage-tier instrumentation: ServingMetrics lives on the
// global registry (distinct per-instance labels, Prometheus-visible), the
// LocatorService emits serve.build/serve.publish spans, and EpochStore
// commit/recover run under store.* spans with byte counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/epoch_store.h"
#include "core/locator_service.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

const eppi::obs::SpanAttr* find_attr(const eppi::obs::SpanEvent& ev,
                                     std::string_view key) {
  for (std::uint32_t i = 0; i < ev.n_attrs; ++i) {
    if (std::string_view(ev.attrs[i].key,
                         ::strnlen(ev.attrs[i].key,
                                   eppi::obs::SpanAttr::kKeyCap)) == key) {
      return &ev.attrs[i];
    }
  }
  return nullptr;
}

void populate(LocatorService& service) {
  service.delegate("alice", 0.5, "hospital");
  service.delegate("alice", 0.5, "clinic");
  service.delegate("bob", 0.3, "clinic");
}

// Two owners over two providers is below the distributed protocol's
// c <= m floor, so these tests exercise the centralized construction path.
LocatorService::Options centralized_options() {
  LocatorService::Options options;
  options.distributed = false;
  return options;
}

TEST(ObsServingTest, QueryAndSwapShowUpInPrometheusRender) {
  LocatorService service(centralized_options());
  populate(service);
  service.construct_ppi();
  (void)service.query_ppi("alice");
  (void)service.query_ppi("bob");

  const auto snap = service.metrics();
  EXPECT_EQ(snap.queries, 2u);
  EXPECT_EQ(snap.epoch_swaps, 1u);

  // The same counters are visible through the global registry's exposition
  // (ServingMetrics registers them under eppi_serving_* with an instance
  // label); the render must carry the family and at least our two queries.
  const std::string text =
      eppi::obs::Registry::global().render_prometheus();
  EXPECT_NE(text.find("# TYPE eppi_serving_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("eppi_serving_queries_total{instance=\""),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eppi_serving_latency_us histogram"),
            std::string::npos);
}

TEST(ObsServingTest, BuildAndPublishEmitSpans) {
  (void)eppi::obs::default_sink().drain();
  LocatorService service(centralized_options());
  populate(service);
  service.construct_ppi();
  (void)service.query_ppi("alice");

  bool saw_build = false;
  bool saw_rebuild = false;
  bool saw_publish = false;
  for (const auto& ev : eppi::obs::default_sink().drain()) {
    if (ev.name_view() == "serve.build") {
      saw_build = true;
      const auto* owners = find_attr(ev, "owners");
      ASSERT_NE(owners, nullptr);
      EXPECT_EQ(owners->value.u64, 2u);
    }
    if (ev.name_view() == "serve.rebuild") saw_rebuild = true;
    if (ev.name_view() == "serve.publish") {
      saw_publish = true;
      EXPECT_NE(find_attr(ev, "epoch"), nullptr);
      EXPECT_NE(find_attr(ev, "degraded"), nullptr);
    }
  }
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_rebuild);
  EXPECT_TRUE(saw_publish);
}

TEST(ObsStoreTest, CommitAndRecoverEmitSpansWithByteCounts) {
  (void)eppi::obs::default_sink().drain();
  eppi::storage::MemVfs vfs;
  {
    EpochStore store(vfs, "store");
    store.record_sticky_state({0xfeedULL, true});
    eppi::BitMatrix matrix(2, 3);
    matrix.set(0, 1, true);
    matrix.set(1, 2, true);
    store.commit_epoch(1, PpiIndex(std::move(matrix)), 0.25);
  }
  // Reopen: recovery walks the journal and validates the epoch file.
  EpochStore reopened(vfs, "store");
  ASSERT_TRUE(reopened.latest_epoch().has_value());

  bool saw_commit = false;
  std::uint64_t recovers = 0;
  for (const auto& ev : eppi::obs::default_sink().drain()) {
    if (ev.name_view() == "store.commit") {
      saw_commit = true;
      const auto* bytes = find_attr(ev, "bytes");
      ASSERT_NE(bytes, nullptr);
      EXPECT_GT(bytes->value.u64, 0u);
      const auto* rows = find_attr(ev, "rows");
      ASSERT_NE(rows, nullptr);
      EXPECT_EQ(rows->value.u64, 2u);
    }
    if (ev.name_view() == "store.recover") {
      ++recovers;
      EXPECT_NE(find_attr(ev, "journal_bytes"), nullptr);
      EXPECT_NE(find_attr(ev, "epochs"), nullptr);
    }
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_EQ(recovers, 2u);  // both opens ran recovery under a span
}

TEST(ObsStoreTest, FsckRunsUnderASpan) {
  (void)eppi::obs::default_sink().drain();
  eppi::storage::MemVfs vfs;
  {
    EpochStore store(vfs, "store");
    store.record_sticky_state({0xbeefULL, true});
    eppi::BitMatrix matrix(1, 1);
    matrix.set(0, 0, true);
    store.commit_epoch(1, PpiIndex(std::move(matrix)), 0.0);
  }
  const FsckReport report = fsck_store(vfs, "store");
  EXPECT_TRUE(report.ok);

  bool saw_fsck = false;
  for (const auto& ev : eppi::obs::default_sink().drain()) {
    if (ev.name_view() == "store.fsck") {
      saw_fsck = true;
      const auto* ok = find_attr(ev, "ok");
      ASSERT_NE(ok, nullptr);
      EXPECT_TRUE(ok->value.b);
    }
  }
  EXPECT_TRUE(saw_fsck);
}

}  // namespace
}  // namespace eppi::core
