// Metrics registry contract (obs/registry.h): idempotent registration,
// label separation, log2 bucketing shared with LatencyHistogram, quantile
// edges, and both exposition formats.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace eppi::obs {
namespace {

TEST(RegistryTest, RegistrationIsIdempotentByNameAndLabels) {
  Registry reg;
  Counter& a = reg.counter("eppi_test_total");
  Counter& b = reg.counter("eppi_test_total");
  EXPECT_EQ(&a, &b);

  Counter& c = reg.counter("eppi_test_total", Labels{{"party", "0"}});
  Counter& d = reg.counter("eppi_test_total", Labels{{"party", "1"}});
  EXPECT_NE(&a, &c);
  EXPECT_NE(&c, &d);
  EXPECT_EQ(&c, &reg.counter("eppi_test_total", Labels{{"party", "0"}}));
}

TEST(RegistryTest, CounterAndGaugeSemantics) {
  Registry reg;
  Counter& events = reg.counter("events_total");
  events.add();
  events.add(41);
  EXPECT_EQ(events.value(), 42u);

  Gauge& level = reg.gauge("level");
  level.set(10);
  level.add(-3);
  EXPECT_EQ(level.value(), 7);
}

TEST(RegistryTest, HistogramBucketingMatchesLatencyHistogram) {
  // Same law as common/metrics.h bucket_for: v <= 1 -> bucket 0, otherwise
  // floor(log2 v), clamped into the last bucket.
  EXPECT_EQ(Histogram::bucket_for(0), 0u);
  EXPECT_EQ(Histogram::bucket_for(1), 0u);
  EXPECT_EQ(Histogram::bucket_for(2), 1u);
  EXPECT_EQ(Histogram::bucket_for(3), 1u);
  EXPECT_EQ(Histogram::bucket_for(4), 2u);
  EXPECT_EQ(Histogram::bucket_for(std::uint64_t{1} << 40),
            Histogram::kBuckets - 1);
}

TEST(RegistryTest, HistogramDoubleRecordGuardsGarbage) {
  Registry reg;
  Histogram& h = reg.histogram("h");
  h.record(std::nan(""));
  h.record(-3.0);
  h.record(0.25);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.counts[0], 3u);  // all recorded as 0
  EXPECT_EQ(snap.sum, 0u);
}

TEST(RegistryTest, HistogramQuantileEdges) {
  Registry reg;
  Histogram& h = reg.histogram("h");
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);  // empty
  h.record(std::uint64_t{3});
  h.record(std::uint64_t{100});
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.quantile(0.0), 4.0);    // first sample's bucket edge
  EXPECT_EQ(snap.quantile(0.5), 4.0);
  EXPECT_EQ(snap.quantile(1.0), 128.0);  // bucket 6: [64, 128)
  EXPECT_EQ(snap.sum, 103u);
}

TEST(RegistryTest, PrometheusRenderShape) {
  Registry reg;
  reg.counter("zeta_total", {}, "last family").add(5);
  reg.counter("alpha_total", Labels{{"party", "0"}}, "first family").add(2);
  reg.gauge("level", {}, "a gauge").set(-4);
  Histogram& h = reg.histogram("lat_us", {}, "latency");
  h.record(std::uint64_t{3});

  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE alpha_total counter"), std::string::npos);
  EXPECT_NE(text.find("alpha_total{party=\"0\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE level gauge"), std::string::npos);
  EXPECT_NE(text.find("level -4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1"), std::string::npos);
  // Families render sorted by name.
  EXPECT_LT(text.find("alpha_total"), text.find("zeta_total"));
}

TEST(RegistryTest, JsonRenderShape) {
  Registry reg;
  reg.counter("c_total", Labels{{"k", "v"}}).add(7);
  reg.gauge("g").set(3);
  reg.histogram("h").record(std::uint64_t{2});
  const std::string json = reg.render_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, GlobalRegistryIsAProcessSingleton) {
  Registry& a = Registry::global();
  Registry& b = Registry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace eppi::obs
