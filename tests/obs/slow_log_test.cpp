// Slow-query log contract (obs/slow_log.h): bounded retention keeps the K
// slowest batches, eviction is by duration, snapshots come out slowest
// first, and the JSONL export carries trace identity but no owner names
// (there is no field to put one in — the privacy check is structural).
#include "obs/slow_log.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace eppi::obs {
namespace {

SlowQueryLog::Entry entry(std::uint64_t duration_us, std::uint64_t at_ns = 0) {
  SlowQueryLog::Entry e;
  e.trace_id = 0x1000 + duration_us;
  e.span_id = 0x2000 + duration_us;
  e.at_ns = at_ns;
  e.duration_us = duration_us;
  e.batch = 8;
  e.resolved = 6;
  e.epoch = 3;
  return e;
}

TEST(SlowQueryLogTest, RetainsSlowestUpToCapacity) {
  SlowQueryLog log(3);
  for (const std::uint64_t us : {10u, 50u, 20u, 40u, 30u, 5u}) {
    log.offer(entry(us));
  }
  EXPECT_EQ(log.observed(), 6u);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].duration_us, 50u);
  EXPECT_EQ(snap[1].duration_us, 40u);
  EXPECT_EQ(snap[2].duration_us, 30u);
}

TEST(SlowQueryLogTest, FastBatchNeverEvictsSlowerOne) {
  SlowQueryLog log(2);
  log.offer(entry(100));
  log.offer(entry(200));
  for (int i = 0; i < 50; ++i) log.offer(entry(1));
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].duration_us, 200u);
  EXPECT_EQ(snap[1].duration_us, 100u);
}

TEST(SlowQueryLogTest, TiesBreakByEarlierArrival) {
  SlowQueryLog log(4);
  log.offer(entry(10, 500));
  log.offer(entry(10, 100));
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].at_ns, 100u);
  EXPECT_EQ(snap[1].at_ns, 500u);
}

TEST(SlowQueryLogTest, JsonlCarriesTraceIdentityAndCounts) {
  SlowQueryLog log(2);
  log.offer(entry(77));
  const std::string jsonl = to_jsonl(log.snapshot());
  EXPECT_NE(jsonl.find("\"duration_us\":77"), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"span\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"batch\":8"), std::string::npos);
  EXPECT_NE(jsonl.find("\"resolved\":6"), std::string::npos);
  EXPECT_NE(jsonl.find("\"epoch\":3"), std::string::npos);
  EXPECT_EQ(jsonl.back(), '\n');
}

TEST(SlowQueryLogTest, ConcurrentOffersStayBoundedAndCounted) {
  SlowQueryLog log(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.offer(entry(static_cast<std::uint64_t>(t * kPerThread + i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.observed(), kThreads * kPerThread);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // The slowest overall offer must have survived every eviction.
  EXPECT_EQ(snap[0].duration_us,
            static_cast<std::uint64_t>(kThreads * kPerThread - 1));
}

}  // namespace
}  // namespace eppi::obs
