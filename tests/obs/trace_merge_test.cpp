// Trace merger contract (obs/trace_merge.h): per-process clocks are aligned
// from matched send/recv pairs via difference constraints, so any feasible
// constraint system merges with ZERO causality violations — even when raw
// timestamps put a receive before its send, or link delays are asymmetric.
// Also covers the JSONL round trip the merger's inputs/outputs ride on.
#include "obs/trace_merge.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_json.h"

namespace eppi::obs {
namespace {

constexpr std::uint64_t kMs = 1'000'000;  // ns per ms

TraceEvent span_event(std::uint64_t span, std::string name,
                      std::uint64_t start_ns, std::uint64_t end_ns) {
  TraceEvent ev;
  ev.span = span;
  ev.trace = span;
  ev.name = std::move(name);
  ev.start_ns = start_ns;
  ev.end_ns = end_ns;
  return ev;
}

TraceEvent recv_event(std::uint64_t span, std::uint64_t parent,
                      std::uint64_t at_ns, std::uint64_t send_ns,
                      bool retransmit = false) {
  TraceEvent ev = span_event(span, "net.recv", at_ns, at_ns);
  ev.parent = parent;
  TraceEvent::Attr send;
  send.key = "send_ns";
  send.kind = TraceEvent::Attr::Kind::kU64;
  send.u64 = send_ns;
  send.f64 = static_cast<double>(send_ns);
  ev.attrs.push_back(send);
  TraceEvent::Attr rt;
  rt.key = "rt";
  rt.kind = TraceEvent::Attr::Kind::kU64;
  rt.u64 = retransmit ? 1 : 0;
  ev.attrs.push_back(rt);
  return ev;
}

// Two processes, B's clock 5 ms ahead of true time, one message each way.
// The raw reply timestamps are contradictory (sent at B-clock 15 ms,
// received at A-clock 11.5 ms); a feasible offset assignment exists and the
// merge must find one.
std::vector<TraceFile> two_party_exchange() {
  TraceFile a;
  a.label = "party0";
  a.events.push_back(span_event(0xA1, "phase:secsum", 0, 10 * kMs));
  a.events.push_back(
      recv_event(0xA9, 0xB1, 11 * kMs + kMs / 2, 15 * kMs));  // from B
  TraceFile b;
  b.label = "party1";
  b.events.push_back(span_event(0xB1, "phase:secsum", 6 * kMs, 20 * kMs));
  b.events.push_back(recv_event(0xB9, 0xA1, 8 * kMs, 2 * kMs));  // from A
  return {a, b};
}

TEST(TraceMergeTest, AlignsClocksWithZeroViolationsWhenFeasible) {
  MergeReport report;
  const auto merged = merge_traces(two_party_exchange(), &report);

  EXPECT_EQ(report.processes, 2u);
  EXPECT_EQ(report.events, 4u);
  EXPECT_EQ(report.recv_events, 2u);
  EXPECT_EQ(report.matched_edges, 2u);
  EXPECT_EQ(report.cross_process_edges, 2u);
  EXPECT_EQ(report.unmatched_recv, 0u);
  EXPECT_EQ(report.retransmit_edges, 0u);
  EXPECT_EQ(report.causality_violations, 0u) << render_merge_report(report);

  ASSERT_EQ(report.offsets_ns.size(), 2u);
  // B must be pulled back by at least 3.5 ms (the reply constraint) and at
  // most 6 ms (the forward constraint); the tightest solution is -3.5 ms.
  EXPECT_EQ(report.offsets_ns[0], 0);
  EXPECT_EQ(report.offsets_ns[1], -3 * static_cast<std::int64_t>(kMs) -
                                      static_cast<std::int64_t>(kMs) / 2);

  // Merged events are sorted by adjusted start and stamped with their
  // process index.
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].span, 0xA1u);
  EXPECT_EQ(merged[0].proc, 0u);
  EXPECT_EQ(merged[1].span, 0xB1u);
  EXPECT_EQ(merged[1].proc, 1u);
  EXPECT_EQ(merged[1].start_ns, 6 * kMs - 3 * kMs - kMs / 2);

  // Every recv now happens at or after its (rebased) send.
  for (const TraceEvent& ev : merged) {
    if (ev.name != "net.recv") continue;
    EXPECT_GE(ev.start_ns, ev.attr_u64("send_ns"));
  }
}

TEST(TraceMergeTest, RetransmitsAreCountedButDoNotConstrainOffsets) {
  auto files = two_party_exchange();
  // An absurd retransmitted frame: send_ns far in B's future. If it entered
  // the constraint system it would drag B's offset by ~100 ms.
  files[0].events.push_back(
      recv_event(0xAA, 0xB1, 12 * kMs, 111 * kMs, /*retransmit=*/true));
  MergeReport report;
  (void)merge_traces(std::move(files), &report);
  EXPECT_EQ(report.retransmit_edges, 1u);
  EXPECT_EQ(report.offsets_ns[1], -3 * static_cast<std::int64_t>(kMs) -
                                      static_cast<std::int64_t>(kMs) / 2);
  EXPECT_EQ(report.causality_violations, 0u);
}

TEST(TraceMergeTest, UnmatchedRecvIsReportedNotFatal) {
  auto files = two_party_exchange();
  files[0].events.push_back(
      recv_event(0xAB, 0xDEAD, 13 * kMs, 12 * kMs));  // unknown parent
  MergeReport report;
  const auto merged = merge_traces(std::move(files), &report);
  EXPECT_EQ(report.unmatched_recv, 1u);
  EXPECT_EQ(report.matched_edges, 2u);
  EXPECT_EQ(merged.size(), 5u);
}

TEST(TraceMergeTest, SingleFilePassesThroughShifted) {
  TraceFile only;
  only.label = "solo";
  only.events.push_back(span_event(1, "phase:mix", 7 * kMs, 9 * kMs));
  MergeReport report;
  const auto merged = merge_traces({only}, &report);
  ASSERT_EQ(merged.size(), 1u);
  // Global shift anchors the earliest event at t=0.
  EXPECT_EQ(merged[0].start_ns, 0u);
  EXPECT_EQ(merged[0].end_ns, 2 * kMs);
  EXPECT_EQ(report.causality_violations, 0u);
}

TEST(TraceMergeTest, ReportRendersCounts) {
  MergeReport report;
  (void)merge_traces(two_party_exchange(), &report);
  const std::string text = render_merge_report(report);
  EXPECT_NE(text.find("party0"), std::string::npos);
  EXPECT_NE(text.find("party1"), std::string::npos);
  EXPECT_NE(text.find("cross-process"), std::string::npos);
  EXPECT_NE(text.find("causality violations: 0"), std::string::npos);
}

TEST(TraceJsonTest, EventRoundTripsThroughJsonLine) {
  TraceEvent ev = recv_event(42, 7, 1234, 999);
  ev.trace = 42;
  ev.thread = 3;
  ev.proc = 2;
  TraceEvent::Attr label;
  label.key = "label";
  label.kind = TraceEvent::Attr::Kind::kStr;
  label.str = "a\"b\\c\nd";  // exercises escaping both ways
  ev.attrs.push_back(label);

  const std::string line = to_json_line(ev);
  TraceEvent back;
  ASSERT_TRUE(parse_trace_line(line, &back)) << line;
  EXPECT_EQ(back.span, 42u);
  EXPECT_EQ(back.parent, 7u);
  EXPECT_EQ(back.trace, 42u);
  EXPECT_EQ(back.thread, 3u);
  EXPECT_EQ(back.proc, 2u);
  EXPECT_EQ(back.name, "net.recv");
  EXPECT_EQ(back.start_ns, 1234u);
  EXPECT_EQ(back.attr_u64("send_ns"), 999u);
  const auto* attr = back.attr("label");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->str, "a\"b\\c\nd");
}

TEST(TraceJsonTest, RejectsMalformedLines) {
  TraceEvent ev;
  EXPECT_FALSE(parse_trace_line("", &ev));
  EXPECT_FALSE(parse_trace_line("not json", &ev));
  EXPECT_FALSE(parse_trace_line("{\"span\":", &ev));
}

}  // namespace
}  // namespace eppi::obs
