// Replay of exported traces into the Fig. 6 per-phase table
// (obs/trace_replay.h): folding rules, first-appearance ordering, totals,
// parse-error accounting, and the rendered table shape.
#include "obs/trace_replay.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace.h"

namespace eppi::obs {
namespace {

// Emits phase spans through the real Span/to_jsonl machinery so the replay
// test breaks if the exporter's shape drifts.
std::string sample_jsonl() {
  TraceSink sink(256);
  {
    Span s("phase:secsum", &sink);
    s.attr("party", std::uint64_t{0});
    s.attr("bytes", std::uint64_t{100});
    s.attr("messages", std::uint64_t{4});
    s.attr("rounds", std::uint64_t{2});
  }
  {
    Span s("phase:secsum", &sink);
    s.attr("party", std::uint64_t{1});
    s.attr("bytes", std::uint64_t{50});
    s.attr("messages", std::uint64_t{2});
    s.attr("rounds", std::uint64_t{0});
  }
  {
    Span s("phase:broadcast", &sink);
    s.attr("bytes", std::uint64_t{30});
    s.attr("messages", std::uint64_t{3});
    s.attr("rounds", std::uint64_t{1});
  }
  {
    Span s("secsum.distribute", &sink);  // not a phase span: counted, not folded
    s.attr("party", std::uint64_t{0});
  }
  return to_jsonl(sink.drain());
}

TEST(TraceReplayTest, FoldsPhaseSpansInFirstAppearanceOrder) {
  std::istringstream in(sample_jsonl());
  const ReplaySummary summary = replay_trace(in);
  EXPECT_EQ(summary.parse_errors, 0u);
  EXPECT_EQ(summary.events, 4u);
  ASSERT_EQ(summary.phases.size(), 2u);

  EXPECT_EQ(summary.phases[0].name, "secsum");
  EXPECT_EQ(summary.phases[0].spans, 2u);
  EXPECT_EQ(summary.phases[0].bytes, 150u);
  EXPECT_EQ(summary.phases[0].messages, 6u);
  EXPECT_EQ(summary.phases[0].rounds, 2u);

  EXPECT_EQ(summary.phases[1].name, "broadcast");
  EXPECT_EQ(summary.phases[1].bytes, 30u);

  EXPECT_EQ(summary.total_bytes, 180u);
  EXPECT_EQ(summary.total_messages, 9u);
  EXPECT_EQ(summary.total_rounds, 3u);
}

TEST(TraceReplayTest, MalformedLinesAreCountedNotFatal) {
  std::istringstream in(sample_jsonl() + "this is not json\n{\"span\":}\n");
  const ReplaySummary summary = replay_trace(in);
  EXPECT_EQ(summary.parse_errors, 2u);
  EXPECT_EQ(summary.total_bytes, 180u);  // good lines still fold
}

TEST(TraceReplayTest, EmptyInputYieldsEmptySummary) {
  std::istringstream in("");
  const ReplaySummary summary = replay_trace(in);
  EXPECT_TRUE(summary.phases.empty());
  EXPECT_EQ(summary.events, 0u);
  EXPECT_EQ(summary.total_bytes, 0u);
}

TEST(TraceReplayTest, RenderedTableCarriesPhaseRowsAndTotals) {
  std::istringstream in(sample_jsonl());
  const std::string table = render_table(replay_trace(in));
  EXPECT_NE(table.find("phase"), std::string::npos);
  EXPECT_NE(table.find("secsum"), std::string::npos);
  EXPECT_NE(table.find("broadcast"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("180"), std::string::npos);  // summed bytes
}

}  // namespace
}  // namespace eppi::obs
