// Replay of exported traces into the Fig. 6 per-phase table
// (obs/trace_replay.h): folding rules, first-appearance ordering, totals,
// parse-error accounting, and the rendered table shape.
#include "obs/trace_replay.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace.h"

namespace eppi::obs {
namespace {

// Emits phase spans through the real Span/to_jsonl machinery so the replay
// test breaks if the exporter's shape drifts.
std::string sample_jsonl() {
  TraceSink sink(256);
  {
    Span s("phase:secsum", &sink);
    s.attr("party", std::uint64_t{0});
    s.attr("bytes", std::uint64_t{100});
    s.attr("messages", std::uint64_t{4});
    s.attr("rounds", std::uint64_t{2});
  }
  {
    Span s("phase:secsum", &sink);
    s.attr("party", std::uint64_t{1});
    s.attr("bytes", std::uint64_t{50});
    s.attr("messages", std::uint64_t{2});
    s.attr("rounds", std::uint64_t{0});
  }
  {
    Span s("phase:broadcast", &sink);
    s.attr("bytes", std::uint64_t{30});
    s.attr("messages", std::uint64_t{3});
    s.attr("rounds", std::uint64_t{1});
  }
  {
    Span s("secsum.distribute", &sink);  // not a phase span: counted, not folded
    s.attr("party", std::uint64_t{0});
  }
  return to_jsonl(sink.drain());
}

TEST(TraceReplayTest, FoldsPhaseSpansInFirstAppearanceOrder) {
  std::istringstream in(sample_jsonl());
  const ReplaySummary summary = replay_trace(in);
  EXPECT_EQ(summary.parse_errors, 0u);
  EXPECT_EQ(summary.events, 4u);
  ASSERT_EQ(summary.phases.size(), 2u);

  EXPECT_EQ(summary.phases[0].name, "secsum");
  EXPECT_EQ(summary.phases[0].spans, 2u);
  EXPECT_EQ(summary.phases[0].bytes, 150u);
  EXPECT_EQ(summary.phases[0].messages, 6u);
  EXPECT_EQ(summary.phases[0].rounds, 2u);

  EXPECT_EQ(summary.phases[1].name, "broadcast");
  EXPECT_EQ(summary.phases[1].bytes, 30u);

  EXPECT_EQ(summary.total_bytes, 180u);
  EXPECT_EQ(summary.total_messages, 9u);
  EXPECT_EQ(summary.total_rounds, 3u);
}

TEST(TraceReplayTest, MalformedLinesAreCountedNotFatal) {
  std::istringstream in(sample_jsonl() + "this is not json\n{\"span\":}\n");
  const ReplaySummary summary = replay_trace(in);
  EXPECT_EQ(summary.parse_errors, 2u);
  EXPECT_EQ(summary.total_bytes, 180u);  // good lines still fold
}

TEST(TraceReplayTest, EmptyInputYieldsEmptySummary) {
  std::istringstream in("");
  const ReplaySummary summary = replay_trace(in);
  EXPECT_TRUE(summary.phases.empty());
  EXPECT_EQ(summary.events, 0u);
  EXPECT_EQ(summary.total_bytes, 0u);
}

TEST(TraceReplayTest, RenderedTableCarriesPhaseRowsAndTotals) {
  std::istringstream in(sample_jsonl());
  const std::string table = render_table(replay_trace(in));
  EXPECT_NE(table.find("phase"), std::string::npos);
  EXPECT_NE(table.find("secsum"), std::string::npos);
  EXPECT_NE(table.find("broadcast"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("180"), std::string::npos);  // summed bytes
}

// --- merged-trace decomposition and critical path --------------------------

namespace decomposition {

constexpr std::uint64_t kMs = 1'000'000;

TraceEvent phase(std::uint64_t span, std::uint32_t proc, std::uint64_t start,
                 std::uint64_t end) {
  TraceEvent ev;
  ev.span = span;
  ev.trace = span;
  ev.proc = proc;
  ev.name = "phase:secsum";
  ev.start_ns = start;
  ev.end_ns = end;
  return ev;
}

TraceEvent recv(std::uint64_t span, std::uint64_t parent, std::uint32_t proc,
                std::uint64_t at, std::uint64_t send, bool rt) {
  TraceEvent ev;
  ev.span = span;
  ev.parent = parent;
  ev.proc = proc;
  ev.name = "net.recv";
  ev.start_ns = at;
  ev.end_ns = at;
  TraceEvent::Attr s;
  s.key = "send_ns";
  s.kind = TraceEvent::Attr::Kind::kU64;
  s.u64 = send;
  ev.attrs.push_back(s);
  TraceEvent::Attr r;
  r.key = "rt";
  r.kind = TraceEvent::Attr::Kind::kU64;
  r.u64 = rt ? 1 : 0;
  ev.attrs.push_back(r);
  return ev;
}

// proc 0 computes [0, 10ms] and sends twice; proc 1 runs [0, 20ms] waiting
// on a first-transmission flight [6, 8]ms and a retransmitted one [12, 15]ms.
std::vector<TraceEvent> merged_run() {
  return {
      phase(1, 0, 0, 10 * kMs),
      phase(2, 1, 0, 20 * kMs),
      recv(3, 1, 1, 8 * kMs, 6 * kMs, false),
      recv(4, 1, 1, 15 * kMs, 12 * kMs, true),
  };
}

TEST(TraceReplayDecompositionTest, SplitsPhaseTimeIntoComputeWaitStall) {
  const ReplaySummary summary = summarize(merged_run());
  EXPECT_EQ(summary.recv_events, 2u);
  EXPECT_EQ(summary.cross_process_edges, 2u);
  ASSERT_EQ(summary.phases.size(), 1u);
  const PhaseRow& row = summary.phases[0];
  EXPECT_EQ(row.spans, 2u);
  EXPECT_DOUBLE_EQ(row.total_ms, 30.0);
  // proc 1 waited on [6,8] ∪ [12,15] = 5 ms; only the retransmitted flight
  // is stall; compute = 10 (proc 0) + 15 (proc 1 minus wait).
  EXPECT_DOUBLE_EQ(row.wait_ms, 5.0);
  EXPECT_DOUBLE_EQ(row.stall_ms, 3.0);
  EXPECT_DOUBLE_EQ(row.compute_ms, 25.0);
}

TEST(TraceReplayDecompositionTest, WalksCrossProcessCriticalPath) {
  const ReplaySummary summary = summarize(merged_run());
  ASSERT_FALSE(summary.critical_path.empty());
  // Backward from proc 1's finish at 20 ms: compute tail after the last
  // recv (5 ms), the wire flight (3 ms), then proc 0's span bottoms out as
  // pure compute (10 ms).
  ASSERT_EQ(summary.critical_path.size(), 3u);
  EXPECT_EQ(summary.critical_path[0].proc, 0u);
  EXPECT_FALSE(summary.critical_path[0].wire);
  EXPECT_DOUBLE_EQ(summary.critical_path[0].ms, 10.0);
  EXPECT_TRUE(summary.critical_path[1].wire);
  EXPECT_DOUBLE_EQ(summary.critical_path[1].ms, 3.0);
  EXPECT_EQ(summary.critical_path[2].proc, 1u);
  EXPECT_DOUBLE_EQ(summary.critical_path[2].ms, 5.0);
  EXPECT_DOUBLE_EQ(summary.critical_path_ms, 18.0);
}

TEST(TraceReplayDecompositionTest, TableGrowsDecomposedColumnsAndPath) {
  const std::string table = render_table(summarize(merged_run()));
  EXPECT_NE(table.find("compute_ms"), std::string::npos);
  EXPECT_NE(table.find("wait_ms"), std::string::npos);
  EXPECT_NE(table.find("stall_ms"), std::string::npos);
  EXPECT_NE(table.find("critical path:"), std::string::npos);
  EXPECT_NE(table.find("wire 0->1"), std::string::npos);
  EXPECT_NE(table.find("cross-process edges"), std::string::npos);
}

TEST(TraceReplayDecompositionTest, SingleProcessTraceKeepsCompactTable) {
  const std::vector<TraceEvent> events = {phase(1, 0, 0, 10 * kMs)};
  const std::string table = render_table(summarize(events));
  EXPECT_EQ(table.find("compute_ms"), std::string::npos);
  EXPECT_EQ(table.find("critical path:"), std::string::npos);
}

}  // namespace decomposition

}  // namespace
}  // namespace eppi::obs
