// Trace layer contract (obs/trace.h): RAII span commit, thread_local parent
// links, typed attributes with truncation, instantaneous events, ring wrap
// accounting, the JSONL export shape, and a multi-thread hammer that the CI
// TSan job runs to certify the lock-free ring (`ctest -L obs` under
// sanitize-threads).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace eppi::obs {
namespace {

const SpanAttr* find_attr(const SpanEvent& ev, std::string_view key) {
  for (std::uint32_t i = 0; i < ev.n_attrs; ++i) {
    if (std::string_view(ev.attrs[i].key,
                         ::strnlen(ev.attrs[i].key, SpanAttr::kKeyCap)) ==
        key) {
      return &ev.attrs[i];
    }
  }
  return nullptr;
}

TEST(TraceTest, SpanCommitsOnDestructionWithTimesAndAttrs) {
  TraceSink sink(64);
  {
    Span span("unit.work", &sink);
    span.attr("bytes", std::uint64_t{4096});
    span.attr("delta", std::int64_t{-3});
    span.attr("ratio", 0.5);
    span.attr("ok", true);
    span.attr("label", "secsum");
    EXPECT_TRUE(sink.drain().empty()) << "span committed before destruction";
  }
  const auto events = sink.drain();
  ASSERT_EQ(events.size(), 1u);
  const SpanEvent& ev = events[0];
  EXPECT_EQ(ev.name_view(), "unit.work");
  EXPECT_NE(ev.span_id, 0u);
  EXPECT_EQ(ev.parent_id, 0u);
  EXPECT_GE(ev.end_ns, ev.start_ns);
  EXPECT_EQ(ev.n_attrs, 5u);

  const SpanAttr* bytes = find_attr(ev, "bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->value.type, AttrValue::Type::kU64);
  EXPECT_EQ(bytes->value.u64, 4096u);

  const SpanAttr* delta = find_attr(ev, "delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->value.type, AttrValue::Type::kI64);
  EXPECT_EQ(delta->value.i64, -3);

  const SpanAttr* label = find_attr(ev, "label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->value.type, AttrValue::Type::kStr);
}

TEST(TraceTest, NestedSpansLinkToParentOnSameThread) {
  TraceSink sink(64);
  std::uint64_t outer_id = 0;
  {
    Span outer("outer", &sink);
    outer_id = outer.id();
    {
      Span inner("inner", &sink);
      EXPECT_NE(inner.id(), outer.id());
    }
    outer.event("tick");
  }
  auto events = sink.drain();
  ASSERT_EQ(events.size(), 3u);  // inner, tick, outer (in commit order)
  EXPECT_EQ(events[0].name_view(), "inner");
  EXPECT_EQ(events[0].parent_id, outer_id);
  EXPECT_EQ(events[1].name_view(), "tick");
  EXPECT_EQ(events[1].parent_id, outer_id);
  EXPECT_EQ(events[1].start_ns, events[1].end_ns);  // instantaneous
  EXPECT_EQ(events[2].name_view(), "outer");
  EXPECT_EQ(events[2].parent_id, 0u);
}

TEST(TraceTest, LongNamesAndStringsTruncateSafely) {
  TraceSink sink(64);
  const std::string long_name(200, 'n');
  const std::string long_value(200, 'v');
  {
    Span span(long_name, &sink);
    span.attr("k", std::string_view(long_value));
  }
  const auto events = sink.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name_view().size(), SpanEvent::kNameCap);
  EXPECT_EQ(events[0].name_view(), std::string(SpanEvent::kNameCap, 'n'));
}

TEST(TraceTest, AttrsPastCapacityAreDroppedNotCorrupted) {
  TraceSink sink(64);
  {
    Span span("crowded", &sink);
    for (int k = 0; k < 20; ++k) {
      span.attr("key" + std::to_string(k), std::uint64_t(k));
    }
  }
  const auto events = sink.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].n_attrs, SpanEvent::kMaxAttrs);
}

TEST(TraceTest, RingWrapDropsOldestAndAccountsForThem) {
  TraceSink sink(64);  // rounded to a power of two >= 64
  ASSERT_EQ(sink.capacity(), 64u);
  for (int k = 0; k < 100; ++k) {
    Span span("wrapped", &sink);
  }
  const auto events = sink.drain();
  EXPECT_EQ(sink.recorded(), 100u);
  EXPECT_EQ(events.size(), 64u);  // the newest capacity-many survive
  EXPECT_EQ(sink.dropped(), 36u);
  // Drained + dropped always equals recorded once the ring is quiescent.
  EXPECT_EQ(events.size() + sink.dropped(), sink.recorded());
}

TEST(TraceTest, ConcurrentSpansAllArriveWhenRingIsLargeEnough) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 1000;
  TraceSink sink(8192);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sink, t] {
      for (std::size_t k = 0; k < kPerThread; ++k) {
        Span span("hammer", &sink);
        span.attr("thread", std::uint64_t{t});
        span.attr("k", std::uint64_t{k});
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto events = sink.drain();
  EXPECT_EQ(sink.recorded(), kThreads * kPerThread);
  EXPECT_EQ(events.size() + sink.dropped(), kThreads * kPerThread);
  EXPECT_EQ(sink.dropped(), 0u) << "ring sized to hold every event";
  // Every (thread, k) pair arrives exactly once.
  std::vector<std::vector<bool>> seen(kThreads,
                                      std::vector<bool>(kPerThread, false));
  for (const auto& ev : events) {
    const SpanAttr* t = find_attr(ev, "thread");
    const SpanAttr* k = find_attr(ev, "k");
    ASSERT_NE(t, nullptr);
    ASSERT_NE(k, nullptr);
    ASSERT_LT(t->value.u64, kThreads);
    ASSERT_LT(k->value.u64, kPerThread);
    EXPECT_FALSE(seen[t->value.u64][k->value.u64]);
    seen[t->value.u64][k->value.u64] = true;
  }
}

TEST(TraceTest, DrainConcurrentWithRecordersNeverFabricatesEvents) {
  // The TSan-relevant torture: readers racing writers on a deliberately tiny
  // ring. Every drained event must be internally consistent (a name we
  // wrote, sane attr count) even while slots are being overwritten.
  TraceSink sink(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Span span("racer", &sink);
        span.attr("x", std::uint64_t{7});
      }
    });
  }
  std::uint64_t drained = 0;
  const auto validate = [&](const std::vector<SpanEvent>& events) {
    for (const auto& ev : events) {
      ++drained;
      EXPECT_EQ(ev.name_view(), "racer");
      ASSERT_EQ(ev.n_attrs, 1u);
      EXPECT_EQ(ev.attrs[0].value.u64, 7u);
    }
  };
  // Mid-run drains may legitimately return nothing: on a ring this small,
  // spinning writers can lap every slot before the reader validates it (the
  // overrun is then *accounted*, as dropped). What must never happen is a
  // fabricated or torn event getting through validation. Keep draining until
  // the writers have demonstrably produced work — under load the OS may not
  // schedule them until well after our first drains.
  for (int round = 0;
       round < 200 || sink.recorded() < 4 * sink.capacity(); ++round) {
    validate(sink.drain());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  validate(sink.drain());  // quiescent: the newest events must survive
  EXPECT_GT(drained, 0u);
  EXPECT_LE(sink.dropped(), sink.recorded());
  EXPECT_EQ(drained + sink.dropped(), sink.recorded());
}

TEST(TraceTest, ToJsonlEmitsOneObjectPerLine) {
  TraceSink sink(64);
  {
    Span span("phase:secsum", &sink);
    span.attr("party", std::uint64_t{0});
    span.attr("bytes", std::uint64_t{128});
    span.attr("note", "a\"quote");
  }
  const std::string jsonl = to_jsonl(sink.drain());
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_NE(jsonl.find("\"name\":\"phase:secsum\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"party\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"bytes\":128"), std::string::npos);
  EXPECT_NE(jsonl.find("a\\\"quote"), std::string::npos);
}

TEST(TraceTest, TraceIdIsInheritedFromRootAcrossNesting) {
  TraceSink sink(64);
  {
    Span root("root", &sink);
    EXPECT_EQ(root.context().trace_id, root.id());
    {
      Span mid("mid", &sink);
      Span leaf("leaf", &sink);
      EXPECT_EQ(leaf.context().trace_id, root.id());
      EXPECT_NE(leaf.id(), mid.id());
    }
  }
  const auto events = sink.drain();
  ASSERT_EQ(events.size(), 3u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.trace_id, events[2].span_id) << ev.name_view();
  }
  // Siblings started after the tree closes form a new trace.
  { Span next("next", &sink); }
  const auto after = sink.drain();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].trace_id, after[0].span_id);
  EXPECT_NE(after[0].trace_id, events[2].span_id);
}

TEST(TraceTest, CurrentSpanContextTracksInnermostSpan) {
  EXPECT_FALSE(current_span_context());
  TraceSink sink(64);
  {
    Span outer("outer", &sink);
    const SpanContext ctx = current_span_context();
    EXPECT_TRUE(ctx);
    EXPECT_EQ(ctx.span_id, outer.id());
    EXPECT_EQ(ctx.trace_id, outer.id());
  }
  EXPECT_FALSE(current_span_context());
}

TEST(TraceTest, ProcessSeedGivesGloballyDistinctIds) {
  TraceSink sink(64);
  set_trace_process_seed_for_testing(0xAAAAAA);
  { Span a("a", &sink); }
  set_trace_process_seed_for_testing(0xBBBBBB);
  { Span b("b", &sink); }
  const auto events = sink.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].span_id >> 40, 0xAAAAAAu);
  EXPECT_EQ(events[1].span_id >> 40, 0xBBBBBBu);
  // Restore an entropy-looking seed so later tests keep unique ids.
  set_trace_process_seed_for_testing(0x123456);
}

TEST(TraceTest, RemoteEventParentsToExplicitContext) {
  TraceSink sink(64);
  const SpanContext remote{0x99u, 0x42u};  // as if from another process
  const std::uint64_t id = record_remote_event(
      "net.recv", remote, {{"from", 3u}, {"bytes", 64u}}, &sink);
  EXPECT_NE(id, 0u);
  const auto events = sink.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name_view(), "net.recv");
  EXPECT_EQ(events[0].parent_id, 0x42u);
  EXPECT_EQ(events[0].trace_id, 0x99u);
  EXPECT_EQ(events[0].span_id, id);
  const SpanAttr* bytes = find_attr(events[0], "bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->value.u64, 64u);
  // The receive span's own id must not collide with the remote parent's
  // id space: it comes from this process's seeded allocator.
  EXPECT_NE(events[0].span_id, events[0].parent_id);
}

TEST(TraceTest, ToJsonlCarriesTraceId) {
  TraceSink sink(64);
  { Span span("phase:mix", &sink); }
  const std::string jsonl = to_jsonl(sink.drain());
  EXPECT_NE(jsonl.find("\"trace\":"), std::string::npos);
}

}  // namespace
}  // namespace eppi::obs
