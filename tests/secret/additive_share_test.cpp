#include "secret/additive_share.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace eppi::secret {
namespace {

// Property sweep over (modulus, share count): Theorem 4.1 recoverability.
class SplitSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(SplitSweep, SplitReconstructRoundTrip) {
  const auto [q, c] = GetParam();
  const ModRing ring(q);
  eppi::Rng rng(q * 1000 + c);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t value = rng.next_below(q);
    const auto shares = split_additive(value, c, ring, rng);
    ASSERT_EQ(shares.size(), c);
    // reveal() is the audited opening: the test plays all c holders at once.
    for (const auto& s : shares) EXPECT_LT(s.reveal(), q);
    EXPECT_EQ(reconstruct_additive(shares, ring), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, SplitSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 5, 8, 97, 1024),
                       ::testing::Values<std::size_t>(1, 2, 3, 5, 8)));

TEST(AdditiveShareTest, ZeroSharesRejected) {
  const ModRing ring(8);
  eppi::Rng rng(1);
  EXPECT_THROW(split_additive(1, 0, ring, rng), eppi::ConfigError);
  EXPECT_THROW(reconstruct_additive({}, ring), eppi::ConfigError);
}

TEST(AdditiveShareTest, AdditiveHomomorphism) {
  const ModRing ring(64);
  eppi::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t a = rng.next_below(64);
    const std::uint64_t b = rng.next_below(64);
    const auto sa = split_additive(a, 3, ring, rng);
    const auto sb = split_additive(b, 3, ring, rng);
    const auto sum = add_share_vectors(sa, sb, ring);
    EXPECT_EQ(reconstruct_additive(sum, ring), ring.add(a, b));
  }
}

TEST(AdditiveShareTest, AddShareVectorsSizeMismatchThrows) {
  const ModRing ring(8);
  const auto a = wrap_shares(std::vector<std::uint64_t>{1, 2});
  const auto b = wrap_shares(std::vector<std::uint64_t>{1});
  EXPECT_THROW(add_share_vectors(a, b, ring), eppi::ConfigError);
}

// Theorem 4.1 secrecy, empirically: given c-1 shares, the distribution of
// the first share is uniform regardless of the secret.
TEST(AdditiveShareTest, PartialSharesLookUniform) {
  const ModRing ring(16);
  eppi::Rng rng(42);
  constexpr int kTrials = 32000;
  // Two very different secrets; compare first-share histograms.
  std::vector<int> hist0(16, 0), hist15(16, 0);
  for (int t = 0; t < kTrials; ++t) {
    hist0[split_additive(0, 3, ring, rng)[0].reveal()]++;
    hist15[split_additive(15, 3, ring, rng)[0].reveal()]++;
  }
  const double expected = kTrials / 16.0;
  for (int v = 0; v < 16; ++v) {
    EXPECT_NEAR(hist0[v], expected, expected * 0.15);
    EXPECT_NEAR(hist15[v], expected, expected * 0.15);
  }
}

// With c == 1 the single "share" is the value itself (degenerate but legal).
TEST(AdditiveShareTest, SingleShareIsValue) {
  const ModRing ring(8);
  eppi::Rng rng(3);
  const auto shares = split_additive(5, 1, ring, rng);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].reveal(), 5u);
}

TEST(AdditiveShareTest, ValueReducedModQ) {
  const ModRing ring(5);
  eppi::Rng rng(9);
  const auto shares = split_additive(7, 3, ring, rng);  // 7 ≡ 2 (mod 5)
  EXPECT_EQ(reconstruct_additive(shares, ring), 2u);
}

}  // namespace
}  // namespace eppi::secret
