#include "secret/mod_ring.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace eppi::secret {
namespace {

TEST(ModRingTest, RejectsTinyModulus) {
  EXPECT_THROW(ModRing(0), eppi::ConfigError);
  EXPECT_THROW(ModRing(1), eppi::ConfigError);
}

TEST(ModRingTest, BasicArithmetic) {
  const ModRing ring(5);
  EXPECT_EQ(ring.add(3, 4), 2u);
  EXPECT_EQ(ring.sub(1, 3), 3u);
  EXPECT_EQ(ring.neg(2), 3u);
  EXPECT_EQ(ring.neg(0), 0u);
  EXPECT_EQ(ring.reduce(12), 2u);
}

TEST(ModRingTest, PowerOfTwoDetection) {
  EXPECT_TRUE(ModRing(8).is_power_of_two());
  EXPECT_FALSE(ModRing(5).is_power_of_two());
  EXPECT_TRUE(ModRing(2).is_power_of_two());
}

TEST(ModRingTest, BitWidth) {
  EXPECT_EQ(ModRing(2).bit_width(), 1u);
  EXPECT_EQ(ModRing(5).bit_width(), 3u);  // residues up to 4
  EXPECT_EQ(ModRing(8).bit_width(), 3u);
  EXPECT_EQ(ModRing(256).bit_width(), 8u);
}

TEST(ModRingTest, PowerOfTwoForHoldsMaxSum) {
  for (const std::uint64_t max_sum : {0ull, 1ull, 5ull, 7ull, 8ull, 100ull}) {
    const ModRing ring = ModRing::power_of_two_for(max_sum);
    EXPECT_TRUE(ring.is_power_of_two());
    EXPECT_GT(ring.q(), max_sum);
    // Minimality: half the modulus would not suffice (except q == 2).
    if (ring.q() > 2) {
      EXPECT_LE(ring.q() / 2, max_sum);
    }
  }
}

class ModRingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModRingSweep, AddSubNegAreConsistent) {
  const ModRing ring(GetParam());
  const std::uint64_t q = ring.q();
  for (std::uint64_t a = 0; a < std::min<std::uint64_t>(q, 16); ++a) {
    for (std::uint64_t b = 0; b < std::min<std::uint64_t>(q, 16); ++b) {
      const std::uint64_t sum = ring.add(a, b);
      EXPECT_EQ(sum, (a + b) % q);
      EXPECT_EQ(ring.sub(sum, b), a % q);
      EXPECT_EQ(ring.add(a, ring.neg(a)), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ModRingSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 97, 1024));

}  // namespace
}  // namespace eppi::secret
