#include "secret/reshare.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "secret/additive_share.h"
#include "secret/sec_sum_share.h"

namespace eppi::secret {
namespace {

using eppi::net::Cluster;
using eppi::net::PartyContext;
using eppi::net::PartyId;

TEST(ReshareTest, SumsAreUnchanged) {
  constexpr std::size_t kC = 3;
  constexpr std::size_t kN = 16;
  const ModRing ring(1 << 10);
  eppi::Rng rng(1);
  // Fabricate share vectors for known sums.
  std::vector<std::uint64_t> sums(kN);
  std::vector<std::vector<SecretU64>> shares(kC, std::vector<SecretU64>(kN));
  for (std::size_t j = 0; j < kN; ++j) {
    sums[j] = rng.next_below(ring.q());
    const auto split = split_additive(sums[j], kC, ring, rng);
    for (std::size_t i = 0; i < kC; ++i) shares[i][j] = split[i];
  }

  Cluster cluster(kC, 9);
  std::vector<std::vector<SecretU64>> updated(kC);
  cluster.run([&](PartyContext& ctx) {
    const std::vector<PartyId> parties{0, 1, 2};
    updated[ctx.id()] =
        run_reshare_party(ctx, parties, shares[ctx.id()], ring);
  });

  // The test plays all coordinators, so opening every share is legitimate.
  for (std::size_t j = 0; j < kN; ++j) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kC; ++i) {
      total = ring.add(total, updated[i][j].reveal());
    }
    EXPECT_EQ(total, sums[j]) << "identity " << j;
  }
}

TEST(ReshareTest, SharesActuallyChange) {
  constexpr std::size_t kC = 2;
  const ModRing ring(1 << 12);
  const std::vector<std::vector<SecretU64>> shares{
      wrap_shares(std::vector<std::uint64_t>(64, 7)),
      wrap_shares(std::vector<std::uint64_t>(64, 11))};
  Cluster cluster(kC, 3);
  std::vector<std::vector<SecretU64>> updated(kC);
  cluster.run([&](PartyContext& ctx) {
    const std::vector<PartyId> parties{0, 1};
    updated[ctx.id()] =
        run_reshare_party(ctx, parties, shares[ctx.id()], ring);
  });
  std::size_t unchanged = 0;
  for (std::size_t j = 0; j < 64; ++j) {
    if (updated[0][j].reveal() == shares[0][j].reveal()) ++unchanged;
  }
  EXPECT_LT(unchanged, 3u);  // re-randomization touches ~every entry
}

TEST(ReshareTest, OldAndNewViewsAreIndependent) {
  // A mobile adversary pooling coordinator 0's OLD share and coordinator
  // 1's NEW share must still see uniform noise: old + new-of-other should
  // not reconstruct the secret.
  constexpr std::size_t kC = 2;
  constexpr std::size_t kN = 4096;
  const ModRing ring(1 << 8);
  eppi::Rng rng(5);
  const std::uint64_t secret = 42;
  std::vector<std::vector<SecretU64>> shares(kC, std::vector<SecretU64>(kN));
  for (std::size_t j = 0; j < kN; ++j) {
    const auto split = split_additive(secret, kC, ring, rng);
    shares[0][j] = split[0];
    shares[1][j] = split[1];
  }
  Cluster cluster(kC, 11);
  std::vector<std::vector<SecretU64>> updated(kC);
  cluster.run([&](PartyContext& ctx) {
    const std::vector<PartyId> parties{0, 1};
    updated[ctx.id()] =
        run_reshare_party(ctx, parties, shares[ctx.id()], ring);
  });
  // Histogram of old_0 + new_1 mod q: uniform if resharing decorrelated
  // the epochs (it would be constant = secret without resharing).
  // The adversary's pooled view, opened deliberately for the histogram.
  std::vector<std::size_t> hist(ring.q(), 0);
  for (std::size_t j = 0; j < kN; ++j) {
    ++hist[ring.add(shares[0][j].reveal(), updated[1][j].reveal())];
  }
  // Chi-squared against uniform: with q-1 = 255 degrees of freedom the
  // statistic concentrates near 255; without resharing the histogram is a
  // point mass (chi2 ~ kN * q). Check the aggregate, not per-bucket noise.
  const double expected = static_cast<double>(kN) / static_cast<double>(ring.q());
  double chi2 = 0.0;
  std::size_t max_bucket = 0;
  for (const std::size_t count : hist) {
    const double diff = static_cast<double>(count) - expected;
    chi2 += diff * diff / expected;
    max_bucket = std::max(max_bucket, count);
  }
  EXPECT_LT(chi2, 2.0 * static_cast<double>(ring.q()));
  EXPECT_LT(max_bucket, kN / 16);  // nowhere near a point mass
}

TEST(ReshareTest, Validates) {
  const ModRing ring(16);
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 const std::vector<PartyId> parties{0, 1};
                 const std::vector<SecretU64> empty;
                 (void)run_reshare_party(ctx, parties, empty, ring);
               }),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::secret
