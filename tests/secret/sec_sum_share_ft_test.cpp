// Dropout-tolerant SecSumShare: commit equals the plain protocol when
// nothing fails, provider crashes trigger a restart over the survivors, and
// coordinator crashes abort fast with a typed PartyFailure.
#include "secret/sec_sum_share.h"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>

#include "common/error.h"
#include "net/cluster.h"
#include "net/fault.h"

namespace eppi::secret {
namespace {

using eppi::net::Cluster;
using eppi::net::FaultScenario;
using eppi::net::PartyContext;
using eppi::net::PartyId;
using namespace std::chrono_literals;

SecSumShareFtOptions fast_ft() {
  SecSumShareFtOptions options;
  options.stage_timeout = 150ms;
  options.max_attempts = 3;
  return options;
}

const std::vector<std::vector<std::uint8_t>> kInputs{
    {1, 0, 1, 0, 1}, {1, 1, 0, 0, 0}, {1, 0, 0, 1, 0},
    {0, 1, 1, 0, 0}, {1, 0, 0, 0, 1}};
constexpr std::size_t kM = 5;
constexpr std::size_t kN = 5;

std::vector<std::uint64_t> committed_sums(
    const std::vector<SecSumShareOutcome>& outcomes, std::size_t c) {
  const ModRing ring(outcomes[0].q);
  std::vector<std::uint64_t> sums(kN, 0);
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      sums[j] = ring.add(sums[j], (*outcomes[i].shares)[j].reveal());
    }
  }
  return sums;
}

TEST(SecSumShareFtTest, FaultFreeRunCommitsFirstAttempt) {
  const SecSumShareParams params{3, 0, kN};
  Cluster cluster(kM);
  std::vector<SecSumShareOutcome> outcomes(kM);
  cluster.run([&](PartyContext& ctx) {
    outcomes[ctx.id()] = run_sec_sum_share_party_ft(
        ctx, params, kInputs[ctx.id()], fast_ft());
  });

  std::vector<PartyId> everyone(kM);
  std::iota(everyone.begin(), everyone.end(), PartyId{0});
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.survivors, everyone);
    EXPECT_EQ(outcome.attempts, 1u);
    EXPECT_EQ(outcome.q, resolve_ring(params, kM).q());
  }
  EXPECT_EQ(committed_sums(outcomes, params.c),
            plain_frequency_sums(kInputs, kN));
}

TEST(SecSumShareFtTest, ProviderCrashRestartsOverSurvivors) {
  const SecSumShareParams params{3, 0, kN};
  Cluster cluster(kM);
  // Party 4 distributes its c-1 = 2 ring shares, then dies on the
  // super-share send: mid-protocol, after partially participating.
  cluster.inject_faults(FaultScenario::parse("crash 4 after 2 sends"));
  std::vector<SecSumShareOutcome> outcomes(kM);
  cluster.run([&](PartyContext& ctx) {
    outcomes[ctx.id()] = run_sec_sum_share_party_ft(
        ctx, params, kInputs[ctx.id()], fast_ft());
  });

  EXPECT_EQ(cluster.crashed(), std::vector<PartyId>{4});
  const std::vector<PartyId> expected_survivors{0, 1, 2, 3};
  for (std::size_t i = 0; i + 1 < kM; ++i) {
    EXPECT_EQ(outcomes[i].survivors, expected_survivors) << "party " << i;
    EXPECT_EQ(outcomes[i].attempts, 2u) << "party " << i;
  }
  // The committed sums cover exactly the survivors' inputs: the crashed
  // party's abandoned attempt-1 shares contribute nothing.
  const std::vector<std::vector<std::uint8_t>> survivor_inputs(
      kInputs.begin(), kInputs.begin() + 4);
  EXPECT_EQ(committed_sums(outcomes, params.c),
            plain_frequency_sums(survivor_inputs, kN));
}

TEST(SecSumShareFtTest, CoordinatorCrashAbortsWithTypedFailure) {
  const SecSumShareParams params{3, 0, kN};
  Cluster cluster(kM);
  cluster.inject_faults(FaultScenario::parse("crash 1 after 0 sends"));
  try {
    cluster.run([&](PartyContext& ctx) {
      (void)run_sec_sum_share_party_ft(ctx, params, kInputs[ctx.id()],
                                       fast_ft());
    });
    FAIL() << "expected PartyFailure";
  } catch (const eppi::PartyFailure& failure) {
    EXPECT_EQ(failure.party(), PartyId{1});
  }
  EXPECT_EQ(cluster.crashed(), std::vector<PartyId>{1});
}

TEST(SecSumShareFtTest, ViewLeaderCrashSurfacesAsPartyFailure) {
  // Party 0 doubles as the view leader; its death must not hang the others.
  const SecSumShareParams params{3, 0, kN};
  Cluster cluster(kM);
  cluster.inject_faults(FaultScenario::parse("crash 0 after 1 sends"));
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 (void)run_sec_sum_share_party_ft(ctx, params,
                                                  kInputs[ctx.id()],
                                                  fast_ft());
               }),
               eppi::PartyFailure);
  EXPECT_EQ(cluster.crashed(), std::vector<PartyId>{0});
}

TEST(SecSumShareFtTest, AttemptBudgetExhaustionAborts) {
  const SecSumShareParams params{3, 0, kN};
  Cluster cluster(kM);
  cluster.inject_faults(FaultScenario::parse("crash 4 after 2 sends"));
  SecSumShareFtOptions options = fast_ft();
  options.max_attempts = 1;  // no restart budget: the dropout is fatal
  try {
    cluster.run([&](PartyContext& ctx) {
      (void)run_sec_sum_share_party_ft(ctx, params, kInputs[ctx.id()],
                                       options);
    });
    FAIL() << "expected PartyFailure";
  } catch (const eppi::PartyFailure& failure) {
    EXPECT_EQ(failure.party(), PartyId{4});
  }
}

TEST(SecSumShareFtTest, TooFewSurvivorsAborts) {
  // c == m: losing any provider leaves fewer than c survivors.
  const SecSumShareParams params{3, 0, kN};
  Cluster cluster(3);
  cluster.inject_faults(FaultScenario::parse("crash 2 after 2 sends"));
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 (void)run_sec_sum_share_party_ft(ctx, params,
                                                  kInputs[ctx.id()],
                                                  fast_ft());
               }),
               eppi::PartyFailure);
}

TEST(SecSumShareFtTest, PaperModulusIsHonoredAcrossRestart) {
  // Explicit q = 7 (cf. the paper's q = 5 walkthrough) must survive the
  // restart path unchanged — only auto moduli re-resolve.
  const SecSumShareParams params{2, 7, kN};
  Cluster cluster(4);
  cluster.inject_faults(FaultScenario::parse("crash 3 after 1 sends"));
  std::vector<SecSumShareOutcome> outcomes(4);
  cluster.run([&](PartyContext& ctx) {
    outcomes[ctx.id()] = run_sec_sum_share_party_ft(
        ctx, params, kInputs[ctx.id()], fast_ft());
  });
  EXPECT_EQ(outcomes[0].q, 7u);
  EXPECT_EQ(outcomes[0].attempts, 2u);
  const std::vector<std::vector<std::uint8_t>> survivor_inputs(
      kInputs.begin(), kInputs.begin() + 3);
  EXPECT_EQ(committed_sums(outcomes, params.c),
            plain_frequency_sums(survivor_inputs, kN));
}

}  // namespace
}  // namespace eppi::secret
