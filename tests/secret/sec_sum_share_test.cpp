#include "secret/sec_sum_share.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "secret/additive_share.h"

namespace eppi::secret {
namespace {

using eppi::net::Cluster;
using eppi::net::PartyContext;

struct RunOutput {
  std::vector<std::vector<SecretU64>> coordinator_shares;  // c vectors
  eppi::net::CostSnapshot cost;
};

RunOutput run_protocol(const std::vector<std::vector<std::uint8_t>>& inputs,
                       const SecSumShareParams& params,
                       std::uint64_t seed = 1) {
  const std::size_t m = inputs.size();
  Cluster cluster(m, seed);
  RunOutput out;
  out.coordinator_shares.resize(params.c);
  cluster.run([&](PartyContext& ctx) {
    const auto result =
        run_sec_sum_share_party(ctx, params, inputs[ctx.id()]);
    if (ctx.id() < params.c) {
      ASSERT_TRUE(result.has_value());
      out.coordinator_shares[ctx.id()] = *result;
    } else {
      EXPECT_FALSE(result.has_value());
    }
  });
  out.cost = cluster.meter().snapshot();
  return out;
}

std::vector<std::uint64_t> reconstruct_sums(const RunOutput& out,
                                            const ModRing& ring,
                                            std::size_t n) {
  // The test plays all c coordinators at once, so opening is legitimate.
  std::vector<std::uint64_t> sums(n, 0);
  for (const auto& vec : out.coordinator_shares) {
    for (std::size_t j = 0; j < n; ++j) {
      sums[j] = ring.add(sums[j], vec[j].reveal());
    }
  }
  return sums;
}

// The paper's Fig. 3 walkthrough: m=5 providers, c=3, q=5, identity held by
// p1 and p2; the reconstructed frequency must be 2.
TEST(SecSumShareTest, PaperFigure3Example) {
  const std::vector<std::vector<std::uint8_t>> inputs{{0}, {1}, {1}, {0}, {0}};
  const SecSumShareParams params{3, 5, 1};
  const auto out = run_protocol(inputs, params);
  const ModRing ring(5);
  EXPECT_EQ(reconstruct_sums(out, ring, 1)[0], 2u);
}

class SecSumSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t /*m*/, std::size_t /*c*/, std::size_t /*n*/>> {
};

TEST_P(SecSumSweep, ReconstructedSumsMatchPlainFrequencies) {
  const auto [m, c, n] = GetParam();
  eppi::Rng rng(static_cast<std::uint64_t>(m * 1000 + c * 10 + n));
  std::vector<std::vector<std::uint8_t>> inputs(m,
                                                std::vector<std::uint8_t>(n));
  for (auto& row : inputs) {
    for (auto& bit : row) bit = rng.bernoulli(0.4) ? 1 : 0;
  }
  const SecSumShareParams params{c, 0, n};
  const auto out = run_protocol(inputs, params);
  const ModRing ring = resolve_ring(params, m);
  EXPECT_GT(ring.q(), m);
  const auto sums = reconstruct_sums(out, ring, n);
  const auto expected = plain_frequency_sums(inputs, n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(sums[j], expected[j]) << "identity " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SecSumSweep,
    ::testing::Values(std::make_tuple(2, 2, 3), std::make_tuple(3, 3, 1),
                      std::make_tuple(5, 3, 8), std::make_tuple(8, 3, 16),
                      std::make_tuple(16, 5, 4), std::make_tuple(12, 2, 10),
                      std::make_tuple(7, 7, 5), std::make_tuple(20, 4, 32)));

TEST(SecSumShareTest, TwoRoundsRegardlessOfNetworkSize) {
  for (const std::size_t m : {4u, 8u, 16u}) {
    std::vector<std::vector<std::uint8_t>> inputs(
        m, std::vector<std::uint8_t>(2, 1));
    const SecSumShareParams params{3, 0, 2};
    const auto out = run_protocol(inputs, params);
    EXPECT_EQ(out.cost.rounds, 2u) << "m=" << m;
  }
}

TEST(SecSumShareTest, MessageCountIsLinearInProviders) {
  // Each provider sends c-1 share messages plus 1 super-share message.
  constexpr std::size_t kM = 10;
  constexpr std::size_t kC = 3;
  std::vector<std::vector<std::uint8_t>> inputs(kM,
                                                std::vector<std::uint8_t>(1));
  const SecSumShareParams params{kC, 0, 1};
  const auto out = run_protocol(inputs, params);
  EXPECT_EQ(out.cost.messages, kM * kC);
}

TEST(SecSumShareTest, CoordinatorShareIsNotThePlainFrequency) {
  // Coordinators individually learn nothing: with a fixed all-ones input,
  // coordinator 0's share should vary across seeds (it is masked), rather
  // than equal the true frequency.
  std::vector<std::vector<std::uint8_t>> inputs(6,
                                                std::vector<std::uint8_t>(1, 1));
  const SecSumShareParams params{3, 0, 1};
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto out = run_protocol(inputs, params, seed);
    seen.insert(out.coordinator_shares[0][0].reveal());
  }
  EXPECT_GT(seen.size(), 3u);
}

TEST(SecSumShareTest, RejectsInvalidParameters) {
  std::vector<std::vector<std::uint8_t>> inputs(4,
                                                std::vector<std::uint8_t>(1));
  {
    Cluster cluster(4);
    const SecSumShareParams params{1, 0, 1};  // c < 2
    EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                   (void)run_sec_sum_share_party(ctx, params,
                                                 inputs[ctx.id()]);
                 }),
                 eppi::ConfigError);
  }
  {
    Cluster cluster(4);
    const SecSumShareParams params{5, 0, 1};  // c > m
    EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                   (void)run_sec_sum_share_party(ctx, params,
                                                 inputs[ctx.id()]);
                 }),
                 eppi::ConfigError);
  }
}

TEST(SecSumShareTest, RejectsNonBooleanInput) {
  Cluster cluster(3);
  const SecSumShareParams params{2, 0, 1};
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 const std::vector<std::uint8_t> bad{2};
                 (void)run_sec_sum_share_party(ctx, params, bad);
               }),
               eppi::ConfigError);
}

TEST(SecSumShareTest, GeneralModulusWorks) {
  // Non-power-of-two modulus, paper style.
  std::vector<std::vector<std::uint8_t>> inputs(6,
                                                std::vector<std::uint8_t>(4));
  eppi::Rng rng(77);
  for (auto& row : inputs) {
    for (auto& bit : row) bit = rng.bernoulli(0.5) ? 1 : 0;
  }
  const SecSumShareParams params{3, 7, 4};
  const auto out = run_protocol(inputs, params);
  const ModRing ring(7);
  const auto sums = reconstruct_sums(out, ring, 4);
  const auto expected = plain_frequency_sums(inputs, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(sums[j], expected[j] % 7);
  }
}

}  // namespace
}  // namespace eppi::secret
