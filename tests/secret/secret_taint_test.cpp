// Positive tests for the Secret<T> taint type: the audited escape hatches
// must round-trip values faithfully, and the ring/XOR operations must match
// plain arithmetic. The negative half of the contract — logging, comparison,
// and implicit conversion refusing to compile — lives in tests/compile_fail/.
#include "secret/secret.h"

#include <gtest/gtest.h>

#include <type_traits>

#include "common/rng.h"
#include "secret/additive_share.h"
#include "secret/sec_sum_share.h"
#include "net/cluster.h"

namespace eppi::secret {
namespace {

using eppi::net::Cluster;
using eppi::net::PartyContext;

TEST(SecretTaintTest, RevealRoundTripsConstruction) {
  for (const std::uint64_t v : {0ull, 1ull, 41ull, ~0ull}) {
    const SecretU64 s(v);
    EXPECT_EQ(s.reveal(), v);
    EXPECT_EQ(s.unwrap_for_wire(), v);
  }
  const SecretBit b(true);
  EXPECT_TRUE(b.reveal());
}

TEST(SecretTaintTest, DefaultConstructionIsShareOfZero) {
  const SecretU64 s;
  EXPECT_EQ(s.reveal(), 0u);
  const SecretBit b;
  EXPECT_FALSE(b.reveal());
}

TEST(SecretTaintTest, RingOpsMatchPlainArithmetic) {
  const ModRing ring(1 << 10);
  eppi::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next_below(ring.q());
    const std::uint64_t b = rng.next_below(ring.q());
    const std::uint64_t k = rng.next_below(ring.q());
    const SecretU64 sa(a), sb(b);
    EXPECT_EQ(sa.add(sb, ring).reveal(), ring.add(a, b));
    EXPECT_EQ(sa.sub(sb, ring).reveal(), ring.sub(a, b));
    EXPECT_EQ(sa.neg(ring).reveal(), ring.neg(a));
    EXPECT_EQ(sa.scale(k, ring).reveal(), ring.mul(a, k));
    EXPECT_EQ(sa.add_public(k, ring).reveal(), ring.add(a, ring.reduce(k)));
  }
}

TEST(SecretTaintTest, XorOpsMatchPlainBits) {
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const SecretBit sa(a), sb(b);
      EXPECT_EQ((sa ^ sb).reveal(), a != b);
      EXPECT_EQ((sa ^ b).reveal(), a != b);
      EXPECT_EQ((sa & b).reveal(), a && b);
      SecretBit acc(a);
      acc ^= sb;
      EXPECT_EQ(acc.reveal(), a != b);
    }
  }
}

TEST(SecretTaintTest, BulkHelpersRoundTrip) {
  const std::vector<std::uint64_t> raw{5, 0, 999, 42};
  const auto wrapped = wrap_shares(raw);
  ASSERT_EQ(wrapped.size(), raw.size());
  EXPECT_EQ(wire_shares(wrapped), raw);
  EXPECT_EQ(reveal_shares(wrapped), raw);
}

// Secrets never become *less* protected by moving through the protocol: the
// end-to-end check that SecSumShare's tainted output still reconstructs the
// true frequencies via the audited reveal() path.
TEST(SecretTaintTest, RevealRoundTripsThroughSecSumShare) {
  constexpr std::size_t kM = 6;
  constexpr std::size_t kC = 3;
  constexpr std::size_t kN = 8;
  eppi::Rng rng(11);
  std::vector<std::vector<std::uint8_t>> inputs(kM,
                                                std::vector<std::uint8_t>(kN));
  std::vector<std::uint64_t> freqs(kN, 0);
  for (auto& row : inputs) {
    for (std::size_t j = 0; j < kN; ++j) {
      row[j] = rng.bernoulli(0.5) ? 1 : 0;
      freqs[j] += row[j];
    }
  }
  const SecSumShareParams params{kC, 0, kN};
  const auto ring = resolve_ring(params, kM);

  Cluster cluster(kM, 13);
  std::vector<std::vector<SecretU64>> views(kC);
  cluster.run([&](PartyContext& ctx) {
    const auto result = run_sec_sum_share_party(ctx, params, inputs[ctx.id()]);
    if (ctx.id() < kC) views[ctx.id()] = *result;
  });

  for (std::size_t j = 0; j < kN; ++j) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kC; ++i) {
      total = ring.add(total, views[i][j].reveal());
    }
    EXPECT_EQ(total, freqs[j]) << "identity " << j;
  }
}

// Static half of the contract that can be expressed as type traits (the
// full compile-fail probes live in tests/compile_fail/).
static_assert(!std::is_convertible_v<SecretU64, std::uint64_t>,
              "shares must not convert to their payload type");
static_assert(!std::is_convertible_v<SecretU64, bool>,
              "shares must not be branch conditions");
static_assert(!std::is_convertible_v<std::uint64_t, SecretU64>,
              "public values must not silently become shares");
static_assert(std::is_copy_constructible_v<SecretU64> &&
                  std::is_move_constructible_v<SecretBytes>,
              "shares still move through containers");

}  // namespace
}  // namespace eppi::secret
