#include "secret/secure_aggregates.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "common/rng.h"
#include "secret/sec_sum_share.h"

namespace eppi::secret {
namespace {

using eppi::net::Cluster;
using eppi::net::PartyContext;
using eppi::net::PartyId;

// Full pipeline: SecSumShare over m providers, then the aggregates protocol
// among the c coordinators; returns the coordinators' agreed result.
AggregateResult run_pipeline(
    const std::vector<std::vector<std::uint8_t>>& inputs, std::size_t c,
    const ModRing& ring, std::uint64_t seed = 1) {
  const std::size_t m = inputs.size();
  const std::size_t n = inputs[0].size();
  Cluster cluster(m, seed);
  std::vector<AggregateResult> results(c);
  const SecSumShareParams params{c, ring.q(), n};
  cluster.run([&](PartyContext& ctx) {
    const auto shares =
        run_sec_sum_share_party(ctx, params, inputs[ctx.id()]);
    if (ctx.id() >= c) return;
    std::vector<PartyId> parties;
    for (std::size_t i = 0; i < c; ++i) {
      parties.push_back(static_cast<PartyId>(i));
    }
    results[ctx.id()] =
        run_secure_aggregates_party(ctx, parties, *shares, ring);
  });
  for (std::size_t i = 1; i < c; ++i) {
    EXPECT_EQ(results[i].total, results[0].total);
    EXPECT_EQ(results[i].total_squares, results[0].total_squares);
  }
  return results[0];
}

TEST(AggregatesRingTest, HoldsSumOfSquares) {
  const ModRing ring = aggregates_ring_for(100, 50);
  EXPECT_GT(ring.q(), 50ull * 100 * 100);
  EXPECT_TRUE(ring.is_power_of_two());
}

TEST(PlainAggregatesTest, ComputesMoments) {
  const std::vector<std::uint64_t> freqs{2, 4, 6};
  const auto result = plain_aggregates(freqs);
  EXPECT_EQ(result.total, 12u);
  EXPECT_EQ(result.total_squares, 4u + 16u + 36u);
  EXPECT_DOUBLE_EQ(result.mean, 4.0);
  EXPECT_NEAR(result.variance, 8.0 / 3.0, 1e-12);
}

TEST(PlainAggregatesTest, EmptyInput) {
  const auto result = plain_aggregates({});
  EXPECT_EQ(result.identities, 0u);
  EXPECT_EQ(result.total, 0u);
  EXPECT_EQ(result.mean, 0.0);
}

class AggregatesSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t /*m*/, std::size_t /*c*/, std::size_t /*n*/>> {
};

TEST_P(AggregatesSweep, SecureResultMatchesPlain) {
  const auto [m, c, n] = GetParam();
  eppi::Rng rng(static_cast<std::uint64_t>(m * 131 + c * 17 + n));
  std::vector<std::vector<std::uint8_t>> inputs(m,
                                                std::vector<std::uint8_t>(n));
  std::vector<std::uint64_t> freqs(n, 0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      inputs[i][j] = rng.bernoulli(0.4) ? 1 : 0;
      freqs[j] += inputs[i][j];
    }
  }
  const ModRing ring = aggregates_ring_for(m, n);
  const auto secure = run_pipeline(inputs, c, ring);
  const auto plain = plain_aggregates(freqs);
  EXPECT_EQ(secure.total, plain.total);
  EXPECT_EQ(secure.total_squares, plain.total_squares);
  EXPECT_DOUBLE_EQ(secure.mean, plain.mean);
  EXPECT_NEAR(secure.variance, plain.variance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, AggregatesSweep,
    ::testing::Values(std::make_tuple(4, 2, 3), std::make_tuple(6, 3, 8),
                      std::make_tuple(10, 3, 16), std::make_tuple(9, 5, 4),
                      std::make_tuple(12, 4, 32)));

TEST(SecureAggregatesTest, RejectsNonMember) {
  Cluster cluster(3);
  const ModRing ring(1 << 10);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 if (ctx.id() != 2) return;
                 const auto shares =
                     wrap_shares(std::vector<std::uint64_t>{1, 2});
                 const std::vector<PartyId> parties{0, 1};
                 (void)run_secure_aggregates_party(ctx, parties, shares,
                                                   ring);
               }),
               eppi::ConfigError);
}

TEST(SecureAggregatesTest, RejectsEmptyShares) {
  Cluster cluster(2);
  const ModRing ring(1 << 10);
  EXPECT_THROW(cluster.run([&](PartyContext& ctx) {
                 const std::vector<SecretU64> shares;
                 const std::vector<PartyId> parties{0, 1};
                 (void)run_secure_aggregates_party(ctx, parties, shares,
                                                   ring);
               }),
               eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::secret
