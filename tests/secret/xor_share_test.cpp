#include "secret/xor_share.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace eppi::secret {
namespace {

TEST(XorShareTest, BitRoundTrip) {
  eppi::Rng rng(1);
  for (const bool value : {false, true}) {
    for (const std::size_t n : {1u, 2u, 3u, 8u}) {
      for (int trial = 0; trial < 50; ++trial) {
        const auto shares = split_xor_bit(value, n, rng);
        ASSERT_EQ(shares.size(), n);
        EXPECT_EQ(reconstruct_xor_bit(shares), value);
      }
    }
  }
}

TEST(XorShareTest, ReconstructBitApi) {
  const std::vector<SecretBit> three{SecretBit(true), SecretBit(false),
                                     SecretBit(true)};
  const std::vector<SecretBit> one{SecretBit(true)};
  EXPECT_EQ(reconstruct_xor_bit(three), false);
  EXPECT_EQ(reconstruct_xor_bit(one), true);
  EXPECT_THROW(reconstruct_xor_bit({}), eppi::ConfigError);
}

TEST(XorShareTest, SingleShareIsValue) {
  eppi::Rng rng(3);
  const auto shares = split_xor_bit(true, 1, rng);
  EXPECT_TRUE(shares[0].reveal());
}

TEST(XorShareTest, PartialSharesAreBalanced) {
  eppi::Rng rng(4);
  int ones = 0;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    ones += split_xor_bit(true, 3, rng)[0].reveal() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.5, 0.02);
}

TEST(XorSharePackedTest, RoundTrip) {
  eppi::Rng rng(5);
  const std::vector<std::uint8_t> bits{0xDE, 0xAD, 0xBE, 0xEF};
  for (const std::size_t n : {1u, 2u, 5u}) {
    const auto shares = split_xor_packed(bits, 32, n, rng);
    ASSERT_EQ(shares.size(), n);
    EXPECT_EQ(reconstruct_xor_packed(shares), bits);
  }
}

TEST(XorSharePackedTest, TailBitsMasked) {
  eppi::Rng rng(6);
  const std::vector<std::uint8_t> bits{0xFF, 0x07};  // 11 valid bits
  const auto shares = split_xor_packed(bits, 11, 3, rng);
  const auto back = reconstruct_xor_packed(shares);
  EXPECT_EQ(back[0], 0xFF);
  EXPECT_EQ(back[1] & 0x07, 0x07);
  EXPECT_EQ(back[1] & 0xF8, 0x00);  // tail stays zero
  for (const auto& share : shares) {
    // shares carry no stray tail bits
    EXPECT_EQ(share.reveal()[1] & 0xF8, 0x00);
  }
}

TEST(XorSharePackedTest, Validates) {
  eppi::Rng rng(7);
  const std::vector<std::uint8_t> bits{0x01};
  EXPECT_THROW(split_xor_packed(bits, 16, 2, rng), eppi::ConfigError);
  EXPECT_THROW(reconstruct_xor_packed({}), eppi::ConfigError);
  std::vector<SecretBytes> ragged;
  ragged.emplace_back(std::vector<std::uint8_t>{1, 2});
  ragged.emplace_back(std::vector<std::uint8_t>{3});
  EXPECT_THROW(reconstruct_xor_packed(ragged), eppi::ConfigError);
}

}  // namespace
}  // namespace eppi::secret
