// Delta-record durability: the MANIFEST journal is the only artifact of an
// incremental epoch, so every byte of it is a potential crash boundary. The
// suite drives a base + two deltas workload (the second one with membership
// churn and a grown shape), then proves:
//
//   * replayed loads are byte-identical to what was committed;
//   * truncating the journal at EVERY byte recovers to base or base+k intact
//     deltas — never a half-applied delta;
//   * killing the process at every storage operation leaves a store that
//     recovers, fscks clean, and resumes into a byte-identical rebuild;
//   * a delta whose base epoch file rots is quarantined (not served), and
//     the journaled membership (joined/left) survives a restart.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "core/epoch_manager.h"
#include "core/epoch_store.h"
#include "core/index_io.h"
#include "storage/faulty_vfs.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

using eppi::storage::FaultyVfs;
using eppi::storage::MemVfs;
using eppi::storage::SimulatedStorageCrash;
using eppi::storage::StorageFaultScenario;

constexpr char kDir[] = "store";
constexpr char kManifest[] = "store/MANIFEST";
constexpr std::uint64_t kMasterKey = 77;

eppi::BitMatrix truth_epoch1() {
  eppi::BitMatrix truth(4, 12);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if ((i * 7 + j * 3) % 5 == 0) truth.set(i, j, true);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) truth.set(i, 0, true);  // a common id
  return truth;
}

eppi::BitMatrix truth_epoch2() {
  eppi::BitMatrix truth = truth_epoch1();
  truth.set(1, 5, true);  // only columns 5 and 7 change
  truth.set(2, 7, true);
  return truth;
}

// Provider 3 leaves (its row is withdrawn), provider 4 joins: the shape
// grows to 5x12 and the dirty set covers every identity either row held.
eppi::BitMatrix truth_epoch3() {
  const eppi::BitMatrix prev = truth_epoch2();
  eppi::BitMatrix truth(5, 12);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if (prev.get(i, j)) truth.set(i, j, true);
    }
  }
  truth.set(4, 1, true);
  truth.set(4, 6, true);
  return truth;
}

EpochManager::DeltaRequest request_epoch2() {
  EpochManager::DeltaRequest req;
  req.dirty = {5, 7};
  return req;
}

EpochManager::DeltaRequest request_epoch3() {
  EpochManager::DeltaRequest req;
  req.dirty = {0, 1, 3, 6, 8};  // former row-3 bits plus the joiner's bits
  req.joined = {4};
  req.left = {3};
  return req;
}

EpochManager::Options manager_options() {
  EpochManager::Options options;
  options.master_key = kMasterKey;
  return options;
}

void run_workload(eppi::storage::Vfs& vfs) {
  EpochStore store(vfs, kDir);
  EpochManager manager(manager_options());
  manager.attach_store(store);
  const std::vector<double> epsilons(12, 0.5);
  manager.rebuild(truth_epoch1(), epsilons);
  manager.rebuild_delta(truth_epoch2(), epsilons, request_epoch2());
  manager.rebuild_delta(truth_epoch3(), epsilons, request_epoch3());
}

// The three committed matrices of an uninterrupted run, by epoch id.
std::vector<std::vector<std::uint8_t>> reference_epochs() {
  MemVfs vfs;
  run_workload(vfs);
  EpochStore store(vfs, kDir);
  std::vector<std::vector<std::uint8_t>> bytes;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    bytes.push_back(save_index_bytes(store.load_epoch(e)));
  }
  return bytes;
}

TEST(DeltaStoreTest, IncrementalEpochsAreJournaledAsDeltas) {
  MemVfs vfs;
  run_workload(vfs);
  EpochStore store(vfs, kDir);
  ASSERT_EQ(store.lineage().size(), 3u);
  EXPECT_FALSE(store.lineage()[0].is_delta);
  EXPECT_TRUE(store.lineage()[1].is_delta);   // the delta path engaged,
  EXPECT_TRUE(store.lineage()[2].is_delta);   // not a silent full fallback
  EXPECT_EQ(store.deltas_since_full(), 2u);
  // Only ONE index file exists: deltas live in the journal alone.
  std::size_t idx_files = 0;
  for (const auto& name : vfs.list_dir(kDir)) {
    if (name.ends_with(".idx")) ++idx_files;
  }
  EXPECT_EQ(idx_files, 1u);
  // The delta record carries the membership change durably.
  const EpochStore::EpochDelta& rec = store.delta_record(3);
  EXPECT_EQ(rec.joined, std::vector<std::uint32_t>{4});
  EXPECT_EQ(rec.left, std::vector<std::uint32_t>{3});
}

TEST(DeltaStoreTest, ReplayedLoadsMatchAcrossReopen) {
  const auto reference = reference_epochs();
  MemVfs vfs;
  run_workload(vfs);
  // A second open replays base+deltas from scratch; every epoch must load
  // byte-identically, including the intermediate delta epoch.
  EpochStore store(vfs, kDir);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    EXPECT_EQ(save_index_bytes(store.load_epoch(e)), reference[e - 1])
        << "epoch " << e;
  }
}

TEST(DeltaStoreTest, TruncationAtEveryByteRecoversToWholeEpochs) {
  const auto reference = reference_epochs();
  MemVfs base_vfs;
  run_workload(base_vfs);
  const auto manifest = base_vfs.read_file(kManifest);
  ASSERT_GT(manifest.size(), 64u);

  for (std::size_t len = 0; len <= manifest.size(); ++len) {
    SCOPED_TRACE("manifest truncated to " + std::to_string(len) + " of " +
                 std::to_string(manifest.size()) + " bytes");
    MemVfs vfs;
    run_workload(vfs);
    std::vector<std::uint8_t> prefix(manifest.begin(),
                                     manifest.begin() + len);
    vfs.write_file(kManifest, prefix);

    // Recovery must open the store (or reject an unusable journal head —
    // never crash or serve garbage).
    try {
      EpochStore store(vfs, kDir);
      // Whatever survived must be WHOLE epochs: each intact record loads to
      // exactly the matrix committed for that epoch id — a half-applied
      // delta would produce bytes matching none of them.
      for (const auto& rec : store.lineage()) {
        if (!rec.file_intact) continue;
        ASSERT_GE(rec.epoch, 1u);
        ASSERT_LE(rec.epoch, 3u);
        EXPECT_EQ(save_index_bytes(store.load_epoch(rec.epoch)),
                  reference[rec.epoch - 1]);
      }
      // And the repaired store passes fsck.
      EXPECT_TRUE(fsck_store(vfs, kDir).ok);
    } catch (const eppi::storage::StorageError&) {
      // A truncation inside the magic header is damage recovery refuses to
      // repair silently (losing the journal loses the sticky lineage).
      EXPECT_LT(len, 16u);
    }
  }
}

TEST(DeltaStoreTest, CrashAtEveryOperationBoundary) {
  const auto reference = reference_epochs();
  MemVfs count_vfs;
  FaultyVfs counting(count_vfs);
  run_workload(counting);
  const std::uint64_t total = counting.ops();
  ASSERT_GE(total, 15u);

  const std::vector<double> epsilons(12, 0.5);
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k));
    MemVfs vfs;
    FaultyVfs faulty(vfs, StorageFaultScenario::crash_at(k));
    EXPECT_THROW(run_workload(faulty), SimulatedStorageCrash);
    vfs.crash();  // drop un-fsynced state

    EpochStore store(vfs, kDir);
    EXPECT_TRUE(fsck_store(vfs, kDir).ok);
    for (const auto& rec : store.lineage()) {
      if (rec.file_intact) {
        EXPECT_EQ(save_index_bytes(store.load_epoch(rec.epoch)),
                  reference[rec.epoch - 1]);
      }
    }

    // Resume: the first rebuild after a restart runs full (no in-memory
    // base), and must land on the exact bytes of the uninterrupted delta
    // run — sticky noise, mixing, and the journaled membership all
    // survived the crash.
    EpochManager manager(manager_options());
    manager.attach_store(store);
    const auto rebuilt =
        manager.rebuild_delta(truth_epoch3(), epsilons, request_epoch3());
    EXPECT_EQ(save_index_bytes(rebuilt.index), reference[2]);
  }
}

TEST(DeltaStoreTest, OrphanedDeltaIsQuarantinedNotServed) {
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    EpochManager manager(manager_options());
    manager.attach_store(store);
    const std::vector<double> epsilons(12, 0.5);
    manager.rebuild(truth_epoch1(), epsilons);
    manager.rebuild_delta(truth_epoch2(), epsilons, request_epoch2());
  }
  // Rot the base epoch's index file in place: epoch 1 gets quarantined, so
  // the delta at epoch 2 has no base to replay from.
  auto idx = vfs.read_file(std::string(kDir) + "/epoch-1.idx");
  idx[idx.size() / 2] ^= 0xFF;
  vfs.write_file(std::string(kDir) + "/epoch-1.idx", idx);

  EpochStore store(vfs, kDir);
  EXPECT_GE(store.recovery_report().quarantined, 2u);  // file + orphan delta
  EXPECT_FALSE(store.latest_epoch().has_value());
  EXPECT_THROW((void)store.load_epoch(2), eppi::ConfigError);
  // The orphaned record payload is preserved for post-mortems.
  bool kept = false;
  for (const auto& name : vfs.list_dir(std::string(kDir) + "/quarantine")) {
    if (name == "delta-2.rec") kept = true;
  }
  EXPECT_TRUE(kept);
  // The damaged store recovers into a usable one: epoch ids are not reused
  // and a fresh rebuild commits fine.
  EpochManager manager(manager_options());
  manager.attach_store(store);
  const std::vector<double> epsilons(12, 0.5);
  const auto rebuilt = manager.rebuild(truth_epoch2(), epsilons);
  EXPECT_EQ(rebuilt.epoch, 3u);
  EXPECT_TRUE(fsck_store(vfs, kDir).ok);
}

TEST(DeltaStoreTest, JournaledMembershipSurvivesRestart) {
  MemVfs vfs;
  run_workload(vfs);
  EpochStore store(vfs, kDir);
  EpochManager manager(manager_options());
  manager.attach_store(store);
  // Provider 3 retired at epoch 3; the restarted manager must know that
  // from the journal alone, or the next FULL rebuild would publish noise
  // in a retired row.
  EXPECT_EQ(manager.retired_count(), 1u);
  const std::vector<double> epsilons(12, 0.5);
  const auto rebuilt = manager.rebuild(truth_epoch3(), epsilons);
  for (std::size_t j = 0; j < 12; ++j) {
    EXPECT_FALSE(rebuilt.index.matrix().get(3, j)) << "col " << j;
  }
}

}  // namespace
}  // namespace eppi::core
