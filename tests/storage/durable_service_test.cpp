// Store-backed serving at the EpochManager / LocatorService level: sticky
// randomness survives restarts (the recorded key beats the configured one),
// serving resumes from the last committed epoch, and a failed distributed
// rebuild degrades to stale-but-served answers with visible staleness.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/bit_matrix.h"
#include "common/error.h"
#include "core/epoch_manager.h"
#include "core/epoch_store.h"
#include "core/locator_service.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

using eppi::storage::MemVfs;
using namespace std::chrono_literals;

constexpr char kDir[] = "store";

eppi::BitMatrix small_truth() {
  eppi::BitMatrix truth(5, 8);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if ((i + 2 * j) % 3 == 0) truth.set(i, j, true);
    }
  }
  return truth;
}

TEST(DurableServiceTest, StoredStickyKeyBeatsConfiguredKey) {
  MemVfs vfs;
  const std::vector<double> epsilons(8, 0.5);

  eppi::BitMatrix first_published;
  {
    EpochStore store(vfs, kDir);
    EpochManager::Options options;
    options.master_key = 1111;
    EpochManager manager(options);
    manager.attach_store(store);
    first_published = manager.rebuild(small_truth(), epsilons).index.matrix();
  }
  vfs.crash();

  // Relaunch with a DIFFERENT configured key — a misconfigured restart. The
  // stored lineage must win, or the publication noise rotates and the
  // cross-epoch intersection attack comes back.
  EpochStore store(vfs, kDir);
  EpochManager::Options options;
  options.master_key = 9999;
  EpochManager manager(options);
  manager.attach_store(store);
  const auto rebuilt = manager.rebuild(small_truth(), epsilons);
  EXPECT_EQ(rebuilt.index.matrix(), first_published);
  EXPECT_EQ(rebuilt.churn, 0u);  // nothing changed, so nothing may churn
}

TEST(DurableServiceTest, ManagerResumesServingAndEpochNumbering) {
  MemVfs vfs;
  const std::vector<double> epsilons(8, 0.5);
  eppi::BitMatrix published;
  {
    EpochStore store(vfs, kDir);
    EpochManager manager;
    manager.attach_store(store);
    (void)manager.rebuild(small_truth(), epsilons);
    published = manager.rebuild(small_truth(), epsilons).index.matrix();
  }
  vfs.crash();

  EpochStore store(vfs, kDir);
  EpochManager manager;
  manager.attach_store(store);
  EXPECT_TRUE(manager.serving());
  EXPECT_EQ(manager.current_index().matrix(), published);
  EXPECT_EQ(manager.epochs_built(), 2u);

  const auto status = manager.serving_status();
  EXPECT_TRUE(status.serving);
  EXPECT_FALSE(status.degraded);
  EXPECT_EQ(status.epoch, 2u);
  EXPECT_GE(status.age_seconds, 0.0);

  // Epoch numbering continues the stored lineage rather than restarting.
  const auto next = manager.rebuild(small_truth(), epsilons);
  EXPECT_EQ(next.epoch, 3u);
  EXPECT_EQ(store.latest_epoch(), std::uint64_t{3});
}

TEST(DurableServiceTest, QuarantinedNewestEpochServesOlderWithHonestLabel) {
  MemVfs vfs;
  const std::vector<double> epsilons(8, 0.5);
  {
    EpochStore store(vfs, kDir);
    EpochManager manager;
    manager.attach_store(store);
    (void)manager.rebuild(small_truth(), epsilons);
    eppi::BitMatrix changed = small_truth();
    changed.set(0, 3, true);
    (void)manager.rebuild(changed, epsilons);
  }
  // Rot the newest epoch file so recovery quarantines it.
  auto bytes = vfs.read_file("store/epoch-2.idx");
  bytes[30] ^= 0x10;
  vfs.write_file("store/epoch-2.idx", bytes);
  vfs.fsync_file("store/epoch-2.idx");

  EpochStore store(vfs, kDir);
  EpochManager manager;
  manager.attach_store(store);
  // The status must name the epoch actually being served (1), not the
  // newest committed id — but that id is never reused for a new commit.
  EXPECT_EQ(manager.serving_status().epoch, 1u);
  EXPECT_EQ(manager.rebuild(small_truth(), epsilons).epoch, 3u);
  EXPECT_EQ(manager.serving_status().epoch, 3u);
  EXPECT_EQ(store.latest_epoch(), std::uint64_t{3});
}

LocatorService::Options service_options(bool distributed) {
  LocatorService::Options options;
  options.distributed = distributed;
  options.seed = 11;
  options.c = 2;
  return options;
}

void populate(LocatorService& service) {
  service.delegate("alice", 0.4, "general");
  service.delegate("alice", 0.4, "mercy");
  service.delegate("bob", 0.3, "general");
  service.delegate("carol", 0.8, "mercy");
  service.delegate("dave", 0.5, "lakeside");
}

TEST(DurableServiceTest, LocatorServiceResumesFromStoreAfterRestart) {
  MemVfs vfs;
  std::vector<std::string> answer;
  {
    LocatorService service(service_options(/*distributed=*/false));
    populate(service);
    EpochStore store(vfs, kDir);
    service.attach_store(store);
    service.construct_ppi();
    answer = service.query_ppi("alice");
  }
  vfs.crash();

  // A restarted process re-registers its catalog, attaches the store, and
  // can answer queries from the recovered epoch before any rebuild.
  LocatorService service(service_options(/*distributed=*/false));
  populate(service);
  EpochStore store(vfs, kDir);
  service.attach_store(store);
  EXPECT_TRUE(service.constructed());
  EXPECT_EQ(service.query_ppi("alice"), answer);

  const auto result = service.query_ppi_with_status("alice");
  EXPECT_EQ(result.providers, answer);
  EXPECT_EQ(result.epoch, 1u);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.rebuilds_behind, 0u);
}

TEST(DurableServiceTest, FailedDistributedRebuildServesStaleWithStatus) {
  LocatorService service(service_options(/*distributed=*/true));
  populate(service);

  FaultToleranceOptions ft;
  ft.enabled = true;
  ft.stage_timeout = 150ms;
  ft.mpc_timeout = 3000ms;
  service.set_fault_tolerance(ft);
  service.construct_ppi();
  const auto healthy = service.query_ppi_with_status("alice");
  EXPECT_EQ(healthy.epoch, 1u);
  EXPECT_FALSE(healthy.degraded);

  // Kill a coordinator in the next rebuild: the service must keep answering
  // from epoch 1 and say so, rather than throwing or going dark.
  ft.fault_scenario = "crash 1 after 0 sends";
  service.set_fault_tolerance(ft);
  service.construct_ppi();
  const auto stale = service.query_ppi_with_status("alice");
  EXPECT_EQ(stale.providers, healthy.providers);
  EXPECT_EQ(stale.epoch, 1u);
  EXPECT_TRUE(stale.degraded);
  EXPECT_EQ(stale.rebuilds_behind, 1u);

  // A second failure deepens the staleness accounting...
  service.construct_ppi();
  EXPECT_EQ(service.query_ppi_with_status("alice").rebuilds_behind, 2u);

  // ...and the next healthy rebuild clears it.
  ft.fault_scenario.clear();
  service.set_fault_tolerance(ft);
  service.construct_ppi();
  const auto recovered = service.query_ppi_with_status("alice");
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.rebuilds_behind, 0u);
  EXPECT_EQ(recovered.epoch, 2u);
}

TEST(DurableServiceTest, DegradedAnswersSurviveRestartViaStore) {
  MemVfs vfs;
  LocatorService service(service_options(/*distributed=*/true));
  populate(service);
  EpochStore store(vfs, kDir);
  service.attach_store(store);

  FaultToleranceOptions ft;
  ft.enabled = true;
  ft.stage_timeout = 150ms;
  ft.mpc_timeout = 3000ms;
  service.set_fault_tolerance(ft);
  service.construct_ppi();  // epoch 1, committed durably
  const auto answer = service.query_ppi("alice");

  vfs.crash();

  // Restart into a world where every rebuild fails: the service still
  // serves the recovered epoch, flagged as degraded once a rebuild fails.
  LocatorService restarted(service_options(/*distributed=*/true));
  populate(restarted);
  EpochStore store2(vfs, kDir);
  restarted.attach_store(store2);
  EXPECT_EQ(restarted.query_ppi("alice"), answer);

  ft.fault_scenario = "crash 1 after 0 sends";
  restarted.set_fault_tolerance(ft);
  restarted.construct_ppi();  // fails, degrades — does NOT throw
  const auto status = restarted.query_ppi_with_status("alice");
  EXPECT_EQ(status.providers, answer);
  EXPECT_TRUE(status.degraded);
  EXPECT_EQ(status.epoch, 1u);
}

}  // namespace
}  // namespace eppi::core
