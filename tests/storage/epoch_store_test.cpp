// EpochStore behavior over the MemVfs crash model: commit/load/lineage,
// sticky-state durability, torn-journal repair, corruption quarantine, and
// the fsck report both before and after recovery.
#include "core/epoch_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/index_io.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

using eppi::storage::MemVfs;
using eppi::storage::StorageError;

PpiIndex sample_index(std::size_t m, std::size_t n, std::uint64_t seed) {
  eppi::Rng rng(seed);
  eppi::BitMatrix matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.35)) matrix.set(i, j, true);
    }
  }
  return PpiIndex(std::move(matrix));
}

constexpr char kDir[] = "store";

TEST(EpochStoreTest, FreshStoreIsEmptyAndClean) {
  MemVfs vfs;
  EpochStore store(vfs, kDir);
  EXPECT_FALSE(store.has_sticky_state());
  EXPECT_FALSE(store.latest_epoch().has_value());
  EXPECT_TRUE(store.lineage().empty());
  EXPECT_EQ(store.recovery_report().quarantined, 0u);

  const FsckReport fsck = fsck_store(vfs, kDir);
  EXPECT_TRUE(fsck.ok) << (fsck.issues.empty() ? ""
                                               : fsck.issues[0].message);
}

TEST(EpochStoreTest, StickyStateSurvivesReopen) {
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    store.record_sticky_state({0xFEEDFACE, true});
  }
  vfs.crash();  // the record must already be durable
  EpochStore reopened(vfs, kDir);
  ASSERT_TRUE(reopened.has_sticky_state());
  EXPECT_EQ(reopened.sticky_state().master_key, 0xFEEDFACEu);
  EXPECT_TRUE(reopened.sticky_state().enable_mixing);
}

TEST(EpochStoreTest, StickyStateFirstRecordWinsForever) {
  MemVfs vfs;
  EpochStore store(vfs, kDir);
  store.record_sticky_state({7, true});
  store.record_sticky_state({7, true});  // idempotent for an equal state
  EXPECT_THROW(store.record_sticky_state({8, true}), eppi::ConfigError);
  EXPECT_THROW(store.record_sticky_state({7, false}), eppi::ConfigError);
  EXPECT_EQ(store.sticky_state().master_key, 7u);
}

TEST(EpochStoreTest, CommitLoadAndLineage) {
  MemVfs vfs;
  EpochStore store(vfs, kDir);
  store.record_sticky_state({1, true});
  const PpiIndex e1 = sample_index(4, 20, 1);
  const PpiIndex e2 = sample_index(4, 20, 2);
  store.commit_epoch(1, e1, 0.25);
  store.commit_epoch(2, e2, 0.5);

  EXPECT_EQ(store.latest_epoch(), std::uint64_t{2});
  EXPECT_EQ(store.lambda_history(), (std::vector<double>{0.25, 0.5}));
  EXPECT_EQ(store.load_epoch(1).matrix(), e1.matrix());
  EXPECT_EQ(store.load_epoch(2).matrix(), e2.matrix());

  // Epochs must advance; reusing or rolling back an id would fork lineage.
  EXPECT_THROW(store.commit_epoch(2, e2, 0.5), eppi::ConfigError);
  EXPECT_THROW(store.load_epoch(9), eppi::ConfigError);
}

TEST(EpochStoreTest, CommittedEpochsSurvivePowerLoss) {
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    store.record_sticky_state({1, true});
    store.commit_epoch(1, sample_index(4, 20, 1), 0.1);
    store.commit_epoch(2, sample_index(4, 20, 2), 0.2);
  }
  vfs.crash();
  EpochStore reopened(vfs, kDir);
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{2});
  EXPECT_EQ(reopened.load_epoch(2).matrix(), sample_index(4, 20, 2).matrix());
  EXPECT_TRUE(fsck_store(vfs, kDir).ok);
}

TEST(EpochStoreTest, BitRotIsQuarantinedAndServingFallsBack) {
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    store.record_sticky_state({1, true});
    store.commit_epoch(1, sample_index(4, 20, 1), 0.1);
    store.commit_epoch(2, sample_index(4, 20, 2), 0.2);
  }
  // Rot a payload byte of the newest epoch file.
  auto bytes = vfs.read_file("store/epoch-2.idx");
  bytes[30] ^= 0x40;
  vfs.write_file("store/epoch-2.idx", bytes);
  vfs.fsync_file("store/epoch-2.idx");

  // fsck (read-only) reports the damage...
  const FsckReport before = fsck_store(vfs, kDir);
  EXPECT_FALSE(before.ok);
  ASSERT_FALSE(before.issues.empty());
  EXPECT_EQ(before.issues[0].file, "epoch-2.idx");

  // ...recovery quarantines it and falls back to the previous epoch...
  EpochStore reopened(vfs, kDir);
  EXPECT_EQ(reopened.recovery_report().quarantined, 1u);
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{1});
  EXPECT_TRUE(vfs.exists("store/quarantine/epoch-2.idx"));
  EXPECT_FALSE(vfs.exists("store/epoch-2.idx"));

  // ...after which the store is clean again and the lineage still advances.
  EXPECT_TRUE(fsck_store(vfs, kDir).ok);
  reopened.commit_epoch(3, sample_index(4, 20, 3), 0.3);
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{3});
}

TEST(EpochStoreTest, OrphanFilesAreQuarantinedNotDeleted) {
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    store.record_sticky_state({1, true});
    store.commit_epoch(1, sample_index(3, 10, 1), 0.1);
  }
  // Crash artifacts: a tmp that never got renamed, an index whose journal
  // record never landed.
  const std::vector<std::uint8_t> junk{1, 2, 3};
  vfs.write_file("store/epoch-9.idx.tmp", junk);
  vfs.fsync_file("store/epoch-9.idx.tmp");
  const auto orphan = save_index_bytes(sample_index(3, 10, 9));
  vfs.write_file("store/epoch-9.idx", orphan);
  vfs.fsync_file("store/epoch-9.idx");
  vfs.fsync_dir("store");

  EXPECT_FALSE(fsck_store(vfs, kDir).ok);  // unclean until recovery runs

  EpochStore reopened(vfs, kDir);
  EXPECT_EQ(reopened.recovery_report().quarantined, 2u);
  EXPECT_TRUE(vfs.exists("store/quarantine/epoch-9.idx"));
  EXPECT_TRUE(vfs.exists("store/quarantine/epoch-9.idx.tmp"));
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{1});
  EXPECT_TRUE(fsck_store(vfs, kDir).ok);
}

TEST(EpochStoreTest, TornJournalTailIsTruncatedRecordsKept) {
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    store.record_sticky_state({1, true});
    store.commit_epoch(1, sample_index(3, 10, 1), 0.1);
  }
  // A torn append: garbage after the last valid record.
  const std::vector<std::uint8_t> garbage{0x55, 0x66, 0x77};
  vfs.append_file("store/MANIFEST", garbage);
  vfs.fsync_file("store/MANIFEST");

  const FsckReport before = fsck_store(vfs, kDir);
  EXPECT_FALSE(before.ok);  // fsck reports, never repairs

  EpochStore reopened(vfs, kDir);
  EXPECT_TRUE(reopened.recovery_report().manifest_truncated);
  ASSERT_TRUE(reopened.has_sticky_state());
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{1});
  EXPECT_TRUE(fsck_store(vfs, kDir).ok);

  // The truncated journal accepts new records cleanly.
  reopened.commit_epoch(2, sample_index(3, 10, 2), 0.2);
  vfs.crash();
  EpochStore again(vfs, kDir);
  EXPECT_EQ(again.latest_epoch(), std::uint64_t{2});
}

// Models an in-process partial append (ENOSPC mid-write / fsync failure):
// the armed append persists only a prefix of the data, then throws
// StorageError — the process survives and may retry, unlike FaultyVfs's
// torn writes, which always end in a simulated crash.
class PartialAppendVfs final : public storage::Vfs {
 public:
  explicit PartialAppendVfs(storage::Vfs& inner) : inner_(inner) {}

  // The next append persists `keep_bytes` bytes, then fails.
  void arm(std::size_t keep_bytes) {
    armed_ = true;
    keep_ = keep_bytes;
  }
  // The next write to the manifest (or its .tmp) fails outright — used to
  // make the store's own rollback rewrite fail.
  void fail_next_manifest_write() { fail_manifest_write_ = true; }

  bool exists(const std::string& path) const override {
    return inner_.exists(path);
  }
  std::vector<std::uint8_t> read_file(const std::string& path) const override {
    return inner_.read_file(path);
  }
  std::vector<std::string> list_dir(const std::string& dir) const override {
    return inner_.list_dir(dir);
  }
  void make_dir(const std::string& dir) override { inner_.make_dir(dir); }
  void write_file(const std::string& path,
                  std::span<const std::uint8_t> data) override {
    if (fail_manifest_write_ &&
        path.find("MANIFEST") != std::string::npos) {
      fail_manifest_write_ = false;
      throw StorageError("injected: manifest rewrite failure");
    }
    inner_.write_file(path, data);
  }
  void append_file(const std::string& path,
                   std::span<const std::uint8_t> data) override {
    if (armed_) {
      armed_ = false;
      inner_.append_file(path, data.subspan(0, std::min(keep_, data.size())));
      throw StorageError("injected: device full mid-append");
    }
    inner_.append_file(path, data);
  }
  void fsync_file(const std::string& path) override {
    inner_.fsync_file(path);
  }
  void fsync_dir(const std::string& dir) override { inner_.fsync_dir(dir); }
  void rename_file(const std::string& from, const std::string& to) override {
    inner_.rename_file(from, to);
  }
  void remove_file(const std::string& path) override {
    inner_.remove_file(path);
  }

 private:
  storage::Vfs& inner_;
  bool armed_ = false;
  std::size_t keep_ = 0;
  bool fail_manifest_write_ = false;
};

TEST(EpochStoreTest, PartialAppendIsRolledBackSoRetryCommitsDurably) {
  MemVfs disk;
  PartialAppendVfs vfs(disk);
  EpochStore store(vfs, kDir);
  store.record_sticky_state({1, true});
  store.commit_epoch(1, sample_index(3, 10, 1), 0.1);

  // The commit record for epoch 2 lands only partially before the append
  // fails; the store must cut the journal back to the last good boundary.
  vfs.arm(5);
  EXPECT_THROW(store.commit_epoch(2, sample_index(3, 10, 2), 0.2),
               StorageError);
  EXPECT_EQ(store.latest_epoch(), std::uint64_t{1});

  // The retry must land on a clean record boundary, not after garbage.
  store.commit_epoch(2, sample_index(3, 10, 2), 0.2);
  EXPECT_EQ(store.latest_epoch(), std::uint64_t{2});
  EXPECT_TRUE(fsck_store(vfs, kDir).ok);

  // The regression this pins: with torn bytes left in place, recovery
  // truncated the journal at the garbage and the retried "committed"
  // epoch 2 silently vanished across a restart.
  disk.crash();
  EpochStore reopened(disk, kDir);
  EXPECT_FALSE(reopened.recovery_report().manifest_truncated);
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{2});
  EXPECT_EQ(reopened.load_epoch(2).matrix(), sample_index(3, 10, 2).matrix());
}

TEST(EpochStoreTest, UnrepairableTornTailRefusesAppendsUntilReopened) {
  MemVfs disk;
  PartialAppendVfs vfs(disk);
  EpochStore store(vfs, kDir);
  store.record_sticky_state({1, true});
  store.commit_epoch(1, sample_index(3, 10, 1), 0.1);

  // Both the append and the rollback rewrite fail: the journal tail may
  // hold garbage the store could not remove.
  vfs.arm(5);
  vfs.fail_next_manifest_write();
  EXPECT_THROW(store.commit_epoch(2, sample_index(3, 10, 2), 0.2),
               StorageError);

  // Appending after unremoved garbage would corrupt the next record, so
  // the store refuses until recovery has truncated the tail.
  EXPECT_THROW(store.commit_epoch(2, sample_index(3, 10, 2), 0.2),
               StorageError);

  EpochStore reopened(vfs, kDir);
  EXPECT_TRUE(reopened.recovery_report().manifest_truncated);
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{1});
  reopened.commit_epoch(2, sample_index(3, 10, 2), 0.2);
  EXPECT_EQ(reopened.latest_epoch(), std::uint64_t{2});
  EXPECT_TRUE(fsck_store(vfs, kDir).ok);
}

TEST(EpochStoreTest, DamagedManifestHeaderRefusesToOpen) {
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    store.record_sticky_state({1, true});
  }
  auto bytes = vfs.read_file("store/MANIFEST");
  bytes[3] ^= 0xFF;  // corrupt the magic itself
  vfs.write_file("store/MANIFEST", bytes);
  vfs.fsync_file("store/MANIFEST");

  // Losing the journal header means losing the sticky lineage; opening
  // silently (and re-rolling keys) would be a privacy bug, so this throws.
  EXPECT_THROW(EpochStore(vfs, kDir), StorageError);
  EXPECT_FALSE(fsck_store(vfs, kDir).ok);
}

TEST(EpochStoreTest, FsckSingleIndexFile) {
  MemVfs vfs;
  vfs.make_dir("d");
  const auto good = save_index_bytes(sample_index(5, 30, 1));
  vfs.write_file("d/good.idx", good);
  vfs.fsync_file("d/good.idx");
  EXPECT_TRUE(fsck_index_file(vfs, "d/good.idx").ok);

  auto bad = good;
  bad[32] ^= 0x04;
  vfs.write_file("d/bad.idx", bad);
  vfs.fsync_file("d/bad.idx");
  const FsckReport report = fsck_index_file(vfs, "d/bad.idx");
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.issues.empty());
  EXPECT_EQ(report.issues[0].section, std::string("payload"));

  EXPECT_FALSE(fsck_index_file(vfs, "d/missing.idx").ok);
}

TEST(EpochStoreTest, EpochsWithoutStickyRecordFailFsck) {
  // A journal that commits epochs but never recorded the sticky state could
  // not reproduce its own noise after a restart — fsck flags it.
  MemVfs vfs;
  {
    EpochStore store(vfs, kDir);
    store.commit_epoch(1, sample_index(3, 10, 1), 0.1);
  }
  const FsckReport report = fsck_store(vfs, kDir);
  EXPECT_FALSE(report.ok);
}

}  // namespace
}  // namespace eppi::core
