// Kill-at-every-boundary recovery matrix for the durable epoch store — the
// storage mirror of the network dropout matrix (tests/integration/
// fault_matrix_test.cpp). The workload opens a store, attaches an
// EpochManager, and commits two epochs. A fault-free run sizes the matrix;
// then, for every mutating storage operation k, the workload is re-run with
// a crash (or torn write, or transient fsync failure) injected at op k, the
// power is cut, and the invariants are checked:
//
//   * reopening the store always succeeds (recovery repairs or quarantines);
//   * fsck passes after recovery — no silent corruption survives;
//   * a post-recovery rebuild produces a byte-identical index, because the
//     sticky state (noise keys, mixing PRF) either was recorded durably or
//     the configured state is re-recorded — randomness never silently
//     re-rolls into a *different* lineage.
#include <gtest/gtest.h>

#include <vector>

#include "common/bit_matrix.h"
#include "core/epoch_manager.h"
#include "core/epoch_store.h"
#include "core/index_io.h"
#include "storage/faulty_vfs.h"
#include "storage/mem_vfs.h"

namespace eppi::core {
namespace {

using eppi::storage::FaultyVfs;
using eppi::storage::MemVfs;
using eppi::storage::SimulatedStorageCrash;
using eppi::storage::StorageError;
using eppi::storage::StorageFaultScenario;

constexpr char kDir[] = "store";
constexpr std::uint64_t kMasterKey = 42;

eppi::BitMatrix truth_epoch1() {
  eppi::BitMatrix truth(4, 12);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if ((i * 7 + j * 3) % 5 == 0) truth.set(i, j, true);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) truth.set(i, 0, true);  // a common id
  return truth;
}

eppi::BitMatrix truth_epoch2() {
  eppi::BitMatrix truth = truth_epoch1();
  truth.set(1, 5, true);  // the network changed between epochs
  truth.set(2, 7, true);
  return truth;
}

EpochManager::Options manager_options() {
  EpochManager::Options options;
  options.master_key = kMasterKey;
  return options;
}

// The workload under test: open (recover), resume, commit two epochs.
void run_workload(eppi::storage::Vfs& vfs) {
  EpochStore store(vfs, kDir);
  EpochManager manager(manager_options());
  manager.attach_store(store);
  const std::vector<double> epsilons(12, 0.5);
  manager.rebuild(truth_epoch1(), epsilons);
  manager.rebuild(truth_epoch2(), epsilons);
}

// Reference: the final epoch-2 index bytes of an uninterrupted run.
std::vector<std::uint8_t> reference_bytes() {
  MemVfs vfs;
  run_workload(vfs);
  EpochStore store(vfs, kDir);
  return save_index_bytes(store.load_epoch(*store.latest_epoch()));
}

// After any injected fault: power-cycle, recover, and prove the store is
// valid and the sticky decisions are unchanged.
void check_recovery(MemVfs& vfs, const std::vector<std::uint8_t>& reference) {
  vfs.crash();

  // Recovery must always produce an openable store...
  EpochStore store(vfs, kDir);
  // ...that fsck then finds clean (quarantine repaired any damage).
  const FsckReport fsck = fsck_store(vfs, kDir);
  EXPECT_TRUE(fsck.ok) << (fsck.issues.empty()
                               ? "no issue recorded"
                               : fsck.issues[0].file + " [" +
                                     fsck.issues[0].section +
                                     "]: " + fsck.issues[0].message);

  // Every epoch file the recovered store still references must load.
  for (const auto& record : store.lineage()) {
    if (record.file_intact) {
      EXPECT_NO_THROW((void)store.load_epoch(record.epoch));
    }
  }

  // Resume with the SAME configured options (a restart reads its config
  // file again) and rebuild the current network state: the result must be
  // byte-identical to the uninterrupted run — sticky noise and mixing
  // decisions survived the crash no matter where it hit.
  EpochManager manager(manager_options());
  manager.attach_store(store);
  const std::vector<double> epsilons(12, 0.5);
  const auto rebuilt = manager.rebuild(truth_epoch2(), epsilons);
  EXPECT_EQ(save_index_bytes(rebuilt.index), reference);

  // And what was just committed is durable: power-cycle once more.
  vfs.crash();
  EpochStore after(vfs, kDir);
  ASSERT_TRUE(after.latest_epoch().has_value());
  EXPECT_EQ(save_index_bytes(after.load_epoch(*after.latest_epoch())),
            reference);
}

std::uint64_t count_workload_ops() {
  MemVfs vfs;
  FaultyVfs counting(vfs);
  run_workload(counting);
  return counting.ops();
}

TEST(RecoveryMatrixTest, WorkloadTouchesEnoughBoundariesToMatter) {
  // Sanity: the matrix below must actually cover a multi-step protocol.
  EXPECT_GE(count_workload_ops(), 15u);
}

TEST(RecoveryMatrixTest, CrashAtEveryOperationBoundary) {
  const auto reference = reference_bytes();
  const std::uint64_t total = count_workload_ops();
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k));
    MemVfs vfs;
    FaultyVfs faulty(vfs, StorageFaultScenario::crash_at(k));
    EXPECT_THROW(run_workload(faulty), SimulatedStorageCrash);
    check_recovery(vfs, reference);
  }
}

TEST(RecoveryMatrixTest, TornWriteAtEveryOperationBoundary) {
  const auto reference = reference_bytes();
  const std::uint64_t total = count_workload_ops();
  for (const std::size_t torn_bytes : {std::size_t{0}, std::size_t{5}}) {
    for (std::uint64_t k = 0; k < total; ++k) {
      SCOPED_TRACE("torn write of " + std::to_string(torn_bytes) +
                   " bytes at op " + std::to_string(k));
      MemVfs vfs;
      FaultyVfs faulty(vfs, StorageFaultScenario::torn_at(k, torn_bytes));
      EXPECT_THROW(run_workload(faulty), SimulatedStorageCrash);
      check_recovery(vfs, reference);
    }
  }
}

TEST(RecoveryMatrixTest, TransientFailureLeavesManagerConsistent) {
  const auto reference = reference_bytes();
  const std::uint64_t total = count_workload_ops();
  const std::vector<double> epsilons(12, 0.5);
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE("transient failure at op " + std::to_string(k));
    MemVfs vfs;
    FaultyVfs faulty(vfs, StorageFaultScenario::fail_at(k));

    // No power loss here: the process survives the failed syscall, must
    // surface it as StorageError, and must stay consistent enough that
    // simply retrying the interrupted step converges to the same state.
    try {
      run_workload(faulty);
    } catch (const StorageError&) {
      EpochStore store(faulty, kDir);
      EpochManager manager(manager_options());
      manager.attach_store(store);
      (void)manager.rebuild(truth_epoch1(), epsilons);  // retry path
      (void)manager.rebuild(truth_epoch2(), epsilons);
    }

    EXPECT_TRUE(fsck_store(vfs, kDir).ok);
    EpochStore store(vfs, kDir);
    ASSERT_TRUE(store.latest_epoch().has_value());
    EXPECT_EQ(save_index_bytes(store.load_epoch(*store.latest_epoch())),
              reference);
  }
}

}  // namespace
}  // namespace eppi::core
