// Storage-layer semantics: the MemVfs power-loss model, the FaultyVfs
// injector, and a PosixVfs smoke test against a real temp directory. The
// MemVfs tests double as documentation of the crash model every recovery
// test relies on.
#include "storage/vfs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "storage/faulty_vfs.h"
#include "storage/mem_vfs.h"
#include "storage/posix_vfs.h"

namespace eppi::storage {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string text(const std::vector<std::uint8_t>& b) {
  return {b.begin(), b.end()};
}

TEST(MemVfsTest, UnsyncedWriteDiesWithPower) {
  MemVfs vfs;
  vfs.make_dir("d");
  vfs.write_file("d/f", bytes("hello"));
  EXPECT_EQ(text(vfs.read_file("d/f")), "hello");
  vfs.crash();
  EXPECT_FALSE(vfs.exists("d/f"));
}

TEST(MemVfsTest, FsyncFileAloneDoesNotPersistANewEntry) {
  // Classic pitfall: fsync the file but not the directory — the inode data
  // is on disk but nothing references it after a crash.
  MemVfs vfs;
  vfs.make_dir("d");
  vfs.write_file("d/f", bytes("hello"));
  vfs.fsync_file("d/f");
  vfs.crash();
  EXPECT_FALSE(vfs.exists("d/f"));
}

TEST(MemVfsTest, EntryBeforeDataSurvivesAsEmptyFile) {
  // The converse pitfall: the directory entry lands before the data does.
  MemVfs vfs;
  vfs.make_dir("d");
  vfs.write_file("d/f", bytes("hello"));
  vfs.fsync_dir("d");
  vfs.crash();
  ASSERT_TRUE(vfs.exists("d/f"));
  EXPECT_TRUE(vfs.read_file("d/f").empty());
}

TEST(MemVfsTest, FullSyncSurvivesCrash) {
  MemVfs vfs;
  vfs.make_dir("d");
  vfs.write_file("d/f", bytes("hello"));
  vfs.fsync_file("d/f");
  vfs.fsync_dir("d");
  vfs.crash();
  EXPECT_EQ(text(vfs.read_file("d/f")), "hello");
}

TEST(MemVfsTest, RenameRevertsWithoutDirFsync) {
  MemVfs vfs;
  vfs.make_dir("d");
  vfs.write_file("d/old", bytes("old"));
  vfs.fsync_file("d/old");
  vfs.fsync_dir("d");

  vfs.write_file("d/new.tmp", bytes("new"));
  vfs.fsync_file("d/new.tmp");
  vfs.rename_file("d/new.tmp", "d/old");
  EXPECT_EQ(text(vfs.read_file("d/old")), "new");  // cache view
  vfs.crash();
  EXPECT_EQ(text(vfs.read_file("d/old")), "old");  // durable view reverted
}

TEST(MemVfsTest, AtomicWriteFileIsDurableAndAllOrNothing) {
  MemVfs vfs;
  vfs.make_dir("d");
  atomic_write_file(vfs, "d/f", bytes("v1"));
  vfs.crash();
  EXPECT_EQ(text(vfs.read_file("d/f")), "v1");

  atomic_write_file(vfs, "d/f", bytes("v2"));
  vfs.crash();
  EXPECT_EQ(text(vfs.read_file("d/f")), "v2");
  EXPECT_FALSE(vfs.exists("d/f.tmp"));
}

TEST(MemVfsTest, DurableAppendSurvivesOnExistingEntry) {
  MemVfs vfs;
  vfs.make_dir("d");
  atomic_write_file(vfs, "d/log", bytes("head|"));
  durable_append(vfs, "d/log", bytes("rec1|"));
  durable_append(vfs, "d/log", bytes("rec2|"));
  vfs.crash();
  EXPECT_EQ(text(vfs.read_file("d/log")), "head|rec1|rec2|");
}

TEST(MemVfsTest, ListDirIsSortedAndShallow) {
  MemVfs vfs;
  vfs.make_dir("d/sub");
  vfs.write_file("d/b", bytes("x"));
  vfs.write_file("d/a", bytes("x"));
  vfs.write_file("d/sub/c", bytes("x"));
  EXPECT_EQ(vfs.list_dir("d"), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(vfs.list_dir("nope"), StorageError);
}

TEST(MemVfsTest, WriteIntoMissingDirectoryFails) {
  MemVfs vfs;
  EXPECT_THROW(vfs.write_file("nodir/f", bytes("x")), StorageError);
}

// --- FaultyVfs --------------------------------------------------------------

TEST(FaultyVfsTest, CountsMutatingOpsOnly) {
  MemVfs mem;
  FaultyVfs vfs(mem);
  vfs.make_dir("d");                     // op 0
  vfs.write_file("d/f", bytes("data"));  // op 1
  vfs.fsync_file("d/f");                 // op 2
  (void)vfs.read_file("d/f");            // reads are free
  (void)vfs.exists("d/f");
  EXPECT_EQ(vfs.ops(), 3u);
}

TEST(FaultyVfsTest, CrashAtKillsOpKWithoutEffect) {
  MemVfs mem;
  FaultyVfs vfs(mem, StorageFaultScenario::crash_at(1));
  vfs.make_dir("d");  // op 0 succeeds
  EXPECT_THROW(vfs.write_file("d/f", bytes("data")), SimulatedStorageCrash);
  mem.crash();
  EXPECT_TRUE(mem.exists("d"));    // make_dir modelled as durable
  EXPECT_FALSE(mem.exists("d/f"));  // the killed write never happened
}

TEST(FaultyVfsTest, TornWriteLeavesDurablePrefix) {
  MemVfs mem;
  FaultyVfs vfs(mem, StorageFaultScenario::torn_at(1, 3));
  vfs.make_dir("d");
  EXPECT_THROW(vfs.write_file("d/f", bytes("hello world")),
               SimulatedStorageCrash);
  // The torn prefix reached the platter; the entry needs the dir to already
  // know it, so make it durable the way a later fsync_dir would.
  mem.fsync_dir("d");
  mem.crash();
  EXPECT_EQ(text(mem.read_file("d/f")), "hel");
}

TEST(FaultyVfsTest, TransientFailureIsRetryable) {
  MemVfs mem;
  FaultyVfs vfs(mem, StorageFaultScenario::fail_at(1));
  vfs.make_dir("d");
  EXPECT_THROW(vfs.write_file("d/f", bytes("data")), StorageError);
  EXPECT_FALSE(mem.exists("d/f"));  // failed op had no effect
  vfs.write_file("d/f", bytes("data"));  // later ops succeed
  EXPECT_EQ(text(vfs.read_file("d/f")), "data");
}

// --- PosixVfs ---------------------------------------------------------------

TEST(PosixVfsTest, RealFilesystemRoundTrip) {
  PosixVfs vfs;
  const std::string dir = ::testing::TempDir() + "eppi_posix_vfs_test";
  std::filesystem::remove_all(dir);  // leftovers from an interrupted run
  vfs.make_dir(dir + "/sub");
  EXPECT_TRUE(vfs.exists(dir));

  atomic_write_file(vfs, dir + "/a.idx", bytes("alpha"));
  durable_append(vfs, dir + "/log", bytes("one|"));
  durable_append(vfs, dir + "/log", bytes("two|"));
  EXPECT_EQ(text(vfs.read_file(dir + "/a.idx")), "alpha");
  EXPECT_EQ(text(vfs.read_file(dir + "/log")), "one|two|");

  vfs.rename_file(dir + "/a.idx", dir + "/b.idx");
  vfs.fsync_dir(dir);
  EXPECT_FALSE(vfs.exists(dir + "/a.idx"));
  EXPECT_EQ(text(vfs.read_file(dir + "/b.idx")), "alpha");
  EXPECT_EQ(vfs.list_dir(dir), (std::vector<std::string>{"b.idx", "log"}));

  EXPECT_THROW((void)vfs.read_file(dir + "/nope"), StorageError);
  vfs.remove_file(dir + "/b.idx");
  vfs.remove_file(dir + "/log");
  EXPECT_EQ(vfs.list_dir(dir), std::vector<std::string>{});
}

}  // namespace
}  // namespace eppi::storage
