// Standalone TCP chaos proxy for multi-process fault injection.
//
// Fronts one or more eppi_party listen ports and relays traffic while
// applying a FaultScenario at the socket level (see net/chaos_proxy.h).
// Meant for deployment rehearsal and the CI multi-process smoke job:
//
//   eppi_chaos_proxy --route 21000:127.0.0.1:22000:0
//                    --route 21001:127.0.0.1:22001:1
//                    --scenario "link 1->0: delay=0.2ms..1ms" --seed 7
//
// Runs until SIGTERM/SIGINT, then prints relay stats to stderr and exits 0.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "net/chaos_proxy.h"
#include "net/fault.h"

namespace {

volatile std::sig_atomic_t g_terminate = 0;

void install_terminate_handler() {
  struct sigaction sa {};
  sa.sa_handler = [](int) { g_terminate = 1; };
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

int usage() {
  std::cerr
      << "usage: eppi_chaos_proxy --route LISTEN:HOST:PORT:PARTY "
         "[--route ...]\n"
         "                        [--scenario \"link a->b: key=v; ...\"] "
         "[--seed n]\n"
         "Each --route fronts party PARTY (really at HOST:PORT) on local\n"
         "port LISTEN. Scenario grammar is net/fault.h's DSL, including the\n"
         "TCP-level keys reset_after, blackhole, throttle, split,\n"
         "connect_delay. Runs until SIGTERM.\n";
  return 2;
}

eppi::net::ProxyRoute parse_route(const std::string& spec) {
  // LISTEN:HOST:PORT:PARTY — host may not contain ':' (IPv4 / names only).
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const auto colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() != 4) {
    throw eppi::ConfigError("--route wants LISTEN:HOST:PORT:PARTY, got '" +
                            spec + "'");
  }
  eppi::net::ProxyRoute route;
  route.listen_port = static_cast<std::uint16_t>(std::stoul(parts[0]));
  route.target_host = parts[1];
  route.target_port = static_cast<std::uint16_t>(std::stoul(parts[2]));
  route.target_party = static_cast<eppi::net::PartyId>(std::stoul(parts[3]));
  return route;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<eppi::net::ProxyRoute> routes;
  std::string scenario_text;
  std::uint64_t seed = 1;
  try {
    for (int a = 1; a < argc; ++a) {
      const std::string arg = argv[a];
      const auto next = [&]() -> std::string {
        if (a + 1 >= argc) throw eppi::ConfigError(arg + " needs a value");
        return argv[++a];
      };
      if (arg == "--route") {
        routes.push_back(parse_route(next()));
      } else if (arg == "--scenario") {
        scenario_text = next();
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--help" || arg == "-h") {
        return usage();
      } else {
        throw eppi::ConfigError("unknown option " + arg);
      }
    }
    if (routes.empty()) return usage();

    eppi::net::FaultScenario scenario =
        scenario_text.empty() ? eppi::net::FaultScenario{}
                              : eppi::net::FaultScenario::parse(scenario_text);
    eppi::net::ChaosProxy proxy(routes, scenario, seed);
    proxy.start();
    install_terminate_handler();
    std::cerr << "eppi_chaos_proxy: relaying " << routes.size()
              << " route(s); SIGTERM to stop\n";
    while (g_terminate == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const auto stats = proxy.stats();
    proxy.stop();
    std::cerr << "eppi_chaos_proxy: " << stats.connections << " connection(s), "
              << stats.bytes_forwarded << " byte(s) forwarded, "
              << stats.resets << " reset(s), " << stats.blackholed_bytes
              << " byte(s) blackholed\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "eppi_chaos_proxy: " << e.what() << '\n';
    return 1;
  }
}
