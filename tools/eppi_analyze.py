#!/usr/bin/env python3
"""Whole-program static analyzer for the e-PPI codebase.

Where `eppi_lint.py` reasons one line at a time, this tool builds a
repo-wide model — a call graph, lock-acquisition facts, annotation facts,
and a small dataflow layer — and runs five *interprocedural* checks that
the PR 2 toolchain (type taint + regex lint + clang -Wthread-safety)
cannot express, because they span function boundaries:

  loop-affinity       functions annotated EPPI_LOOP_AFFINE (the epoll
                      reactor's loop-thread-only internals) may only be
                      reached from loop context: another loop-affine
                      function, an EPPI_LOOP_ENTRY body (EventLoop::run),
                      or a closure handed to EventLoop::post / add_timer /
                      add_fd. A call from anywhere else is an off-loop
                      mutation of loop-owned state.

  blocking-in-reactor a blocking primitive reachable from loop context:
                      ::recv/::send without MSG_DONTWAIT, sleep_for/
                      sleep_until, CondVar/condition_variable wait*,
                      future get/wait, thread join, or a blocking
                      Mailbox::recv. One stalled callback stalls every
                      connection the reactor owns.

  lock-order          the lock-acquisition graph: an edge A -> B when B is
                      acquired (directly or via calls) while A is held.
                      Mid-scope MutexLock unlock()/lock() cycles — the
                      transports' drop-the-lock-around-inner-send idiom —
                      are modeled, so the documented discipline is checked,
                      not penalized. Cycles are reported as potential
                      deadlocks.

  secret-flow         dataflow from reveal()/unwrap_for_wire() call sites
                      through locals, returns, and one call hop into
                      telemetry/log/storage sinks (Span::attr/event,
                      Counter/Gauge/Histogram, EPPI_LOG, iostreams,
                      Vfs writes). Generalizes the same-line escape-hatch
                      and secret-trace-attr lint rules: telemetry is
                      exported, so it is never an audited zone — the rule
                      fires even in src/secret and src/mpc.

  unchecked-status    a discarded error return: a statement-expression call
                      to a POSIX socket/fd op (::recv, ::send, ::connect,
                      ::bind, ::listen, ::epoll_ctl, ...), to a status-
                      returning storage::Vfs read (read_file/exists/
                      list_dir), or to a repo function declared
                      [[nodiscard]]. Cast to (void) to acknowledge a
                      deliberate best-effort call.

Fact extraction has two frontends producing the same model:

  * `clang`  — drives `clang++ -Xclang -ast-dump=json -fsyntax-only` over
               the CMake compilation database (CMAKE_EXPORT_COMPILE_COMMANDS,
               see CMakeLists.txt) and reads function definitions, call
               sites, and annotate() attributes from the real AST;
  * `syntax` — a stdlib-only structural scanner tuned to this codebase's
               style. It additionally extracts the lock-region and
               dataflow facts (which are positional) for BOTH frontends.

`--frontend=auto` (default) uses clang when both clang++ and a compilation
database are present, and falls back to the syntax frontend otherwise —
so the gate runs anywhere the tests run (the CI analyze job has clang; the
plain build container may not). A clang failure on one TU falls back to
the syntax facts for that TU rather than failing the run.

Suppress a single finding with
    // eppi-analyze: allow(<rule>): <reason>
on the reported line — the reason is mandatory. Known findings that are
accepted for now live in the committed baseline (tools/analyze_baseline.json),
each with a reason; `--write-baseline` regenerates it.

Usage:
  tools/eppi_analyze.py [--root DIR] [--frontend auto|clang|syntax]
                        [--compdb FILE] [--baseline FILE] [--write-baseline]
                        [--sarif FILE] [--list-rules] [paths...]
  tools/eppi_analyze.py --self-test

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Shared text utilities

SOURCE_EXTENSIONS = (".cpp", ".h", ".hpp", ".cc")

ALLOW_RE = re.compile(
    r"//\s*eppi-analyze:\s*allow\(([a-z-]+)\)\s*:\s*(\S.*)")
EXPECT_RE = re.compile(r"//\s*eppi-analyze-expect:\s*([a-z-]+)")

RULES = ("loop-affinity", "blocking-in-reactor", "lock-order",
         "secret-flow", "unchecked-status")

RULE_DESCRIPTIONS = {
    "loop-affinity":
        "EPPI_LOOP_AFFINE function reached from outside loop context",
    "blocking-in-reactor":
        "blocking primitive reachable from the epoll reactor",
    "lock-order":
        "cycle in the lock-acquisition graph (potential deadlock)",
    "secret-flow":
        "reveal()/unwrap_for_wire() value flows into a telemetry/log/"
        "storage sink",
    "unchecked-status":
        "discarded error return from a socket/storage operation",
}


def scrub_text(text: str) -> str:
    """Blanks comments and string/char literals, preserving every character
    position (so offsets and line numbers survive). Suppression and expect
    markers are read from the RAW text, not the scrubbed text."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "str":
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            elif c == "\n":  # unterminated; bail to code
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "chr":
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            elif c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def blank_preprocessor(text: str) -> str:
    """Blanks preprocessor directives (and their continuation lines),
    preserving newlines. Run AFTER scrub_text so `//` inside a #define
    is already gone. Keeps macro definitions, includes and guards out of
    the structural scan entirely."""
    out = []
    cont = False
    for line in text.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Fact model

@dataclass
class CallSite:
    callee: str          # bare name, e.g. "flush_conn" or "::recv"
    base: str            # receiver expression text ("" for free calls)
    args: str            # raw argument text (scrubbed)
    line: int
    held: tuple          # canonical mutex ids held at the call
    discarded: bool      # whole-statement expression call


@dataclass
class LockAcq:
    mutex: str           # canonical id
    line: int
    held: tuple          # mutexes already held when this one is taken


@dataclass
class Func:
    """A function definition or a lambda body."""
    qname: str           # "Class::name", "name", or "<parent>::<lambda@L>"
    cls: str             # enclosing class name ("" for free functions)
    name: str            # unqualified name
    path: str
    line: int
    params: list = field(default_factory=list)
    annotations: set = field(default_factory=set)
    kind: str = "func"   # func | loop-lambda | thread-lambda | inline-lambda
    parent: str = ""     # enclosing function qname (lambdas only)
    calls: list = field(default_factory=list)       # [CallSite]
    acquisitions: list = field(default_factory=list)  # [LockAcq]
    statements: list = field(default_factory=list)  # [(line, text)]
    returns: list = field(default_factory=list)     # [(line, expr-text)]
    nodiscard: bool = False


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        # Line numbers are deliberately excluded so the baseline survives
        # unrelated edits to the same file.
        h = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.symbol}".encode()).hexdigest()
        return h[:16]


class FactDB:
    def __init__(self):
        self.funcs: dict[str, Func] = {}
        self.by_name: dict[str, list] = {}   # method name -> [qname]
        self.nodiscard: set = set()          # names declared [[nodiscard]]
        self.raw_lines: dict[str, list] = {}  # path -> raw text lines
        # Annotations live on declarations (headers); definitions usually
        # don't repeat them. qname -> [(path, line, {tokens})].
        self.decl_annotations: dict[str, list] = {}

    def add_func(self, f: Func):
        if f.qname in self.funcs:
            # Multiple definitions (overloads, or decl+def): merge facts.
            old = self.funcs[f.qname]
            old.calls.extend(f.calls)
            old.acquisitions.extend(f.acquisitions)
            old.statements.extend(f.statements)
            old.returns.extend(f.returns)
            old.annotations |= f.annotations
            old.nodiscard = old.nodiscard or f.nodiscard
            return
        self.funcs[f.qname] = f
        self.by_name.setdefault(f.name, []).append(f.qname)


# ---------------------------------------------------------------------------
# Syntax frontend: a structural scanner for the repo's C++ style

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "throw", "catch",
    "new", "delete", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "decltype", "alignof", "noexcept", "case", "default",
    "do", "else", "using", "typedef", "template", "typename", "static",
    "assert", "static_assert", "co_await", "co_return", "defined",
}

FUNC_HEAD_RE = re.compile(
    r"""(?:[\w:<>,*&~\[\]\s]+?[\s*&])??            # return type (optional for ctors)
        (?P<qual>(?:\w+\s*::\s*)*)                  # Class:: qualifiers
        (?P<name>~?\w+|operator\s*[^\s(]+)\s*
        \((?P<args>.*)\)\s*
        (?P<trail>(?:\s*(?:const|noexcept|override|final|mutable
           |->\s*[\w:<>&*\s]+|EPPI_\w+(?:\s*\([^)]*\))?
           |\[\[\w+\]\]|:\s*.*))*\s*)$""",
    re.VERBOSE | re.DOTALL)

ANNOTATION_TOKENS = ("EPPI_LOOP_AFFINE", "EPPI_LOOP_ENTRY")

LOCK_DECL_RE = re.compile(
    r"^(?:const\s+)?(?:eppi\s*::\s*)?MutexLock\s+(\w+)\s*\(\s*(.+?)\s*\)$")
LOCK_OP_RE = re.compile(r"^(\w+)\s*\.\s*(lock|unlock)\s*\(\s*\)$")
CALL_RE = re.compile(
    r"(?P<base>(?:[\w\]\)]\s*(?:\.|->)\s*)?)"
    r"(?P<name>(?:::\s*)?\w+(?:\s*::\s*\w+)*)\s*\(")
NODISCARD_RE = re.compile(r"\[\[nodiscard\]\][^;{(]*?\b(\w+)\s*\(")

LOOP_POST_METHODS = {"post", "add_timer", "add_fd"}
THREAD_CTOR_NAMES = {"thread", "std::thread", "jthread", "std::jthread"}


def _canon_mutex(expr: str, cls: str, qname: str) -> str:
    expr = re.sub(r"\s+", "", expr)
    if re.fullmatch(r"\w+", expr):
        if expr.endswith("_") and cls:
            return f"{cls}::{expr}"
        return f"{qname}::{expr}"  # local / parameter mutex
    # Complex expression (e.g. other.mutex_): keep as written, class-scoped.
    return f"{cls or qname}::{expr}"


class _Scope:
    __slots__ = ("kind", "name", "func", "pbase")

    def __init__(self, kind, name="", func=None):
        self.kind = kind    # ns | class | func | lambda | block | expr
        self.name = name
        self.func = func    # Func being built (func/lambda scopes)
        self.pbase = 0      # open-paren depth when this scope was entered


class SyntaxFrontend:
    """Single pass, character-level scanner. Tracks namespace/class nesting,
    function and lambda bodies, per-statement lock regions, and call sites
    with the held-lock context."""

    def __init__(self, db: FactDB, path: str, raw: str):
        self.db = db
        self.path = path
        self.raw = raw
        self.text = blank_preprocessor(scrub_text(raw))
        self.scopes: list[_Scope] = []
        self.stmt: list = []        # [(line, chunk)] pending statement
        self.paren_callees: list = []  # (callee, base) per open paren
        self.active_locks: list = []   # [dict(var, mutex, depth, live)]
        self.lambda_counter = 0
        self.pending_lambda = None  # dict set between ']' and '{'

    # -- helpers ----------------------------------------------------------

    def cur_func(self):
        for s in reversed(self.scopes):
            if s.kind in ("func", "lambda"):
                return s.func
        return None

    def cur_class(self):
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.name
        return ""

    def func_depth(self):
        d = 0
        seen_func = False
        for s in self.scopes:
            if s.kind in ("func", "lambda"):
                seen_func = True
                d = 0
            elif seen_func and s.kind in ("block", "expr"):
                d += 1
        return d

    def held_ids(self):
        return tuple(l["mutex"] for l in self.active_locks if l["live"])

    def stmt_text(self):
        return " ".join(c for _, c in self.stmt).strip()

    def stmt_line(self, offset_in_text=None):
        if not self.stmt:
            return 0
        if offset_in_text is None:
            return self.stmt[0][0]
        # Map a character offset in the joined text back to a line.
        pos = 0
        for line, chunk in self.stmt:
            if offset_in_text < pos + len(chunk) + 1:
                return line
            pos += len(chunk) + 1
        return self.stmt[-1][0]

    # -- statement processing ---------------------------------------------

    def flush_stmt(self, terminator):
        func = self.cur_func()
        text = self.stmt_text()
        if func is None or not text:
            # Annotated declarations (class bodies / headers): record the
            # tokens so a definition elsewhere — or header-only scans —
            # still see them.
            if text and terminator == ";" and any(
                    t in text for t in ANNOTATION_TOKENS):
                cls = self.cur_class()
                dm = re.search(r"(~?\w+)\s*\(", text)
                if dm:
                    qn = (f"{cls}::{dm.group(1)}" if cls
                          else dm.group(1))
                    self.db.decl_annotations.setdefault(qn, []).append(
                        (self.path, self.stmt_line(),
                         {t for t in ANNOTATION_TOKENS if t in text}))
            self.stmt = []
            return
        line = self.stmt_line()
        func.statements.append((line, text))

        # Lock region bookkeeping (only whole statements, i.e. ';').
        if terminator == ";":
            m = LOCK_DECL_RE.match(text)
            if m:
                var, mexpr = m.group(1), m.group(2)
                canon = _canon_mutex(mexpr, func.cls, func.qname)
                func.acquisitions.append(
                    LockAcq(canon, line, self.held_ids()))
                self.active_locks.append(
                    {"var": var, "mutex": canon,
                     "depth": self.func_depth(), "live": True,
                     "func": func.qname})
                self.stmt = []
                return
            m = LOCK_OP_RE.match(text)
            if m:
                var, op = m.group(1), m.group(2)
                for l in reversed(self.active_locks):
                    if l["var"] == var and l["func"] == func.qname:
                        if op == "unlock":
                            l["live"] = False
                        else:
                            l["live"] = True
                            func.acquisitions.append(
                                LockAcq(l["mutex"], line, tuple(
                                    x["mutex"] for x in self.active_locks
                                    if x["live"] and x is not l)))
                        break
                self.stmt = []
                return
            if text.startswith("return"):
                func.returns.append((line, text[len("return"):].strip()))

        self.extract_calls(text, func, terminator)
        self.stmt = []

    def extract_calls(self, text, func, terminator):
        held = self.held_ids()
        # Whole-statement expression call => candidate discarded status.
        # The principal call is the one whose open paren is the statement's
        # first '(' (so `vfs.read_file(p);` flags read_file, and nested
        # `check(foo())` flags check, not foo).
        principal_paren = None
        if terminator == ";" and not text.startswith("(void"):
            m = re.match(
                r"^(?:::\s*)?[\w]+(?:\s*::\s*\w+)*"
                r"(?:\s*(?:\.|->)\s*\w+)*\s*\(", text)
            if m and self._balanced_to_end(text, m.end() - 1):
                principal_paren = m.end() - 1
        for m in CALL_RE.finditer(text):
            name = re.sub(r"\s+", "", m.group("name"))
            bare = name.rsplit("::", 1)[-1]
            if bare in KEYWORDS or name in KEYWORDS:
                continue
            if re.match(r"^[A-Z0-9_]+$", bare) and not bare.startswith(
                    "EPPI_"):
                # Macro-ish all-caps call: keep EPPI_ macros, drop the rest.
                continue
            base = m.group("base").strip()
            # Reconstruct the receiver text a bit more fully (walk back).
            if base:
                base = self._receiver_text(text, m.start())
            args = self._arg_text(text, m.end() - 1)
            line = self.stmt_line(m.start())
            disc = (principal_paren is not None
                    and m.end() - 1 == principal_paren)
            func.calls.append(CallSite(
                callee=name, base=base, args=args, line=line,
                held=held, discarded=disc))

    @staticmethod
    def _balanced_to_end(text, open_paren):
        depth = 0
        for i in range(open_paren, len(text)):
            c = text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return text[i + 1:].strip() == ""
        return False

    @staticmethod
    def _arg_text(text, open_paren):
        depth = 0
        for i in range(open_paren, len(text)):
            c = text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return text[open_paren + 1:i]
        return text[open_paren + 1:]

    @staticmethod
    def _receiver_text(text, name_start):
        i = name_start - 1
        while i >= 0 and text[i].isspace():
            i -= 1
        end = i + 1
        depth = 0
        while i >= 0:
            c = text[i]
            if c in ")]":
                depth += 1
            elif c in "([":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and not (c.isalnum() or c in "_.:->"):
                break
            i -= 1
        return text[i + 1:end].strip().rstrip(".->")

    # -- scope transitions -------------------------------------------------

    def classify_brace(self, lineno):
        """Called at '{'. Decides what scope it opens, using the pending
        statement as the header."""
        head = self.stmt_text()

        if self.pending_lambda is not None:
            lam = self.pending_lambda
            self.pending_lambda = None
            self.open_lambda(lam, lineno)
            return

        m = re.match(r"^(?:inline\s+)?namespace\b\s*([\w:]*)", head)
        if m and "(" not in head:
            self.scopes.append(_Scope("ns", m.group(1)))
            self.stmt = []
            return
        m = re.match(r"^(?:template\s*<[^;{]*>\s*)?"
                     r"(?:class|struct|union)\s+(?:EPPI_\w+(?:\([^)]*\))?\s+)?"
                     r"(\w+)", head)
        if m and head.count("(") == head.count(")") and "=" not in head:
            self.scopes.append(_Scope("class", m.group(1)))
            self.stmt = []
            return
        if re.match(r"^(?:enum)\b", head):
            self.scopes.append(_Scope("expr"))
            self.stmt = []
            return

        func = self.cur_func()
        if (head.count("(") == head.count(")") and head.count("(") >= 1
                and func is None
                and not head.startswith(("if", "for", "while", "switch",
                                         "do", "else", "catch", "case"))):
            fm = FUNC_HEAD_RE.match(head)
            if fm:
                self.open_func(fm, head, lineno)
                return
        if func is not None:
            # Control-flow or plain block inside a body: the header may hold
            # calls (`if (::bind(...) != 0) {`) — extract, then open a block.
            self.flush_stmt("{")
            self.scopes.append(_Scope("block"))
            return
        # Unrecognized brace at file scope (array init etc.).
        self.scopes.append(_Scope("expr"))
        self.stmt = []

    def open_func(self, fm, head, lineno):
        qual = re.sub(r"\s+", "", fm.group("qual") or "").rstrip(":")
        name = re.sub(r"\s+", "", fm.group("name"))
        cls = qual.rsplit("::", 1)[-1] if qual else self.cur_class()
        qname = f"{cls}::{name}" if cls else name
        annotations = {t for t in ANNOTATION_TOKENS if t in head}
        params = []
        for piece in self._split_args(fm.group("args") or ""):
            pm = re.search(r"(\w+)\s*(?:=[^,]*)?$", piece.strip())
            if pm and pm.group(1) not in ("const", "void"):
                params.append(pm.group(1))
        f = Func(qname=qname, cls=cls, name=name, path=self.path,
                 line=self.stmt[0][0] if self.stmt else lineno,
                 params=params, annotations=annotations,
                 nodiscard="[[nodiscard]]" in head)
        # Constructor init lists can call functions before the body opens.
        trail = (fm.group("trail") or "").lstrip()
        if trail.startswith(":") and not trail.startswith("::"):
            self.stmt = [(f.line, trail[1:])]
            saved_scopes = self.scopes
            self.scopes = saved_scopes + [_Scope("func", name, f)]
            self.flush_stmt("{")
            self.scopes = saved_scopes
        self.db.add_func(f)
        self.scopes.append(_Scope("func", name, self.db.funcs[f.qname]))
        self.stmt = []

    def open_lambda(self, lam, lineno):
        parent = self.cur_func()
        self.lambda_counter += 1
        ctx = lam["context"]
        # A lambda handed to std::thread/jthread runs on its own thread; one
        # handed to EventLoop::post/add_timer/add_fd runs ON the loop thread.
        # Anything else (algorithms, callbacks stored for later) is treated
        # as running in the enclosing context.
        if re.search(r"\b(?:std\s*::\s*)?j?thread\b", lam["stmt"]):
            kind = "thread-lambda"
        elif ctx and ctx[0] in LOOP_POST_METHODS:
            kind = "loop-lambda"
        else:
            kind = "inline-lambda"
        pq = parent.qname if parent else f"<{self.path}>"
        qname = f"{pq}::<lambda@{lineno}>"
        f = Func(qname=qname, cls=parent.cls if parent else "",
                 name=f"<lambda@{lineno}>", path=self.path, line=lineno,
                 kind=kind, parent=pq)
        self.db.add_func(f)
        # The lambda body runs later: callers' locks are NOT held inside.
        self.scopes.append(_Scope("lambda", f.name, f))

    # -- main loop ---------------------------------------------------------

    def run(self):
        text = self.text
        line = 1
        i, n = 0, len(text)
        chunk_start = i
        chunk_line = line

        def push_chunk(end):
            nonlocal chunk_start, chunk_line
            seg = text[chunk_start:end].strip()
            if seg:
                self.stmt.append((chunk_line, seg))
            chunk_start = end
            chunk_line = line

        while i < n:
            c = text[i]
            if c == "\n":
                push_chunk(i)
                line += 1
                i += 1
                chunk_start = i
                chunk_line = line
                continue
            if c == "(":
                # Record the callee owning this paren for lambda context.
                j = i - 1
                while j >= chunk_start and text[j].isspace():
                    j -= 1
                seg = text[chunk_start:j + 1]
                m = re.search(r"([\w:]+)$", seg)
                callee = m.group(1).rsplit("::", 1)[-1] if m else ""
                full = m.group(1) if m else ""
                base = ""
                if m:
                    k = j - len(m.group(1))
                    pre = text[max(chunk_start, k - 40):k + 1]
                    bm = re.search(r"([\w\]\)]+)\s*(?:\.|->)\s*$", pre)
                    base = bm.group(1) if bm else ""
                    if "::" in full and not base:
                        base = full.rsplit("::", 1)[0]
                self.paren_callees.append((callee, base))
                i += 1
                continue
            if c == ")":
                if self.paren_callees:
                    self.paren_callees.pop()
                i += 1
                continue
            if c == "[":
                prev = None
                j = i - 1
                while j >= 0:
                    if not text[j].isspace():
                        prev = text[j]
                        break
                    j -= 1
                is_lambda = prev is None or not (
                    prev.isalnum() or prev in "_])>")
                if prev is not None and text[max(0, j - 5):j + 1].endswith(
                        "return"):
                    is_lambda = True
                # Not lambdas: [[attributes]] and structured bindings
                # (`auto& [k, v]`).
                if prev == "[" or (i + 1 < n and text[i + 1] == "["):
                    is_lambda = False
                pre = text[max(0, j - 12):j + 1]
                if re.search(r"\bauto\s*&{0,2}$", pre):
                    is_lambda = False
                if is_lambda and self.cur_func() is not None:
                    ctx = None
                    for callee, base in reversed(self.paren_callees):
                        if callee:
                            ctx = (callee, base)
                            break
                    stmt_so_far = (self.stmt_text() + " "
                                   + text[chunk_start:i])
                    self.pending_lambda = {"context": ctx,
                                           "stmt": stmt_so_far}
                i += 1
                continue
            if c == ";":
                # A ';' inside parens (for-headers, default args) does not
                # terminate the statement. Lambda bodies re-base the depth.
                base = self.scopes[-1].pbase if self.scopes else 0
                if len(self.paren_callees) > base:
                    i += 1
                    continue
                push_chunk(i)
                self.flush_stmt(";")
                self.pending_lambda = None
                i += 1
                chunk_start = i
                chunk_line = line
                continue
            if c == "{":
                push_chunk(i)
                self.classify_brace(line)
                if self.scopes:
                    self.scopes[-1].pbase = len(self.paren_callees)
                i += 1
                chunk_start = i
                chunk_line = line
                continue
            if c == "}":
                push_chunk(i)
                self.flush_stmt("}")
                if self.scopes:
                    top = self.scopes.pop()
                    if top.kind in ("func", "lambda"):
                        self.active_locks = [
                            l for l in self.active_locks
                            if l["func"] != top.func.qname]
                    elif top.kind == "block":
                        d = self.func_depth()
                        for l in self.active_locks:
                            if l["depth"] > d:
                                l["live"] = False
                        self.active_locks = [
                            l for l in self.active_locks if l["depth"] <= d]
                i += 1
                chunk_start = i
                chunk_line = line
                continue
            i += 1
        # [[nodiscard]] declarations anywhere in the file.
        for m in NODISCARD_RE.finditer(self.text):
            self.db.nodiscard.add(m.group(1))

    @staticmethod
    def _split_args(args: str):
        out, depth, cur = [], 0, []
        for ch in args:
            if ch in "<([":
                depth += 1
            elif ch in ">)]":
                depth -= 1
            if ch == "," and depth == 0:
                out.append("".join(cur))
                cur = []
            else:
                cur.append(ch)
        if cur:
            out.append("".join(cur))
        return out


# ---------------------------------------------------------------------------
# Clang frontend (AST JSON). Produces the same function/call/annotation
# facts from the real AST; lock-region and dataflow facts stay with the
# syntax pass (they are positional). Any per-TU failure falls back silently
# to the syntax facts for that TU.

class ClangFrontend:
    def __init__(self, root: str, compdb_path: str):
        self.root = root
        with open(compdb_path, encoding="utf-8") as f:
            self.compdb = json.load(f)

    def entries_for(self, rel_paths):
        wanted = {os.path.normpath(os.path.join(self.root, p))
                  for p in rel_paths if p.endswith((".cpp", ".cc"))}
        for entry in self.compdb:
            src = os.path.normpath(
                os.path.join(entry.get("directory", self.root),
                             entry["file"]))
            if src in wanted:
                yield src, entry

    def dump_tu(self, src, entry):
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = entry.get("command", "").split()
        # Strip output/link phases; keep includes, defines, std flags.
        keep, skip_next = [], False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-MF", "-MT", "-MQ", "--output"):
                skip_next = True
                continue
            if a in ("-c", "-MD", "-MMD") or a.endswith((".o", ".cpp", ".cc")):
                continue
            keep.append(a)
        cmd = ["clang++"] + keep + [
            "-fsyntax-only", "-Xclang", "-ast-dump=json", src]
        proc = subprocess.run(
            cmd, cwd=entry.get("directory", self.root),
            capture_output=True, text=True, timeout=300)
        if proc.returncode != 0 and not proc.stdout:
            raise RuntimeError(proc.stderr[:500])
        return json.loads(proc.stdout)

    def extract(self, db: FactDB, ast, src_abs):
        rel = os.path.relpath(src_abs, self.root).replace(os.sep, "/")

        def qname_of(stack, name):
            parts = [s for s in stack if s]
            return "::".join(parts + [name]) if parts else name

        def walk(node, cls_stack, cur_func):
            if not isinstance(node, dict):
                return
            kind = node.get("kind", "")
            if kind in ("CXXRecordDecl", "ClassTemplateDecl"):
                name = node.get("name", "")
                for ch in node.get("inner", []) or []:
                    walk(ch, cls_stack + [name] if name else cls_stack,
                         cur_func)
                return
            if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                        "CXXDestructorDecl"):
                name = node.get("name", "")
                cls = cls_stack[-1] if cls_stack else ""
                qn = f"{cls}::{name}" if cls else name
                # Merge-only: the AST also contains every function pulled in
                # from system headers, and the JSON loc/file bookkeeping is
                # too sparse to filter them reliably. The syntax pass already
                # enumerated the repo's functions; clang confirms annotations
                # and adds precise call edges for those, nothing else.
                target = db.funcs.get(qn)
                if target is None:
                    return
                for ch in node.get("inner", []) or []:
                    if ch.get("kind") == "AnnotateAttr":
                        # The annotation text is in the attr's inner string.
                        txt = json.dumps(ch)
                        if "loop_affine" in txt:
                            target.annotations.add("EPPI_LOOP_AFFINE")
                        if "loop_entry" in txt:
                            target.annotations.add("EPPI_LOOP_ENTRY")
                for ch in node.get("inner", []) or []:
                    if (ch or {}).get("kind") == "CompoundStmt":
                        walk(ch, cls_stack, target)
                return
            if kind in ("CallExpr", "CXXMemberCallExpr",
                        "CXXOperatorCallExpr") and cur_func is not None:
                callee = self._callee_name(node)
                if callee:
                    line = ((node.get("range", {}) or {}).get("begin", {})
                            or {}).get("line", 0)
                    cur_func.calls.append(CallSite(
                        callee=callee, base="", args="", line=line or 0,
                        held=(), discarded=False))
            for ch in node.get("inner", []) or []:
                walk(ch, cls_stack, cur_func)

        walk(ast, [], None)

    def _in_repo(self, path):
        return not os.path.isabs(path) or \
            os.path.normpath(path).startswith(os.path.normpath(self.root))

    @staticmethod
    def _callee_name(node):
        def find_ref(n):
            if not isinstance(n, dict):
                return None
            if n.get("kind") in ("DeclRefExpr", "MemberExpr"):
                rd = n.get("referencedDecl") or {}
                if rd.get("name"):
                    return rd["name"]
                if n.get("name"):
                    return n["name"]
            for ch in n.get("inner", []) or []:
                r = find_ref(ch)
                if r:
                    return r
            return None
        inner = node.get("inner", []) or []
        return find_ref(inner[0]) if inner else None


# ---------------------------------------------------------------------------
# Call graph

STD_NAME_BLOCKLIST = {
    # Names that resolve by accident to std/containers, never to repo code.
    "push_back", "emplace_back", "insert", "erase", "find", "begin", "end",
    "size", "empty", "clear", "count", "swap", "reserve", "resize", "data",
    "c_str", "str", "substr", "append", "assign", "push", "pop", "top",
    "front", "back", "get", "reset", "release", "move", "forward",
    "make_unique", "make_shared", "to_string", "min", "max", "abs",
}


class CallGraph:
    def __init__(self, db: FactDB):
        self.db = db
        self.edges: dict[str, list] = {}   # qname -> [(callee qname, CallSite)]

    def build(self):
        for qn, f in self.db.funcs.items():
            out = []
            for c in f.calls:
                for target in self.resolve(f, c):
                    out.append((target, c))
            # Lambdas are children of their parent: parent -> lambda edge.
            self.edges[qn] = out
        for qn, f in self.db.funcs.items():
            if f.parent and f.parent in self.db.funcs:
                self.edges.setdefault(f.parent, []).append(
                    (qn, CallSite(callee=f.name, base="", args="",
                                  line=f.line, held=(), discarded=False)))

    def resolve(self, caller: Func, c: CallSite):
        name = c.callee
        bare = name.rsplit("::", 1)[-1]
        if name.startswith("::") or bare in STD_NAME_BLOCKLIST:
            return []
        # Explicitly qualified: exact match first.
        if "::" in name and not name.startswith("::"):
            if name in self.db.funcs:
                return [name]
        cands = self.db.by_name.get(bare, [])
        if not cands:
            return []
        if not c.base or c.base == "this":
            # Unqualified: prefer same class, else free function.
            same = [q for q in cands
                    if self.db.funcs[q].cls == caller.cls and caller.cls]
            if same:
                return same
            free = [q for q in cands if not self.db.funcs[q].cls]
            if free:
                return free
            return []
        # obj.method / ptr->method: union over all classes defining `method`
        # (sound for virtual dispatch; the style keeps names distinctive).
        return [q for q in cands if self.db.funcs[q].cls]

    def reachable_from(self, roots, skip_kinds=("thread-lambda",)):
        """BFS; returns {qname: (pred, CallSite)} for path reconstruction."""
        seen = {r: (None, None) for r in roots if r in self.db.funcs}
        queue = list(seen)
        while queue:
            cur = queue.pop(0)
            for target, site in self.edges.get(cur, []):
                tf = self.db.funcs.get(target)
                if tf is None or tf.kind in skip_kinds:
                    continue
                if target not in seen:
                    seen[target] = (cur, site)
                    queue.append(target)
        return seen

    @staticmethod
    def path_to(seen, qn):
        path = [qn]
        cur = qn
        while seen.get(cur, (None, None))[0] is not None:
            cur = seen[cur][0]
            path.append(cur)
        return list(reversed(path))


# ---------------------------------------------------------------------------
# Checks

BLOCKING_PATTERNS = [
    (re.compile(r"\bsleep_for\s*\("), "sleep_for"),
    (re.compile(r"\bsleep_until\s*\("), "sleep_until"),
    (re.compile(r"\bwait\s*\("), "condition wait"),
    (re.compile(r"\bwait_for\s*\("), "bounded condition wait"),
    (re.compile(r"\bwait_until\s*\("), "bounded condition wait"),
    (re.compile(r"\.\s*join\s*\("), "thread join"),
    (re.compile(r"\bget_future\s*\("), "future get"),
]
RAW_RECV_SEND_RE = re.compile(r"::\s*(recv|send)\s*\(")

BLOCKING_PROJECT_FUNCS = {
    # Blocking by contract, whatever their body looks like.
    "Mailbox::recv": "blocking mailbox receive",
}

MUST_CHECK_POSIX = {
    "::recv", "::send", "::sendto", "::recvfrom", "::connect", "::bind",
    "::listen", "::accept", "::accept4", "::epoll_ctl", "::read", "::write",
    "::ftruncate", "::rename", "::fsync", "::fdatasync", "::unlink",
}
MUST_CHECK_METHODS = {"read_file", "exists", "list_dir", "try_recv",
                      "try_lock"}

SINK_METHODS = {"attr", "event", "record"}
SINK_METHODS_GUARDED = {"add", "set"}   # only fire with a tainted argument
SINK_STORAGE = {"write_file", "append_file", "atomic_write_file",
                "durable_append"}
SINK_MACROS = re.compile(r"\bEPPI_(LOG|DEBUG|INFO|WARN|ERROR)\s*\(")
SINK_STREAMS = re.compile(r"\b(std\s*::\s*)?(cout|cerr|clog)\b[^;]*<<")
UNWRAP_RE = re.compile(r"\.\s*(reveal|unwrap_for_wire)\s*\(")
TAINT_DECL_RE = re.compile(
    r"^(?:const\s+)?[\w:<>,\s&*]*?[\s&*]?\b(?:auto|[\w:]+)\s*[&]?\s+"
    r"(\w+)\s*=\s*(.+)$")


def _allowed(db: FactDB, path: str, line: int, rule: str) -> bool:
    lines = db.raw_lines.get(path)
    if not lines or not (1 <= line <= len(lines)):
        return False
    m = ALLOW_RE.search(lines[line - 1])
    return bool(m) and m.group(1) == rule


def check_loop_affinity(db: FactDB, cg: CallGraph, out: list):
    affine = {qn for qn, f in db.funcs.items()
              if "EPPI_LOOP_AFFINE" in f.annotations}
    if not affine:
        return
    for qn, f in db.funcs.items():
        in_loop_ctx = (
            qn in affine or
            "EPPI_LOOP_ENTRY" in f.annotations or
            f.kind == "loop-lambda")
        if in_loop_ctx:
            continue
        for target, site in cg.edges.get(qn, []):
            if target in affine and db.funcs[target].kind == "func":
                if _allowed(db, f.path, site.line, "loop-affinity"):
                    continue
                out.append(Finding(
                    "loop-affinity", f.path, site.line, qn,
                    f"{qn} calls loop-affine {target} from outside loop "
                    f"context; reach it via EventLoop::post() or mark the "
                    f"caller EPPI_LOOP_AFFINE if it is loop-thread-only"))


def check_blocking_in_reactor(db: FactDB, cg: CallGraph, out: list):
    roots = [qn for qn, f in db.funcs.items()
             if "EPPI_LOOP_AFFINE" in f.annotations
             or "EPPI_LOOP_ENTRY" in f.annotations
             or f.kind == "loop-lambda"]
    seen = cg.reachable_from(roots)
    for qn in seen:
        f = db.funcs[qn]
        root_path = " -> ".join(CallGraph.path_to(seen, qn))
        for line, text in f.statements:
            hits = []
            for pat, what in BLOCKING_PATTERNS:
                if pat.search(text):
                    hits.append(what)
            for m in RAW_RECV_SEND_RE.finditer(text):
                args = SyntaxFrontend._arg_text(text, text.index(
                    "(", m.start()))
                if "MSG_DONTWAIT" not in args:
                    hits.append(f"::{m.group(1)} without MSG_DONTWAIT")
            for what in hits:
                if _allowed(db, f.path, line, "blocking-in-reactor"):
                    continue
                out.append(Finding(
                    "blocking-in-reactor", f.path, line, qn,
                    f"{what} in {qn}, reachable from the reactor via "
                    f"[{root_path}]; the loop thread must never block"))
        for target, site in cg.edges.get(qn, []):
            contract = BLOCKING_PROJECT_FUNCS.get(target)
            if contract and not _allowed(db, f.path, site.line,
                                         "blocking-in-reactor"):
                out.append(Finding(
                    "blocking-in-reactor", f.path, site.line, qn,
                    f"{contract} ({target}) called from {qn}, reachable "
                    f"from the reactor via [{root_path}]"))


def check_lock_order(db: FactDB, cg: CallGraph, out: list):
    # may_acquire*: fixpoint over the call graph. Lambdas that run on other
    # threads (loop/thread) are excluded from a caller's held-context.
    direct = {qn: {a.mutex for a in f.acquisitions}
              for qn, f in db.funcs.items()}
    trans = {qn: set(s) for qn, s in direct.items()}
    changed = True
    while changed:
        changed = False
        for qn in trans:
            for target, _site in cg.edges.get(qn, []):
                tf = db.funcs.get(target)
                if tf is None or tf.kind in ("loop-lambda", "thread-lambda"):
                    continue
                before = len(trans[qn])
                trans[qn] |= trans.get(target, set())
                if len(trans[qn]) != before:
                    changed = True

    edges = {}  # (A, B) -> (path, line, via)

    def add_edge(a, b, path, line, via):
        if a == b:
            return
        edges.setdefault((a, b), (path, line, via))

    for qn, f in db.funcs.items():
        for acq in f.acquisitions:
            for held in acq.held:
                add_edge(held, acq.mutex, f.path, acq.line, qn)
        for target, site in cg.edges.get(qn, []):
            if not site.held:
                continue
            tf = db.funcs.get(target)
            if tf is None or tf.kind in ("loop-lambda", "thread-lambda"):
                continue
            for b in trans.get(target, set()):
                for a in site.held:
                    add_edge(a, b, f.path, site.line,
                             f"{qn} -> {target}")

    # Cycle detection over the acquisition graph.
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    color, stack, cycles = {}, [], []

    def dfs(v):
        color[v] = 1
        stack.append(v)
        for w in sorted(graph.get(v, ())):
            if color.get(w, 0) == 0:
                dfs(w)
            elif color.get(w) == 1:
                cyc = stack[stack.index(w):] + [w]
                cycles.append(tuple(cyc))
        stack.pop()
        color[v] = 2

    for v in sorted(graph):
        if color.get(v, 0) == 0:
            dfs(v)

    reported = set()
    for cyc in cycles:
        key = frozenset(cyc)
        if key in reported:
            continue
        reported.add(key)
        a, b = cyc[0], cyc[1]
        path, line, via = edges[(a, b)]
        if _allowed(db, path, line, "lock-order"):
            continue
        out.append(Finding(
            "lock-order", path, line, via,
            "lock-order cycle (potential deadlock): "
            + " -> ".join(cyc)
            + f"; edge {a} -> {b} acquired via {via}"))


def check_secret_flow(db: FactDB, cg: CallGraph, out: list):
    # Pass 1: function summaries.
    returns_taint = set()
    sink_params = {}  # qname -> set(param indices that reach a sink)

    def sink_hits(f: Func, tainted: set):
        """Yields (line, sink-desc, matched-var-or-None)."""
        for line, text in f.statements:
            is_macro = bool(SINK_MACROS.search(text)
                            or SINK_STREAMS.search(text))
            for c in f.calls:
                if c.line != line:
                    continue
                bare = c.callee.rsplit("::", 1)[-1]
                sink = None
                if bare in SINK_METHODS or bare in SINK_STORAGE:
                    sink = bare
                elif bare in SINK_METHODS_GUARDED:
                    sink = bare
                if sink is None:
                    continue
                guarded = bare in SINK_METHODS_GUARDED
                if UNWRAP_RE.search(c.args):
                    yield c.line, f"{sink}()", None
                    continue
                for var in tainted:
                    if re.search(rf"\b{re.escape(var)}\b", c.args):
                        yield c.line, f"{sink}()", var
                        break
                else:
                    if not guarded:
                        continue
            if is_macro:
                if UNWRAP_RE.search(text):
                    yield line, "log statement", None
                else:
                    for var in tainted:
                        if re.search(rf"\b{re.escape(var)}\b", text):
                            yield line, "log statement", var
                            break

    def tainted_locals(f: Func, extra_sources=()):
        tainted = set()
        for line, text in f.statements:
            m = TAINT_DECL_RE.match(text)
            if not m:
                continue
            var, rhs = m.group(1), m.group(2)
            if UNWRAP_RE.search(rhs):
                tainted.add(var)
                continue
            for src in extra_sources:
                if re.search(rf"\b{re.escape(src)}\s*\(", rhs):
                    tainted.add(var)
                    break
            for t in list(tainted):
                if t != var and re.search(rf"\b{re.escape(t)}\b", rhs):
                    tainted.add(var)
                    break
        return tainted

    for qn, f in db.funcs.items():
        tainted = tainted_locals(f)
        for line, expr in f.returns:
            if UNWRAP_RE.search(expr) or any(
                    re.search(rf"\b{re.escape(t)}\b", expr)
                    for t in tainted):
                returns_taint.add(f.name)
        for idx, p in enumerate(f.params):
            for _line, _desc, var in sink_hits(f, {p}):
                if var == p:
                    sink_params.setdefault(qn, set()).add(idx)

    # Pass 2: findings, with one interprocedural hop.
    taint_fn_names = {n for n in returns_taint} | {"reveal",
                                                   "unwrap_for_wire"}
    for qn, f in db.funcs.items():
        tainted = tainted_locals(f, extra_sources=returns_taint)
        for line, desc, var in sink_hits(f, tainted):
            if _allowed(db, f.path, line, "secret-flow"):
                continue
            what = (f"tainted value '{var}'" if var
                    else "reveal()/unwrap_for_wire() result")
            out.append(Finding(
                "secret-flow", f.path, line, qn,
                f"{what} flows into {desc} in {qn}; telemetry, logs and "
                f"storage are exported surfaces — only named, audited "
                f"public openings may be recorded"))
        # Tainted argument handed to a function whose parameter reaches a
        # sink (the one-hop case the same-line rules cannot see).
        for c in f.calls:
            for target, _ in [(t, s) for (t, s) in cg.edges.get(qn, [])
                              if s is c]:
                idxs = sink_params.get(target)
                if not idxs:
                    continue
                args = SyntaxFrontend._split_args(c.args)
                for idx in idxs:
                    if idx >= len(args):
                        continue
                    arg = args[idx]
                    hit = (UNWRAP_RE.search(arg) or any(
                        re.search(rf"\b{re.escape(t)}\b", arg)
                        for t in tainted))
                    if hit and not _allowed(db, f.path, c.line,
                                            "secret-flow"):
                        out.append(Finding(
                            "secret-flow", f.path, c.line, qn,
                            f"tainted value passed from {qn} to {target}, "
                            f"whose parameter "
                            f"'{db.funcs[target].params[idx] if idx < len(db.funcs[target].params) else idx}'"
                            f" reaches a telemetry/log/storage sink"))
    _ = taint_fn_names  # summaries already folded into tainted_locals


def check_unchecked_status(db: FactDB, cg: CallGraph, out: list):
    for qn, f in db.funcs.items():
        for c in f.calls:
            if not c.discarded:
                continue
            bare = c.callee.rsplit("::", 1)[-1]
            flagged = None
            if c.callee.startswith("::") and c.callee in MUST_CHECK_POSIX:
                flagged = f"POSIX op {c.callee}"
            elif bare in MUST_CHECK_METHODS:
                flagged = f"status-returning call {bare}()"
            elif bare in db.nodiscard:
                flagged = f"[[nodiscard]] function {bare}()"
            if flagged is None:
                continue
            if _allowed(db, f.path, c.line, "unchecked-status"):
                continue
            out.append(Finding(
                "unchecked-status", f.path, c.line, qn,
                f"discarded error return from {flagged} in {qn}; check "
                f"it, log the failure, or cast to (void) with a comment"))


CHECKS = (check_loop_affinity, check_blocking_in_reactor, check_lock_order,
          check_secret_flow, check_unchecked_status)


# ---------------------------------------------------------------------------
# Driver

DEFAULT_SCAN_DIRS = ("src",)


def collect_files(root: str, explicit):
    if explicit:
        for p in explicit:
            # A relative path is root-relative first (the ctest probe entries
            # run from the build tree), cwd-relative as a fallback.
            if not os.path.isabs(p) and os.path.exists(os.path.join(root, p)):
                full = os.path.join(root, p)
            else:
                full = os.path.abspath(p)
            if not os.path.exists(full):
                print(f"eppi-analyze: no such file: {p}", file=sys.stderr)
                sys.exit(2)
            yield os.path.relpath(full, root).replace(os.sep, "/")
        return
    for base in DEFAULT_SCAN_DIRS:
        top = os.path.join(root, base)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.relpath(
                        os.path.join(dirpath, name), root).replace(
                            os.sep, "/")


def build_factdb(root: str, rel_paths, frontend: str, compdb: str | None,
                 verbose=False) -> FactDB:
    db = FactDB()
    rel_paths = list(rel_paths)
    for rel in rel_paths:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError:
            continue
        db.raw_lines[rel] = raw.splitlines()
        try:
            SyntaxFrontend(db, rel, raw).run()
        except Exception as e:  # a parse wobble must not kill the gate
            print(f"eppi-analyze: syntax frontend skipped {rel}: {e}",
                  file=sys.stderr)

    if frontend == "clang" and compdb and os.path.exists(compdb) \
            and shutil.which("clang++"):
        try:
            cf = ClangFrontend(root, compdb)
            for src, entry in cf.entries_for(rel_paths):
                try:
                    ast = cf.dump_tu(src, entry)
                    cf.extract(db, ast, src)
                    if verbose:
                        print(f"eppi-analyze: clang facts merged for "
                              f"{os.path.relpath(src, root)}")
                except Exception as e:
                    if verbose:
                        print(f"eppi-analyze: clang frontend fell back to "
                              f"syntax for {src}: {e}", file=sys.stderr)
        except Exception as e:
            print(f"eppi-analyze: clang frontend unavailable ({e}); "
                  f"using syntax facts", file=sys.stderr)

    # Fold declaration-site annotations (headers) into the definitions; if
    # no definition was scanned (header-only run), keep a stub so the
    # annotation still roots the reachability checks.
    for qn, entries in db.decl_annotations.items():
        for path, line, toks in entries:
            if qn in db.funcs:
                db.funcs[qn].annotations |= toks
            else:
                cls, _, name = qn.rpartition("::")
                db.add_func(Func(qname=qn, cls=cls, name=name or qn,
                                 path=path, line=line, annotations=toks))
    return db


def run_checks(db: FactDB) -> list:
    cg = CallGraph(db)
    cg.build()
    findings: list = []
    for check in CHECKS:
        check(db, cg, findings)
    # Deduplicate (merged decl/def facts can double-report a site).
    seen, unique = set(), []
    for f in findings:
        key = (f.rule, f.path, f.line, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    unique.sort(key=lambda f: (f.path, f.line, f.rule))
    return unique


# ---------------------------------------------------------------------------
# Baseline

def load_baseline(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return []
    return data.get("findings", [])


def apply_baseline(findings, baseline_entries):
    """Splits findings into (new, baselined)."""
    index = {}
    for e in baseline_entries:
        index.setdefault((e.get("rule"), e.get("path"),
                          e.get("symbol")), e)
    fresh, matched = [], []
    for f in findings:
        if (f.rule, f.path, f.symbol) in index:
            matched.append(f)
        else:
            fresh.append(f)
    return fresh, matched


def write_baseline(path: str, findings):
    data = {
        "comment": "Accepted eppi_analyze findings. Every entry needs a "
                   "reason; prefer fixing over baselining. Regenerate with "
                   "tools/eppi_analyze.py --write-baseline (then fill in "
                   "reasons).",
        "findings": [
            {"rule": f.rule, "path": f.path, "symbol": f.symbol,
             "fingerprint": f.fingerprint(),
             "reason": "TODO: justify or fix"}
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as out:
        json.dump(data, out, indent=2)
        out.write("\n")


# ---------------------------------------------------------------------------
# SARIF

def to_sarif(findings, tool_name="eppi-analyze"):
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://example.invalid/eppi/docs/static_analysis.md",
                "rules": [
                    {"id": r, "shortDescription":
                        {"text": RULE_DESCRIPTIONS.get(r, r)}}
                    for r in RULES
                ],
            }},
            "results": [
                {
                    "ruleId": f.rule,
                    "level": "error",
                    "message": {"text": f.message},
                    "partialFingerprints": {
                        "eppiAnalyze/v1": f.fingerprint()},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "SRCROOT"},
                            "region": {"startLine": max(1, f.line)},
                        }
                    }],
                }
                for f in findings
            ],
        }],
    }


# ---------------------------------------------------------------------------
# Self-test: the fixture corpus under tests/analyze/ seeds at least one
# violation and one clean twin per rule; `// eppi-analyze-expect: <rule>`
# marks each seeded line. The self-test demands EXACT agreement: every
# expected (file, line, rule) found, and zero unexpected findings.

FIXTURE_DIR = "tests/analyze"


def self_test(root: str) -> int:
    fixture_root = os.path.join(root, FIXTURE_DIR)
    rel_paths = []
    for dirpath, dirnames, filenames in os.walk(fixture_root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                rel_paths.append(os.path.relpath(
                    os.path.join(dirpath, name), root).replace(os.sep, "/"))
    if not rel_paths:
        print(f"self-test: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1

    db = build_factdb(root, rel_paths, frontend="syntax", compdb=None)
    findings = run_checks(db)

    expected = set()
    for rel in rel_paths:
        for lineno, raw in enumerate(db.raw_lines.get(rel, []), start=1):
            for m in EXPECT_RE.finditer(raw):
                expected.add((rel, lineno, m.group(1)))

    found = {(f.path, f.line, f.rule) for f in findings}
    missing = expected - found
    unexpected = found - expected
    failures = 0
    for rel, line, rule in sorted(missing):
        failures += 1
        print(f"self-test FAIL: expected [{rule}] at {rel}:{line}, "
              f"not reported", file=sys.stderr)
    for rel, line, rule in sorted(unexpected):
        failures += 1
        print(f"self-test FAIL: unexpected [{rule}] at {rel}:{line}",
              file=sys.stderr)
    per_rule = {}
    for _, _, rule in expected:
        per_rule[rule] = per_rule.get(rule, 0) + 1
    for rule in RULES:
        if per_rule.get(rule, 0) == 0:
            failures += 1
            print(f"self-test FAIL: no fixture seeds rule {rule}",
                  file=sys.stderr)
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: all {len(expected)} seeded findings detected "
          f"across {len(rel_paths)} fixtures, zero false positives")
    return 0


# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None)
    parser.add_argument("--frontend", choices=("auto", "clang", "syntax"),
                        default="auto")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--baseline", default=None,
                        help="accepted-findings file (default: "
                             "<root>/tools/analyze_baseline.json)")
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument("--sarif", default=None,
                        help="also write SARIF 2.1.0 to this file")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.list_rules:
        for rule in RULES:
            print(f"{rule}: {RULE_DESCRIPTIONS[rule]}")
        return 0
    if args.self_test:
        return self_test(root)

    compdb = args.compdb or os.path.join(root, "build",
                                         "compile_commands.json")
    frontend = args.frontend
    if frontend == "auto":
        frontend = ("clang" if shutil.which("clang++")
                    and os.path.exists(compdb) else "syntax")
    if args.verbose:
        print(f"eppi-analyze: frontend={frontend}")

    rel_paths = list(collect_files(root, args.paths or None))
    db = build_factdb(root, rel_paths, frontend, compdb,
                      verbose=args.verbose)
    findings = run_checks(db)

    if args.write_baseline:
        path = args.baseline or os.path.join(root, "tools",
                                             "analyze_baseline.json")
        write_baseline(path, findings)
        print(f"eppi-analyze: wrote {len(findings)} finding(s) to {path}")
        return 0

    baseline_path = args.baseline or os.path.join(
        root, "tools", "analyze_baseline.json")
    baselined = []
    if os.path.exists(baseline_path):
        findings, baselined = apply_baseline(
            findings, load_baseline(baseline_path))

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as out:
            json.dump(to_sarif(findings), out, indent=2)
            out.write("\n")

    for f in findings:
        print(f.format())
    if baselined:
        print(f"eppi-analyze: {len(baselined)} baselined finding(s) "
              f"suppressed (see {os.path.relpath(baseline_path, root)})")
    if findings:
        print(f"eppi-analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"eppi-analyze: clean ({len(db.funcs)} functions, "
          f"{sum(len(f.calls) for f in db.funcs.values())} call sites)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
