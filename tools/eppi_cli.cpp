// eppi_cli — command-line front end for the ε-PPI library.
//
//   eppi_cli build <collection.csv> <out.idx> [options]
//       Builds the ε-PPI for a provider,identity membership table and saves
//       the published index as compressed eppi-index-v3 (the identity
//       names ride along as the lexicon section). Options:
//         --eps <x>          default privacy degree (default 0.6)
//         --eps-file <f>     per-owner degrees: lines of identity,eps
//                            (owners not listed use --eps)
//         --policy <name>    basic | incexp | chernoff (default chernoff)
//         --gamma <x>        Chernoff success ratio (default 0.9)
//         --delta <x>        inc-exp increment (default 0.02)
//         --distributed      run the trust-free multi-party construction
//         --c <n>            coordinator count for --distributed (default 3)
//         --seed <n>         RNG seed (default 1)
//         --no-mixing        disable the common-identity defense (ablation)
//
//   eppi_cli query <index.idx> <collection.csv> <identity> [identity ...]
//       Loads a saved index and answers QueryPPI using the CSV for names.
//
//   eppi_cli stats <index.idx>
//       Prints dimensions, density and the apparent-frequency profile.
//
//   eppi_cli fsck <path>
//       Integrity check with section-level reporting. <path> may be a single
//       index file (either format version) or an epoch-store directory
//       (manifest framing, sticky record, every referenced epoch file,
//       orphan detection). Exit 0 when clean, 1 when corruption or crash
//       artifacts are found — suitable as a CI gate.
//
//   eppi_cli audit <index.idx> <collection.csv> [--eps x]
//       Privacy audit of a published index against the ground-truth table:
//       measured attacker confidences under the primary and common-identity
//       attacks, per-owner bound satisfaction, and the resulting privacy
//       degrees (eps-PRIVATE / NoGuarantee / NoProtect).
//
//   eppi_cli party <collection.csv> --id I --port-base P [options]
//       Runs ONE provider of the distributed construction as a real network
//       process: provider I (by CSV order) listens on 127.0.0.1:P+I and
//       meshes with the other providers at P+j. Start one process per
//       provider; each learns only its own row and the protocol's public
//       outputs. Prints this provider's published row as CSV claims.
//       Additional options: --eps x, --c n, --host-file f (one host:port
//       per line overrides the loopback mesh).
//
//   eppi_cli serve [<collection.csv>] [options]
//       Exercises the concurrent serving tier (docs/serving.md): builds a
//       LocatorService from the table, then hammers QueryPPI from reader
//       threads — optionally while a writer thread rebuilds and swaps
//       epochs — and prints the ServingMetrics counters and latency
//       quantiles. Options:
//         --eps <x>        privacy degree for every owner (default 0.6)
//         --threads <T>    reader threads (default 2)
//         --queries <N>    query calls per reader (default 10000)
//         --batch <B>      owners per call; B>1 uses QueryPPI-many (default 1)
//         --rebuilds <R>   concurrent epoch rebuild/swaps (default 0)
//         --seed <n>       RNG seed (default 1)
//         --smoke          built-in synthetic table, no CSV needed; shrinks
//                          the default workload — the CI observability gate
//         --prom           dump the metrics registry as Prometheus text on
//                          stdout (the human summary moves to stderr, so
//                          `serve --smoke --prom | eppi_cli stats` works)
//         --trace <path>   drain the process trace ring and write it as
//                          JSONL (crash-safe atomic write)
//
//   eppi_cli stats [<index.idx> | -]
//       With an index file (any version): dimensions, density and
//       apparent-frequency profile, plus the v3 compression story — shard
//       topology, lexicon size, per-codec row/byte breakdown (matching
//       the serving tier's eppi_index_bytes{codec=...} gauges) and the
//       reduction vs the dense-matrix equivalent.
//       With `-` (or no argument when stdin is piped): reads
//       Prometheus text exposition from stdin, validates it line by line
//       and prints a per-family sample summary; exit 1 on malformed input.
//
//   eppi_cli trace <trace.jsonl> [--expect-bytes N]
//       Replays an exported JSONL trace (serve/party --trace or a test run)
//       into the paper's Fig. 6 per-phase cost table: one row per protocol
//       phase with summed time, bytes, messages and rounds across parties.
//       Merged multi-process traces additionally get the compute/wait/stall
//       decomposition and the cross-process critical path.
//       --expect-bytes fails (exit 1) unless the summed phase bytes equal N
//       — the CI hook that pins the trace to the CostMeter ground truth.
//
//   eppi_cli trace merge <out.jsonl> <in.jsonl...> [options]
//       Joins per-process trace exports (one per party) into one causally
//       ordered timeline: net.recv spans matched to their remote sender
//       spans give cross-process edges; per-process clock offsets are
//       estimated from the matched send/recv pairs (difference constraints,
//       so no matched first-transmission pair ends up received before it
//       was sent); send_ns attributes are rebased into the merged clock.
//       Prints the merge report (offsets, edge counts, violations).
//         --require-edges N    exit 1 unless >= N cross-process edges
//         --max-violations N   exit 1 if more than N causality violations
//       Both gates back the multiprocess smoke: a merged m=4 run must
//       reconstruct real cross-process parent links with zero violations.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "attack/threat_report.h"
#include "core/constructor.h"
#include "core/distributed_constructor.h"
#include "core/construction_party.h"
#include "core/epoch_store.h"
#include "core/index_io.h"
#include "core/locator_service.h"
#include "core/posting_index.h"
#include "dataset/collection_table.h"
#include "net/mini_http.h"
#include "net/socket_transport.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "obs/trace_json.h"
#include "obs/trace_merge.h"
#include "obs/trace_replay.h"
#include "storage/posix_vfs.h"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  eppi_cli build <collection.csv> <out.idx> [--eps x] "
         "[--policy basic|incexp|chernoff]\n"
         "           [--gamma x] [--delta x] [--distributed] [--c n] "
         "[--seed n] [--no-mixing]\n"
         "  eppi_cli query <index.idx> <collection.csv> <identity> "
         "[identity ...]\n"
         "  eppi_cli stats <index.idx | ->   (- validates Prometheus text "
         "from stdin)\n"
         "  eppi_cli fsck <index.idx | store-dir>\n"
         "  eppi_cli party <collection.csv> --id I --port-base P "
         "[--eps x] [--c n] [--host-file f]\n"
         "           [--ft] [--seed n] [--listen-port P] [--metrics-port P] "
         "[--linger] [--trace out.jsonl]\n"
         "           [--heartbeat-ms H] [--heartbeat-timeout-ms T] "
         "[--stage-timeout-ms T] [--connect-timeout-ms T]\n"
         "  eppi_cli audit <index.idx> <collection.csv> [--eps x]\n"
         "  eppi_cli serve [<collection.csv>] [--eps x] [--threads T] "
         "[--queries N] [--batch B]\n"
         "           [--rebuilds R] [--seed n] [--smoke] [--prom] "
         "[--trace out.jsonl] [--listen PORT] [--no-delta]\n"
         "  eppi_cli trace <trace.jsonl> [--expect-bytes N]\n"
         "  eppi_cli trace merge <out.jsonl> <in.jsonl...> "
         "[--require-edges N] [--max-violations N]\n";
  return 2;
}

eppi::dataset::CollectionTable load_csv(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw eppi::ConfigError("cannot open " + path);
  return eppi::dataset::load_collection_table(file);
}

// Per-owner privacy degrees: `identity,eps` lines override the default.
std::vector<double> load_epsilons(
    const eppi::dataset::CollectionTable& table, double default_eps,
    const std::string& eps_file) {
  std::vector<double> epsilons(table.network.identities(), default_eps);
  if (eps_file.empty()) return epsilons;
  std::ifstream file(eps_file);
  if (!file) throw eppi::ConfigError("cannot open " + eps_file);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) {
      throw eppi::ConfigError("eps file: malformed line " +
                              std::to_string(line_no));
    }
    const std::string name = line.substr(0, comma);
    const double eps = std::stod(line.substr(comma + 1));
    if (eps < 0.0 || eps > 1.0) {
      throw eppi::ConfigError("eps file: epsilon out of [0,1] on line " +
                              std::to_string(line_no));
    }
    const auto it = std::find(table.identity_names.begin(),
                              table.identity_names.end(), name);
    if (it == table.identity_names.end()) {
      throw eppi::ConfigError("eps file: unknown identity " + name);
    }
    epsilons[static_cast<std::size_t>(it - table.identity_names.begin())] =
        eps;
  }
  return epsilons;
}

eppi::core::PpiIndex load_idx(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw eppi::ConfigError("cannot open " + path);
  return eppi::core::load_index(file);
}

int cmd_build(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string csv_path = args[0];
  const std::string out_path = args[1];
  double eps = 0.6;
  std::string eps_file;
  std::string policy_name = "chernoff";
  double gamma = 0.9;
  double delta = 0.02;
  bool distributed = false;
  bool mixing = true;
  std::size_t c = 3;
  std::uint64_t seed = 1;
  for (std::size_t a = 2; a < args.size(); ++a) {
    const std::string& arg = args[a];
    const auto next = [&]() -> const std::string& {
      if (a + 1 >= args.size()) throw eppi::ConfigError(arg + " needs a value");
      return args[++a];
    };
    if (arg == "--eps") {
      eps = std::stod(next());
    } else if (arg == "--eps-file") {
      eps_file = next();
    } else if (arg == "--policy") {
      policy_name = next();
    } else if (arg == "--gamma") {
      gamma = std::stod(next());
    } else if (arg == "--delta") {
      delta = std::stod(next());
    } else if (arg == "--distributed") {
      distributed = true;
    } else if (arg == "--no-mixing") {
      mixing = false;
    } else if (arg == "--c") {
      c = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else {
      throw eppi::ConfigError("unknown option " + arg);
    }
  }

  eppi::core::BetaPolicy policy;
  if (policy_name == "basic") {
    policy = eppi::core::BetaPolicy::basic();
  } else if (policy_name == "incexp") {
    policy = eppi::core::BetaPolicy::inc_exp(delta);
  } else if (policy_name == "chernoff") {
    policy = eppi::core::BetaPolicy::chernoff(gamma);
  } else {
    throw eppi::ConfigError("unknown policy " + policy_name);
  }

  const auto table = load_csv(csv_path);
  const auto& net = table.network;
  const std::vector<double> epsilons = load_epsilons(table, eps, eps_file);
  std::cerr << "building index over " << net.providers() << " providers / "
            << net.identities() << " identities (" << policy_name
            << ", eps=" << eps << (distributed ? ", distributed" : "")
            << ")\n";

  eppi::core::PpiIndex index;
  if (distributed) {
    eppi::core::DistributedOptions options;
    options.policy = policy;
    options.enable_mixing = mixing;
    options.c = c;
    options.seed = seed;
    auto result = eppi::core::construct_distributed(net.membership,
                                                    epsilons, options);
    std::cerr << "protocol: " << result.report.total_cost.messages
              << " messages, " << result.report.total_cost.rounds
              << " rounds; " << result.report.common_count
              << " common identities, lambda=" << result.report.lambda
              << '\n';
    index = std::move(result.index);
  } else {
    eppi::core::ConstructionOptions options;
    options.policy = policy;
    options.enable_mixing = mixing;
    eppi::Rng rng(seed);
    auto result = eppi::core::construct_centralized(net.membership, epsilons,
                                                    options, rng);
    std::cerr << "lambda=" << result.info.lambda << ", xi=" << result.info.xi
              << '\n';
    index = std::move(result.index);
  }

  // Crash-safe write: a killed build leaves either the previous index or a
  // quarantinable .tmp, never a torn file that later loads half-garbage.
  // Written as compressed v3 with the collection table's identity names as
  // the lexicon, so `stats`/`query` can resolve names from the file alone.
  std::vector<std::pair<std::string, eppi::core::IdentityId>> names;
  for (std::size_t j = 0; j < table.identity_names.size(); ++j) {
    names.emplace_back(table.identity_names[j],
                       static_cast<eppi::core::IdentityId>(j));
  }
  const eppi::core::Lexicon lexicon(std::move(names));
  eppi::storage::PosixVfs vfs;
  eppi::storage::atomic_write_file(
      vfs, out_path,
      eppi::core::save_index_v3_bytes(eppi::core::PostingIndex(index),
                                      &lexicon));
  std::cerr << "wrote " << out_path << '\n';
  return 0;
}

int cmd_fsck(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const std::string& path = args[0];
  eppi::storage::PosixVfs vfs;
  const eppi::core::FsckReport report =
      std::filesystem::is_directory(path)
          ? eppi::core::fsck_store(vfs, path)
          : eppi::core::fsck_index_file(vfs, path);
  for (const auto& note : report.notes) {
    std::cout << "note: " << note << '\n';
  }
  for (const auto& issue : report.issues) {
    std::cout << "CORRUPT " << issue.file << " [" << issue.section
              << "]: " << issue.message << '\n';
  }
  std::cout << (report.ok ? "clean" : "corrupt") << " ("
            << report.files_checked << " file(s) checked, "
            << report.issues.size() << " issue(s))\n";
  return report.ok ? 0 : 1;
}

int cmd_query(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const auto index = load_idx(args[0]);
  const auto table = load_csv(args[1]);
  if (index.providers() != table.network.providers() ||
      index.identities() != table.network.identities()) {
    throw eppi::ConfigError("index and collection table shapes differ");
  }
  const eppi::core::PostingIndex postings(index);
  for (std::size_t a = 2; a < args.size(); ++a) {
    const std::string& name = args[a];
    const auto it = std::find(table.identity_names.begin(),
                              table.identity_names.end(), name);
    if (it == table.identity_names.end()) {
      std::cout << name << ": unknown identity\n";
      continue;
    }
    const auto id = static_cast<eppi::core::IdentityId>(
        it - table.identity_names.begin());
    std::cout << name << ':';
    for (const auto p : postings.query(id)) {
      std::cout << ' ' << table.provider_names[p];
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_audit(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto index = load_idx(args[0]);
  const auto table = load_csv(args[1]);
  double eps = 0.6;
  for (std::size_t a = 2; a < args.size(); ++a) {
    if (args[a] == "--eps" && a + 1 < args.size()) {
      eps = std::stod(args[++a]);
    } else {
      throw eppi::ConfigError("unknown option " + args[a]);
    }
  }
  const auto& net = table.network;
  if (index.providers() != net.providers() ||
      index.identities() != net.identities()) {
    throw eppi::ConfigError("index and collection table shapes differ");
  }
  const std::vector<double> epsilons(net.identities(), eps);
  // Ground-truth common flags under the default policy.
  const auto policy = eppi::core::BetaPolicy::chernoff(0.9);
  const auto thresholds = eppi::core::common_thresholds(
      policy, epsilons, net.providers());
  std::vector<bool> common(net.identities());
  for (std::size_t j = 0; j < net.identities(); ++j) {
    common[j] = net.membership.col_count(j) >= thresholds[j];
  }
  eppi::Rng rng(1);
  const auto report = eppi::attack::audit_index(
      net.membership, index.matrix(), epsilons, common, rng);
  std::cout << "primary attack:\n"
            << "  mean confidence:    " << report.primary_mean_confidence
            << "\n  bound satisfaction: " << report.bound_satisfaction
            << " over " << report.owners_classified << " feasible owners\n"
            << "  degree:             "
            << eppi::attack::to_string(report.primary_degree) << '\n';
  std::cout << "common-identity attack:\n"
            << "  candidates flagged: " << report.common_candidates
            << " (true commons among them: " << report.common_hits << ")\n"
            << "  identification confidence: "
            << report.common_identification_confidence
            << " (xi = " << report.xi << ")\n"
            << "  degree:             "
            << eppi::attack::to_string(report.common_degree) << '\n';
  return 0;
}

// Drains the process trace ring and writes it as JSONL, crash-safe. Shared
// by `party --trace`, `serve --trace`, and the HTTP /trace endpoints (which
// skip the file and return the body). Draining advances the ring watermark,
// so file export and endpoint scrapes see disjoint event batches.
void write_trace_file(const std::string& path) {
  const std::string jsonl =
      eppi::obs::to_jsonl(eppi::obs::default_sink().drain());
  eppi::storage::PosixVfs vfs;
  eppi::storage::atomic_write_file(
      vfs, path,
      std::span(reinterpret_cast<const std::uint8_t*>(jsonl.data()),
                jsonl.size()));
  std::cerr << "wrote trace (" << jsonl.size() << " bytes) to " << path
            << '\n';
}

// GET /trace: the trace ring as newline-delimited JSON.
eppi::net::HttpResponse trace_endpoint() {
  eppi::net::HttpResponse resp;
  resp.content_type = "application/x-ndjson";
  resp.body = eppi::obs::to_jsonl(eppi::obs::default_sink().drain());
  return resp;
}

// GET /slowlog: the K slowest query_ppi_many batches, slowest first.
eppi::net::HttpResponse slowlog_endpoint() {
  eppi::net::HttpResponse resp;
  resp.content_type = "application/x-ndjson";
  resp.body = eppi::obs::to_jsonl(eppi::obs::SlowQueryLog::global().snapshot());
  return resp;
}

// SIGTERM/SIGINT request a clean drain: finish the work in flight, tear the
// runtime down in order, exit 0. Handlers only set the flag; drain points
// poll it.
volatile std::sig_atomic_t g_terminate = 0;

void install_terminate_handler() {
  struct sigaction sa{};
  sa.sa_handler = [](int) { g_terminate = 1; };
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

int cmd_party(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string csv_path = args[0];
  std::size_t id = 0;
  bool have_id = false;
  std::uint16_t port_base = 0;
  double eps = 0.6;
  std::string eps_file;
  std::size_t c = 2;
  std::string host_file;
  bool ft = false;
  std::uint64_t seed = 1;
  std::uint16_t listen_port = 0;
  std::uint16_t metrics_port = 0;
  bool have_metrics_port = false;
  int connect_timeout_ms = 10000;
  std::size_t heartbeat_ms = 500;
  std::size_t heartbeat_timeout_ms = 2000;
  std::size_t stage_timeout_ms = 0;
  bool linger = false;
  std::string trace_path;
  for (std::size_t a = 1; a < args.size(); ++a) {
    const std::string& arg = args[a];
    const auto next = [&]() -> const std::string& {
      if (a + 1 >= args.size()) throw eppi::ConfigError(arg + " needs a value");
      return args[++a];
    };
    if (arg == "--id") {
      id = std::stoul(next());
      have_id = true;
    } else if (arg == "--port-base") {
      port_base = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--eps") {
      eps = std::stod(next());
    } else if (arg == "--eps-file") {
      eps_file = next();
    } else if (arg == "--c") {
      c = std::stoul(next());
    } else if (arg == "--host-file") {
      host_file = next();
    } else if (arg == "--ft") {
      ft = true;
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--listen-port") {
      listen_port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--metrics-port") {
      metrics_port = static_cast<std::uint16_t>(std::stoul(next()));
      have_metrics_port = true;
    } else if (arg == "--connect-timeout-ms") {
      connect_timeout_ms = static_cast<int>(std::stoul(next()));
    } else if (arg == "--heartbeat-ms") {
      heartbeat_ms = std::stoul(next());
    } else if (arg == "--heartbeat-timeout-ms") {
      heartbeat_timeout_ms = std::stoul(next());
    } else if (arg == "--stage-timeout-ms") {
      stage_timeout_ms = std::stoul(next());
    } else if (arg == "--linger") {
      linger = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      throw eppi::ConfigError("unknown option " + arg);
    }
  }
  if (!have_id || (port_base == 0 && host_file.empty())) return usage();

  const auto table = load_csv(csv_path);
  const auto& net = table.network;
  const std::size_t m = net.providers();
  if (id >= m) throw eppi::ConfigError("--id out of range for this table");

  std::vector<eppi::net::Endpoint> endpoints(m);
  if (!host_file.empty()) {
    std::ifstream hosts(host_file);
    if (!hosts) throw eppi::ConfigError("cannot open " + host_file);
    std::string line;
    std::size_t k = 0;
    while (std::getline(hosts, line) && k < m) {
      const auto colon = line.rfind(':');
      if (colon == std::string::npos) {
        throw eppi::ConfigError("host file line needs host:port");
      }
      endpoints[k].host = line.substr(0, colon);
      endpoints[k].port =
          static_cast<std::uint16_t>(std::stoul(line.substr(colon + 1)));
      ++k;
    }
    if (k != m) throw eppi::ConfigError("host file must list one endpoint per provider");
  } else {
    for (std::size_t k = 0; k < m; ++k) {
      endpoints[k].port = static_cast<std::uint16_t>(port_base + k);
    }
  }

  // My private input: this provider's row only.
  std::vector<std::uint8_t> my_row(net.identities());
  for (std::size_t j = 0; j < net.identities(); ++j) {
    my_row[j] = net.membership.get(id, j) ? 1 : 0;
  }
  const std::vector<double> epsilons = load_epsilons(table, eps, eps_file);

  eppi::core::DistributedOptions options;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  options.c = c;
  options.seed = seed;
  if (ft) {
    options.fault_tolerance.enabled = true;
    options.fault_tolerance.reliable_delivery = true;
    if (stage_timeout_ms != 0) {
      options.fault_tolerance.stage_timeout =
          std::chrono::milliseconds(stage_timeout_ms);
    }
  }

  install_terminate_handler();

  // The metrics endpoint comes up before the mesh so an operator can watch
  // reconnect/heartbeat counters while the mesh is still forming.
  std::unique_ptr<eppi::net::MiniHttpServer> http;
  if (have_metrics_port) {
    http = std::make_unique<eppi::net::MiniHttpServer>(
        metrics_port, [](const eppi::net::HttpRequest& req) {
          eppi::net::HttpResponse resp;
          if (req.path == "/healthz") {
            resp.body = "ok\n";
          } else if (req.path == "/metrics") {
            resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
            resp.body = eppi::obs::Registry::global().render_prometheus();
          } else if (req.path == "/trace") {
            resp = trace_endpoint();
          } else {
            resp.status = 404;
            resp.body = "not found\n";
          }
          return resp;
        });
    http->start();
    std::cerr << "party " << id << " metrics on port " << http->port()
              << '\n';
  }

  eppi::net::SocketRuntimeOptions runtime_options;
  runtime_options.rng_seed = seed;
  runtime_options.connect_timeout_ms = connect_timeout_ms;
  runtime_options.listen_port_override = listen_port;
  runtime_options.heartbeat_interval = std::chrono::milliseconds(heartbeat_ms);
  runtime_options.heartbeat_timeout =
      std::chrono::milliseconds(heartbeat_timeout_ms);
  if (ft) {
    runtime_options.reliable = true;
    runtime_options.reliable_options = options.fault_tolerance.reliable;
    // Plain receives must outlast one full FT stage plus its retries.
    runtime_options.recv_timeout =
        options.fault_tolerance.mpc_timeout + std::chrono::seconds(5);
  }
  std::cerr << "party " << id << "/" << m << " ("
            << table.provider_names[id] << ") joining mesh...\n";
  eppi::net::SocketRuntime runtime(static_cast<eppi::net::PartyId>(id),
                                   endpoints, runtime_options);
  const auto result = eppi::core::run_construction_party(
      runtime.context(), my_row, epsilons, options);

  std::cerr << "construction complete; published claims:\n";
  for (std::size_t j = 0; j < net.identities(); ++j) {
    if (result.published_row[j] != 0) {
      std::cout << table.provider_names[id] << ','
                << table.identity_names[j] << '\n';
    }
  }
  if (result.coordinator) {
    std::cerr << "coordinator view: " << result.coordinator->common_count
              << " common identities, lambda="
              << result.coordinator->lambda << '\n';
  }
  std::cout.flush();

  // With --linger the process stays up after construction (metrics stay
  // scrapeable, the mesh keeps heartbeating) until SIGTERM, then drains.
  if (linger) {
    std::cerr << "party " << id << " lingering until SIGTERM\n";
    while (g_terminate == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "party " << id << " draining\n";
  }
  runtime.shutdown();
  // This party's CostMeter ground truth — the protocol-level meter the
  // phase spans snapshot (first-time sends; transport acks/retransmits are
  // framing, not protocol cost). The smoke gate sums these lines across
  // parties and pins the merged trace's replayed totals to them exactly.
  const auto cost = runtime.context().local_meter().snapshot();
  std::cerr << "cost: bytes=" << cost.bytes << " messages=" << cost.messages
            << " rounds=" << cost.rounds << '\n';
  // Export after shutdown: the drain phase can still materialize net.recv
  // spans, and a SIGTERM'd linger run must flush them too.
  if (!trace_path.empty()) write_trace_file(trace_path);
  if (http) http->stop();
  return 0;
}

// Deterministic built-in table for `serve --smoke`: big enough to exercise
// readers, rebuilds and every metric family, small enough for a CI gate.
eppi::dataset::CollectionTable smoke_table() {
  std::ostringstream csv;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if ((i + j) % 3 != 0) csv << "prov" << i << ",owner" << j << '\n';
    }
  }
  std::istringstream in(csv.str());
  return eppi::dataset::load_collection_table(in);
}

int cmd_serve(const std::vector<std::string>& args) {
  std::string csv_path;
  double eps = 0.6;
  std::size_t threads = 2;
  std::size_t queries = 10000;
  bool queries_set = false;
  std::size_t batch = 1;
  std::size_t rebuilds = 0;
  bool rebuilds_set = false;
  std::uint64_t seed = 1;
  bool smoke = false;
  bool prom = false;
  bool no_delta = false;
  std::string trace_path;
  std::uint16_t listen_port = 0;
  bool listen_set = false;
  for (std::size_t a = 0; a < args.size(); ++a) {
    const std::string& arg = args[a];
    const auto next = [&]() -> const std::string& {
      if (a + 1 >= args.size()) throw eppi::ConfigError(arg + " needs a value");
      return args[++a];
    };
    if (arg == "--eps") {
      eps = std::stod(next());
    } else if (arg == "--listen") {
      listen_port = static_cast<std::uint16_t>(std::stoul(next()));
      listen_set = true;
    } else if (arg == "--threads") {
      threads = std::stoul(next());
    } else if (arg == "--queries") {
      queries = std::stoul(next());
      queries_set = true;
    } else if (arg == "--batch") {
      batch = std::stoul(next());
    } else if (arg == "--rebuilds") {
      rebuilds = std::stoul(next());
      rebuilds_set = true;
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--prom") {
      prom = true;
    } else if (arg == "--no-delta") {
      no_delta = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      throw eppi::ConfigError("unknown option " + arg);
    } else if (csv_path.empty()) {
      csv_path = arg;
    } else {
      throw eppi::ConfigError("unexpected argument " + arg);
    }
  }
  if (csv_path.empty() && !smoke) return usage();
  if (threads == 0 || batch == 0) {
    throw eppi::ConfigError("--threads and --batch must be positive");
  }
  if (smoke) {
    // A smoke run must finish in well under a second; still defaults to one
    // rebuild so the swap/publish paths show up in the exposition.
    if (!queries_set) queries = 500;
    if (!rebuilds_set) rebuilds = 1;
  }

  const auto table = smoke ? smoke_table() : load_csv(csv_path);
  const auto& net = table.network;
  if (net.identities() == 0) throw eppi::ConfigError("table has no identities");

  eppi::core::LocatorService::Options options;
  options.distributed = false;
  options.policy = eppi::core::BetaPolicy::chernoff(0.9);
  options.seed = seed;
  // --no-delta is the operational escape hatch: every admin-driven rebuild
  // becomes a full one (delta epochs are otherwise on by default).
  options.enable_delta = !no_delta;
  eppi::core::LocatorService service(options);
  for (std::size_t i = 0; i < net.providers(); ++i) {
    for (std::size_t j = 0; j < net.identities(); ++j) {
      if (net.membership.get(i, j)) {
        service.delegate(table.identity_names[j], eps,
                         table.provider_names[i]);
      }
    }
  }
  service.construct_ppi();

  if (listen_set) {
    // Daemon mode: expose the locator over HTTP until SIGTERM/SIGINT, then
    // drain in-flight requests and exit cleanly. stdout stays quiet so
    // supervisors can reserve it; operational chatter goes to stderr.
    //
    // Besides the read path (/query), the daemon accepts membership churn:
    // POST /delegate (owner,eps,provider per line), POST /retire (provider
    // per line), POST /rebuild (publishes the next epoch — incrementally
    // when only a few owners moved, unless --no-delta). Queries stay
    // lock-free on the snapshot; the admin mutex only serializes writers.
    install_terminate_handler();
    std::mutex admin_mu;
    eppi::net::MiniHttpServer http(
        listen_port, [&](const eppi::net::HttpRequest& req) {
          eppi::net::HttpResponse resp;
          if (req.path == "/healthz") {
            resp.body = "ok\n";
            return resp;
          }
          if (req.path == "/metrics") {
            resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
            resp.body = eppi::obs::Registry::global().render_prometheus();
            return resp;
          }
          if (req.path == "/trace") return trace_endpoint();
          if (req.path == "/slowlog") return slowlog_endpoint();
          if (req.path.rfind("/query", 0) == 0) {
            std::vector<std::string> owners;
            if (req.method == "POST") {
              std::istringstream body(req.body);
              std::string owner;
              while (std::getline(body, owner)) {
                if (!owner.empty() && owner.back() == '\r') owner.pop_back();
                if (!owner.empty()) owners.push_back(owner);
              }
            } else {
              const auto pos = req.path.find("?owner=");
              if (pos != std::string::npos) {
                owners.push_back(req.path.substr(pos + 7));
              }
            }
            if (owners.empty()) {
              resp.status = 400;
              resp.body = "no owners given\n";
              return resp;
            }
            const auto result = service.query_ppi_many(owners);
            std::ostringstream lines;
            for (std::size_t i = 0; i < owners.size(); ++i) {
              for (const auto& prov : result.providers[i]) {
                lines << owners[i] << ',' << prov << '\n';
              }
            }
            resp.content_type = "text/csv; charset=utf-8";
            resp.body = lines.str();
            return resp;
          }
          if (req.path == "/delegate" && req.method == "POST") {
            std::scoped_lock lock(admin_mu);
            std::istringstream body(req.body);
            std::string line;
            std::size_t applied = 0;
            try {
              while (std::getline(body, line)) {
                if (!line.empty() && line.back() == '\r') line.pop_back();
                if (line.empty()) continue;
                const auto c1 = line.find(',');
                const auto c2 =
                    c1 == std::string::npos ? c1 : line.find(',', c1 + 1);
                if (c2 == std::string::npos) {
                  throw eppi::ConfigError("expected owner,eps,provider: " +
                                          line);
                }
                service.delegate(line.substr(0, c1),
                                 std::stod(line.substr(c1 + 1, c2 - c1 - 1)),
                                 line.substr(c2 + 1));
                ++applied;
              }
            } catch (const std::exception& err) {
              resp.status = 400;
              resp.body = std::string(err.what()) + "\n";
              return resp;
            }
            resp.body = "delegated " + std::to_string(applied) + "\n";
            return resp;
          }
          if (req.path == "/retire" && req.method == "POST") {
            std::scoped_lock lock(admin_mu);
            std::istringstream body(req.body);
            std::string line;
            std::size_t applied = 0;
            try {
              while (std::getline(body, line)) {
                if (!line.empty() && line.back() == '\r') line.pop_back();
                if (line.empty()) continue;
                service.retire_provider(line);
                ++applied;
              }
            } catch (const std::exception& err) {
              resp.status = 400;
              resp.body = std::string(err.what()) + "\n";
              return resp;
            }
            resp.body = "retired " + std::to_string(applied) + "\n";
            return resp;
          }
          if (req.path == "/rebuild" && req.method == "POST") {
            std::scoped_lock lock(admin_mu);
            try {
              service.construct_ppi();
            } catch (const std::exception& err) {
              resp.status = 500;
              resp.body = std::string(err.what()) + "\n";
              return resp;
            }
            const auto& info = service.last_rebuild();
            std::ostringstream out;
            out << "epoch=" << info.epoch << " delta=" << (info.delta ? 1 : 0)
                << " degraded=" << (info.degraded ? 1 : 0)
                << " dirty=" << info.dirty << " joined=" << info.joined
                << " left=" << info.left << " churn=" << info.churn << '\n';
            resp.body = out.str();
            return resp;
          }
          resp.status = 404;
          resp.body = "not found\n";
          return resp;
        });
    http.start();
    std::cerr << "eppi_serve: " << net.identities() << " owners across "
              << net.providers() << " providers; HTTP on port " << http.port()
              << " (/healthz /metrics /trace /slowlog /query /delegate "
                 "/retire /rebuild); SIGTERM drains\n";
    while (g_terminate == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "eppi_serve: terminate signal received; draining\n";
    http.stop();
    const auto status = service.serving_status();
    const auto metrics = service.metrics();
    std::cerr << "eppi_serve: final epoch " << status.epoch
              << (status.degraded ? " (degraded)" : "") << "; "
              << metrics.queries << " single + " << metrics.batches
              << " batched queries, " << metrics.owners_resolved
              << " owners resolved\n";
    return 0;
  }

  std::cerr << "serving " << net.identities() << " owners across "
            << net.providers() << " providers; " << threads
            << " reader thread(s) x " << queries << " call(s), batch="
            << batch << ", concurrent rebuilds=" << rebuilds << '\n';

  // Readers hammer the snapshot; one optional writer swaps epochs under
  // them by toggling owner 0's privacy degree (serving never pauses).
  std::atomic<std::size_t> readers_left{threads};
  std::thread writer;
  if (rebuilds > 0) {
    writer = std::thread([&] {
      for (std::size_t k = 0; k < rebuilds; ++k) {
        if (readers_left.load(std::memory_order_acquire) == 0) break;
        service.delegate(table.identity_names[0],
                         (k % 2 == 0) ? 0.9 : 0.1, table.provider_names[0]);
        service.construct_ppi();
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < threads; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::string> owners(batch);
      for (std::size_t q = 0; q < queries; ++q) {
        if (batch == 1) {
          (void)service.query_ppi(
              table.identity_names[(r + q) % net.identities()]);
        } else {
          for (std::size_t b = 0; b < batch; ++b) {
            owners[b] = table.identity_names[(r + q + b) % net.identities()];
          }
          (void)service.query_ppi_many(owners);
        }
      }
      readers_left.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& t : readers) t.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (writer.joinable()) writer.join();

  const auto status = service.serving_status();
  const auto metrics = service.metrics();
  // With --prom the machine-readable exposition owns stdout; the human
  // summary moves to stderr so `serve --prom | eppi_cli stats` stays clean.
  std::ostream& out = prom ? std::cerr : std::cout;
  out << "epoch:            " << status.epoch
      << (status.degraded ? " (degraded)" : "") << '\n'
      << "queries:          " << metrics.queries << " single, "
      << metrics.batches << " batched\n"
      << "owners resolved:  " << metrics.owners_resolved << " ("
      << static_cast<std::uint64_t>(
             seconds > 0.0
                 ? static_cast<double>(metrics.owners_resolved) / seconds
                 : 0.0)
      << "/s)\n"
      << "latency p50/p99:  " << metrics.latency.quantile_us(0.5)
      << " / " << metrics.latency.quantile_us(0.99) << " us per call\n"
      << "epoch swaps:      " << metrics.epoch_swaps << '\n'
      << "degraded serves:  " << metrics.degraded_serves << '\n'
      << "unknown owners:   " << metrics.unknown_owners << '\n';
  if (prom) {
    std::cout << eppi::obs::Registry::global().render_prometheus();
  }
  if (!trace_path.empty()) write_trace_file(trace_path);
  return 0;
}

// --- Prometheus text validation (`eppi_cli stats -`) ---------------------
//
// A deliberately strict reader for the exposition this binary itself emits:
// `# HELP`/`# TYPE` comments plus `name{labels} value` samples. Used as the
// receiving end of `serve --prom | eppi_cli stats -` in CI, so malformed
// output is a hard failure, not a shrug.

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
  }
  return true;
}

// Splits `name{labels} value` / `name value`; returns false on any syntax
// violation (unbalanced braces, empty name, non-numeric value...).
bool parse_sample_line(const std::string& line, std::string& name) {
  std::size_t name_end = 0;
  while (name_end < line.size() && line[name_end] != '{' &&
         line[name_end] != ' ') {
    ++name_end;
  }
  name = line.substr(0, name_end);
  if (!valid_metric_name(name)) return false;
  std::size_t pos = name_end;
  if (pos < line.size() && line[pos] == '{') {
    const auto close = line.find('}', pos);
    if (close == std::string::npos) return false;
    // Label pairs must look like key="value": quote parity inside the block.
    std::size_t quotes = 0;
    for (std::size_t k = pos + 1; k < close; ++k) {
      if (line[k] == '"') ++quotes;
    }
    if (quotes % 2 != 0) return false;
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  const std::string value = line.substr(pos + 1);
  if (value.empty()) return false;
  try {
    std::size_t used = 0;
    (void)std::stod(value, &used);
    // Allow an optional trailing timestamp (integer) after the value.
    while (used < value.size() && value[used] == ' ') ++used;
    for (; used < value.size(); ++used) {
      if (!std::isdigit(static_cast<unsigned char>(value[used]))) return false;
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

int validate_prometheus(std::istream& in) {
  std::map<std::string, std::string> family_type;  // name -> TYPE
  std::map<std::string, std::uint64_t> samples;    // family -> sample count
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t total = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name;
      meta >> hash >> kind >> name;
      if (kind == "TYPE") {
        static const char* kKinds[] = {"counter", "gauge", "histogram",
                                       "summary", "untyped"};
        std::string type;
        meta >> type;
        if (!valid_metric_name(name) ||
            std::find_if(std::begin(kKinds), std::end(kKinds),
                         [&](const char* k) { return type == k; }) ==
                std::end(kKinds)) {
          std::cerr << "stats: malformed TYPE line " << line_no << ": "
                    << line << '\n';
          return 1;
        }
        family_type[name] = type;
      } else if (kind == "HELP" && !valid_metric_name(name)) {
        std::cerr << "stats: malformed HELP line " << line_no << ": " << line
                  << '\n';
        return 1;
      }
      continue;
    }
    std::string name;
    if (!parse_sample_line(line, name)) {
      std::cerr << "stats: malformed sample line " << line_no << ": " << line
                << '\n';
      return 1;
    }
    // Histogram series sample under the family name (strip the suffix).
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0 &&
          family_type.count(name.substr(0, name.size() - s.size())) != 0) {
        family = name.substr(0, name.size() - s.size());
        break;
      }
    }
    ++samples[family];
    ++total;
  }
  if (total == 0) {
    std::cerr << "stats: no samples on stdin\n";
    return 1;
  }
  std::cout << "valid Prometheus exposition: " << family_type.size()
            << " typed families, " << samples.size() << " sampled, " << total
            << " samples\n";
  for (const auto& [family, count] : samples) {
    const auto it = family_type.find(family);
    std::cout << "  " << family << " ("
              << (it == family_type.end() ? "untyped" : it->second) << "): "
              << count << " sample(s)\n";
  }
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.size() > 1) return usage();
  if (args.empty() || args[0] == "-") return validate_prometheus(std::cin);
  eppi::storage::PosixVfs vfs;
  const auto bytes = vfs.read_file(args[0]);
  const auto validation = eppi::core::validate_index(bytes);
  const auto loaded = eppi::core::load_postings_bytes(bytes);
  const auto& postings = loaded.postings;
  const std::size_t m = postings.providers();
  const std::size_t n = postings.identities();

  std::size_t claims = 0;
  std::size_t full = 0;
  std::size_t max_freq = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t f =
        postings.apparent_frequency(static_cast<eppi::core::IdentityId>(j));
    claims += f;
    max_freq = std::max(max_freq, f);
    if (f == m) ++full;
  }
  const std::size_t cells = m * n;
  std::cout << "format:     eppi-index-v" << validation.version << " ("
            << postings.shard_count() << " shard(s), span "
            << postings.shard_span() << ", lexicon: "
            << (loaded.lexicon != nullptr
                    ? std::to_string(loaded.lexicon->size()) + " names"
                    : std::string("none"))
            << ")\n"
            << "providers:  " << m << '\n'
            << "identities: " << n << '\n'
            << "claims:     " << claims << " ("
            << (cells == 0 ? 0.0
                           : 100.0 * static_cast<double>(claims) /
                                 static_cast<double>(cells))
            << "% dense)\n"
            << "max apparent frequency: " << max_freq << '\n'
            << "broadcast (apparent-common) identities: " << full << '\n';

  // Per-codec storage breakdown: the same numbers the serving tier exports
  // as eppi_index_bytes{codec=...} — here for files at rest.
  const auto fp = postings.memory_footprint();
  std::cout << "storage by codec:\n";
  for (std::size_t c = 0; c < eppi::core::kPostingCodecCount; ++c) {
    const auto codec = static_cast<eppi::core::PostingCodec>(c);
    std::cout << "  " << eppi::core::to_string(codec) << ": "
              << fp.by_codec[c].rows << " row(s), "
              << fp.by_codec[c].payload_bytes << " byte(s)\n";
  }
  const std::size_t dense_bytes = (cells + 7) / 8;
  std::cout << "payload: " << fp.payload_bytes << " byte(s), resident: "
            << fp.resident_bytes << " byte(s)\n"
            << "dense-matrix equivalent: " << dense_bytes << " byte(s)";
  if (fp.resident_bytes > 0) {
    std::cout << " (x"
              << static_cast<double>(dense_bytes) /
                     static_cast<double>(fp.resident_bytes)
              << " reduction)";
  }
  std::cout << '\n';
  return 0;
}

std::vector<eppi::obs::TraceEvent> load_trace_events(const std::string& path,
                                                     std::size_t* errors) {
  std::ifstream in(path);
  if (!in) throw eppi::ConfigError("cannot open " + path);
  std::vector<eppi::obs::TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    eppi::obs::TraceEvent ev;
    if (eppi::obs::parse_trace_line(line, &ev)) {
      events.push_back(std::move(ev));
    } else if (errors != nullptr) {
      ++*errors;
    }
  }
  return events;
}

int cmd_trace_merge(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string& out_path = args[0];
  std::vector<std::string> inputs;
  std::uint64_t require_edges = 0;
  std::uint64_t max_violations = 0;
  bool have_max_violations = false;
  for (std::size_t a = 1; a < args.size(); ++a) {
    const std::string& arg = args[a];
    const auto next = [&]() -> const std::string& {
      if (a + 1 >= args.size()) throw eppi::ConfigError(arg + " needs a value");
      return args[++a];
    };
    if (arg == "--require-edges") {
      require_edges = std::stoull(next());
    } else if (arg == "--max-violations") {
      max_violations = std::stoull(next());
      have_max_violations = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw eppi::ConfigError("unknown option " + arg);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<eppi::obs::TraceFile> files;
  std::size_t parse_errors = 0;
  for (const std::string& path : inputs) {
    eppi::obs::TraceFile file;
    file.label = path;
    file.events = load_trace_events(path, &parse_errors);
    files.push_back(std::move(file));
  }
  eppi::obs::MergeReport report;
  const auto merged = eppi::obs::merge_traces(std::move(files), &report);

  std::ostringstream out;
  for (const auto& ev : merged) out << eppi::obs::to_json_line(ev);
  const std::string body = out.str();
  eppi::storage::PosixVfs vfs;
  eppi::storage::atomic_write_file(
      vfs, out_path,
      std::span(reinterpret_cast<const std::uint8_t*>(body.data()),
                body.size()));
  std::cout << eppi::obs::render_merge_report(report);
  if (parse_errors != 0) {
    std::cout << "parse errors: " << parse_errors << '\n';
  }
  std::cerr << "wrote merged trace (" << merged.size() << " events) to "
            << out_path << '\n';

  if (report.cross_process_edges < require_edges) {
    std::cerr << "trace merge: " << report.cross_process_edges
              << " cross-process edge(s) < required " << require_edges
              << " — context propagation is broken\n";
    return 1;
  }
  if (have_max_violations && report.causality_violations > max_violations) {
    std::cerr << "trace merge: " << report.causality_violations
              << " causality violation(s) > allowed " << max_violations
              << '\n';
    return 1;
  }
  return 0;
}

int cmd_trace(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  if (args[0] == "merge") {
    return cmd_trace_merge({args.begin() + 1, args.end()});
  }
  const std::string& path = args[0];
  std::uint64_t expect_bytes = 0;
  bool have_expect = false;
  for (std::size_t a = 1; a < args.size(); ++a) {
    if (args[a] == "--expect-bytes" && a + 1 < args.size()) {
      expect_bytes = std::stoull(args[++a]);
      have_expect = true;
    } else {
      throw eppi::ConfigError("unknown option " + args[a]);
    }
  }
  std::ifstream in(path);
  if (!in) throw eppi::ConfigError("cannot open " + path);
  const auto summary = eppi::obs::replay_trace(in);
  std::cout << eppi::obs::render_table(summary);
  if (summary.parse_errors != 0) {
    std::cerr << "trace: " << summary.parse_errors
              << " line(s) failed to parse\n";
    return 1;
  }
  if (have_expect && summary.total_bytes != expect_bytes) {
    std::cerr << "trace: phase bytes " << summary.total_bytes
              << " != expected " << expect_bytes
              << " (CostMeter ground truth)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "build") return cmd_build(args);
    if (command == "query") return cmd_query(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "fsck") return cmd_fsck(args);
    if (command == "party") return cmd_party(args);
    if (command == "audit") return cmd_audit(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "trace") return cmd_trace(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
