#!/usr/bin/env python3
"""Project-specific secret-hygiene linter for the e-PPI codebase.

Pure-Python (stdlib only) so the gate runs anywhere the tests run — no
clang-tidy required. Registered as `ctest -L lint` and wired into
`scripts/check.sh --lint` and CI. Exit status: 0 clean, 1 violations,
2 usage error.

Rules — suppress a single line with

    // eppi-lint: allow(<rule>): <reason>

The reason is mandatory: a bare `allow(<rule>)` no longer suppresses
anything and is itself flagged (`allow-without-reason`), so every
suppression in the tree documents why it is safe:

  rng-construction   std::mt19937 / std::random_device / rand() / srand()
                     constructed outside src/common/rng.h. All randomness
                     must flow through eppi::Rng so runs are seeded and
                     reproducible, and so tests can fork deterministic
                     per-party streams.

  secret-logging     EPPI_LOG/EPPI_DEBUG/... or an iostream insertion whose
                     argument mentions a share/secret identifier. The type
                     system already rejects streaming Secret<T>; this rule
                     catches the pre-taint pattern of logging a *raw* share
                     value that was just unwrapped.

  unbounded-recv     `while (true)` / `for (;;)` loops containing a blocking
                     ctx.recv(...) in protocol code (src/secret, src/mpc):
                     a lost message would hang the party forever. Protocol
                     loops must be bounded by counts or use recv_for.

  escape-hatch       .reveal() / .unwrap_for_wire() / reveal_shares( /
                     wire_shares( outside the audited zones (src/secret,
                     src/mpc, src/attack, tests, bench, examples, tools).
                     src/core and src/net must stay taint-only.

  raw-file-write     std::ofstream / fopen() / ::open() in library or tool
                     code outside src/storage/. Durable state must go
                     through storage::Vfs (atomic_write_file/durable_append)
                     so every write follows the crash-safe commit protocol
                     and is testable under injected storage faults.

  secret-trace-attr  a reveal()/unwrap_for_wire() result passed directly to
                     an observability API (Span::attr/event, Counter::add,
                     Gauge::set, Histogram::record, Registry::counter/...).
                     The deleted Secret<T> overload on Span::attr blocks the
                     typed path at compile time; this rule catches the
                     unwrap-then-record laundering pattern. Telemetry is
                     exported (Prometheus, JSONL traces, BENCH json), so it
                     is NEVER an audited zone — the rule fires even inside
                     src/secret and src/mpc. Only tests/ may do this, to pin
                     the rule itself.

  build-artifact     build directories, object files, or binaries committed
                     to the repository.

  allow-without-reason  an `// eppi-lint: allow(<rule>)` suppression with no
                     `: <reason>` tail. Reasonless suppressions rot: the next
                     reader cannot tell a reviewed exemption from a silenced
                     true positive.

Usage:
  tools/eppi_lint.py [--root DIR] [--list-rules] [--sarif FILE] [paths...]
  tools/eppi_lint.py --self-test

`--sarif FILE` additionally writes the violations as SARIF 2.1.0 (the same
shape tools/eppi_analyze.py emits); scripts/merge_sarif.py folds both tools'
output into the single file CI uploads for code scanning.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import subprocess
import sys
from dataclasses import dataclass

# --------------------------------------------------------------------------
# Shared helpers

SOURCE_EXTENSIONS = (".cpp", ".h", ".hpp", ".cc")

# A suppression must carry a reason; see allow-without-reason below.
ALLOW_RE = re.compile(r"//\s*eppi-lint:\s*allow\(([a-z-]+)\)\s*:\s*\S")
BARE_ALLOW_RE = re.compile(r"//\s*eppi-lint:\s*allow\(([a-z-]+)\)(?!\s*:\s*\S)")

# Paths (relative, '/'-separated) scanned for source rules.
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")


@dataclass
class Violation:
    rule: str
    path: str
    line: int  # 1-based; 0 = whole file
    message: str

    def format(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Crude single-line scrub so rules don't fire inside comments/strings.

    Good enough for a line-oriented linter: removes // comments, "..." and
    '...' literals. Block comments are handled by the caller's state.
    """
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    comment = line.find("//")
    if comment != -1:
        line = line[:comment]
    return line


def iter_code_lines(text: str):
    """Yields (lineno, raw_line, scrubbed_line) with block comments blanked."""
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end == -1:
                yield lineno, raw, ""
                continue
            line = line[end + 2:]
            in_block = False
        # Blank any block comments that open (and maybe close) on this line.
        while True:
            start = line.find("/*")
            if start == -1:
                break
            end = line.find("*/", start + 2)
            if end == -1:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + line[end + 2:]
        yield lineno, raw, strip_comments_and_strings(line)


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    return bool(m) and m.group(1) == rule


# --------------------------------------------------------------------------
# Rule: rng-construction

RNG_RE = re.compile(
    r"\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|random_device|"
    r"default_random_engine|ranlux\w+|knuth_b)\b"
    r"|(?<![\w:])s?rand\s*\(")

RNG_EXEMPT = ("src/common/rng.h", "src/common/rng.cpp")


def check_rng(path: str, text: str, out: list):
    if path in RNG_EXEMPT:
        return
    for lineno, raw, code in iter_code_lines(text):
        if RNG_RE.search(code) and not allowed(raw, "rng-construction"):
            out.append(Violation(
                "rng-construction", path, lineno,
                "construct randomness via eppi::Rng (src/common/rng.h), not "
                "std engines or rand()"))


# --------------------------------------------------------------------------
# Rule: secret-logging

LOG_MACRO_RE = re.compile(r"\bEPPI_(LOG|DEBUG|INFO|WARN|ERROR)\s*\(")
STREAM_RE = re.compile(r"\b(std\s*::\s*)?(cout|cerr|clog)\b[^;]*<<")
# Identifiers that smell like share material when streamed.
SECRET_IDENT_RE = re.compile(
    r"<<[^;]*\b(share|shares|secret|triple|mask|my_share|super_share)\w*\b",
    re.IGNORECASE)


def check_secret_logging(path: str, text: str, out: list):
    lines = list(iter_code_lines(text))
    for i, (lineno, raw, code) in enumerate(lines):
        if not (LOG_MACRO_RE.search(code) or STREAM_RE.search(code)):
            continue
        # A log statement may span lines; inspect a small window.
        window = " ".join(c for _, _, c in lines[i:i + 3])
        if SECRET_IDENT_RE.search(window) and not allowed(raw, "secret-logging"):
            out.append(Violation(
                "secret-logging", path, lineno,
                "log statement streams a share/secret-named value; log the "
                "public opening (reveal()) or counts instead"))


# --------------------------------------------------------------------------
# Rule: unbounded-recv (protocol code only)

UNBOUNDED_LOOP_RE = re.compile(r"\bwhile\s*\(\s*(true|1)\s*\)|\bfor\s*\(\s*;;")
BLOCKING_RECV_RE = re.compile(r"\bctx\s*[.\-]>?\s*recv\s*\(|\binbox_?\.recv\s*\(")

PROTOCOL_DIRS = ("src/secret/", "src/mpc/")


def check_unbounded_recv(path: str, text: str, out: list):
    if not path.startswith(PROTOCOL_DIRS):
        return
    lines = list(iter_code_lines(text))
    for i, (lineno, raw, code) in enumerate(lines):
        if not UNBOUNDED_LOOP_RE.search(code):
            continue
        # Scan the loop body: to the matching close brace, tracked naively by
        # depth from the loop's opening brace.
        depth = 0
        opened = False
        for lineno2, raw2, code2 in lines[i:]:
            depth += code2.count("{") - code2.count("}")
            if "{" in code2:
                opened = True
            if opened and BLOCKING_RECV_RE.search(code2) \
                    and not allowed(raw2, "unbounded-recv") \
                    and not allowed(raw, "unbounded-recv"):
                out.append(Violation(
                    "unbounded-recv", path, lineno2,
                    "blocking recv inside an unbounded loop in protocol "
                    "code: bound the loop or use recv_for with a timeout"))
                break
            if opened and depth <= 0:
                break


# --------------------------------------------------------------------------
# Rule: escape-hatch confinement

ESCAPE_RE = re.compile(
    r"\.\s*(reveal|unwrap_for_wire)\s*\(|\b(reveal_shares|wire_shares)\s*\(")

# Zones where opening/serializing shares is part of the audited design.
ESCAPE_ZONES = ("src/secret/", "src/mpc/", "src/attack/",
                "tests/", "bench/", "examples/", "tools/")


def check_escape_hatch(path: str, text: str, out: list):
    if path.startswith(ESCAPE_ZONES):
        return
    for lineno, raw, code in iter_code_lines(text):
        if ESCAPE_RE.search(code) and not allowed(raw, "escape-hatch"):
            out.append(Violation(
                "escape-hatch", path, lineno,
                "reveal()/unwrap_for_wire() outside the audited zones "
                "(src/secret, src/mpc, src/attack, tests, bench, examples, "
                "tools); keep src/core and src/net taint-only"))


# --------------------------------------------------------------------------
# Rule: raw-file-write confinement

RAW_WRITE_RE = re.compile(
    r"\bstd\s*::\s*ofstream\b|\bfopen\s*\(|(?<![\w.])::open\s*\(")

# Library and tool code must write through storage::Vfs; tests, benches and
# examples may write scratch files directly.
RAW_WRITE_SCOPES = ("src/", "tools/")
RAW_WRITE_EXEMPT = ("src/storage/",)


def check_raw_file_write(path: str, text: str, out: list):
    if not path.startswith(RAW_WRITE_SCOPES):
        return
    if path.startswith(RAW_WRITE_EXEMPT):
        return
    for lineno, raw, code in iter_code_lines(text):
        if RAW_WRITE_RE.search(code) and not allowed(raw, "raw-file-write"):
            out.append(Violation(
                "raw-file-write", path, lineno,
                "raw file write outside src/storage/; durable state must go "
                "through storage::Vfs (atomic_write_file / durable_append) "
                "so writes are crash-safe and fault-injectable"))


# --------------------------------------------------------------------------
# Rule: secret-trace-attr

# Cheap gate: the line mentions an obs-flavored call at all.
TRACE_CALL_RE = re.compile(
    r"\.\s*(attr|event|record)\s*\(|\b(counter|gauge|histogram)\s*\("
    r"|\.\s*(add|set)\s*\(")
# The violation: an unwrap hatch invoked inside the argument list of one of
# those calls, within a single statement (no ';' between them). Indirect
# flows (unwrap into a local, record the local) are out of scope here — the
# escape-hatch and secret-logging rules own that territory.
TRACE_REVEAL_RE = re.compile(
    r"\b(attr|event|record|add|set|counter|gauge|histogram)\s*\("
    r"[^;]*\b(reveal|unwrap_for_wire)\s*\(")

TRACE_ATTR_EXEMPT = ("tests/",)


def check_secret_trace_attr(path: str, text: str, out: list):
    if path.startswith(TRACE_ATTR_EXEMPT):
        return
    lines = list(iter_code_lines(text))
    for i, (lineno, raw, code) in enumerate(lines):
        if not TRACE_CALL_RE.search(code):
            continue
        # The call's argument list may span lines; inspect a small window.
        window = " ".join(c for _, _, c in lines[i:i + 3])
        if TRACE_REVEAL_RE.search(window) \
                and not allowed(raw, "secret-trace-attr"):
            out.append(Violation(
                "secret-trace-attr", path, lineno,
                "reveal()/unwrap_for_wire() result recorded into a span "
                "attribute or metric; telemetry is exported, so open the "
                "value into a named local (auditable) only if it is public, "
                "and never inline into an observability call"))


# --------------------------------------------------------------------------
# Rule: allow-without-reason

def check_allow_reason(path: str, text: str, out: list):
    for lineno, raw in enumerate(text.splitlines(), start=1):
        m = BARE_ALLOW_RE.search(raw)
        if m:
            out.append(Violation(
                "allow-without-reason", path, lineno,
                f"allow({m.group(1)}) without a reason; write "
                f"`// eppi-lint: allow({m.group(1)}): <why this is safe>` "
                f"(a bare allow suppresses nothing)"))


# --------------------------------------------------------------------------
# Rule: build-artifact (repo hygiene; checks the git index, not file text)

ARTIFACT_RE = re.compile(
    r"(^|/)(build[^/]*|cmake-build[^/]*)/"
    r"|\.(o|obj|a|so|dylib|exe|gch|pch)$"
    r"|(^|/)CMakeCache\.txt$|(^|/)CMakeFiles/")


def check_build_artifacts(root: str, out: list):
    try:
        proc = subprocess.run(
            ["git", "ls-files"], cwd=root, capture_output=True, text=True,
            timeout=30, check=True)
    except (OSError, subprocess.SubprocessError):
        return  # not a git checkout (e.g. an exported tarball): skip
    for path in proc.stdout.splitlines():
        if ARTIFACT_RE.search(path):
            out.append(Violation(
                "build-artifact", path, 0,
                "build artifact committed to the repository"))


# --------------------------------------------------------------------------
# Driver

SOURCE_CHECKS = (check_rng, check_secret_logging, check_unbounded_recv,
                 check_escape_hatch, check_raw_file_write,
                 check_secret_trace_attr, check_allow_reason)

RULES = ("rng-construction", "secret-logging", "unbounded-recv",
         "escape-hatch", "raw-file-write", "secret-trace-attr",
         "build-artifact", "allow-without-reason")


def collect_files(root: str, explicit):
    if explicit:
        for p in explicit:
            rel = os.path.relpath(os.path.abspath(p), root).replace(os.sep, "/")
            yield rel
        return
    for base in SOURCE_DIRS:
        top = os.path.join(root, base)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def to_sarif(violations):
    """SARIF 2.1.0, same shape as tools/eppi_analyze.py emits so
    scripts/merge_sarif.py can fold both into one code-scanning upload."""
    def fingerprint(v):
        return hashlib.sha256(
            f"{v.rule}|{v.path}|{v.message}".encode()).hexdigest()[:16]
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "eppi-lint",
                "rules": [{"id": r} for r in RULES],
            }},
            "results": [
                {
                    "ruleId": v.rule,
                    "level": "error",
                    "message": {"text": v.message},
                    "partialFingerprints": {"eppiLint/v1": fingerprint(v)},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": v.path, "uriBaseId": "SRCROOT"},
                            "region": {"startLine": max(1, v.line)},
                        }
                    }],
                }
                for v in violations
            ],
        }],
    }


def run_lint(root: str, explicit=None) -> list:
    violations: list = []
    for rel in collect_files(root, explicit):
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for check in SOURCE_CHECKS:
            check(rel, text, violations)
    if not explicit:
        check_build_artifacts(root, violations)
    return violations


# --------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on a
# clean equivalent. Keeps the linter itself honest (`--self-test` is run by
# the lint ctest alongside the tree scan).

SELF_TEST_CASES = [
    # (rule, path, snippet, should_fire)
    ("rng-construction", "src/core/x.cpp",
     "std::mt19937 gen(42);\n", True),
    ("rng-construction", "src/core/x.cpp",
     "eppi::Rng rng(42);\n", False),
    ("rng-construction", "src/core/x.cpp",
     "std::mt19937 gen(42);  "
     "// eppi-lint: allow(rng-construction): seeding test vector\n", False),
    # A reasonless allow no longer suppresses the underlying rule...
    ("rng-construction", "src/core/x.cpp",
     "std::mt19937 gen(42);  // eppi-lint: allow(rng-construction)\n", True),
    # ...and is flagged in its own right.
    ("allow-without-reason", "src/core/x.cpp",
     "std::mt19937 gen(42);  // eppi-lint: allow(rng-construction)\n", True),
    ("allow-without-reason", "src/core/x.cpp",
     "std::mt19937 gen(42);  "
     "// eppi-lint: allow(rng-construction): seeding test vector\n", False),
    ("rng-construction", "src/common/rng.h",
     "std::mt19937_64 engine_;\n", False),
    ("secret-logging", "src/core/x.cpp",
     'EPPI_DEBUG("share = " << my_share);\n', True),
    ("secret-logging", "src/core/x.cpp",
     'EPPI_DEBUG("rounds = " << n_rounds);\n', False),
    ("secret-logging", "src/core/x.cpp",
     'std::cout << "super_share " << super_share;\n', True),
    ("unbounded-recv", "src/secret/x.cpp",
     "while (true) {\n  auto m = ctx.recv(p, tag, seq);\n}\n", True),
    ("unbounded-recv", "src/secret/x.cpp",
     "for (std::size_t i = 0; i < n; ++i) {\n"
     "  auto m = ctx.recv(p, tag, seq);\n}\n", False),
    ("unbounded-recv", "src/core/x.cpp",  # outside protocol dirs
     "while (true) {\n  auto m = ctx.recv(p, tag, seq);\n}\n", False),
    ("escape-hatch", "src/core/x.cpp",
     "auto v = share.reveal();\n", True),
    ("escape-hatch", "src/net/x.cpp",
     "auto v = wire_shares(mine);\n", True),
    ("escape-hatch", "src/mpc/x.cpp",
     "auto v = share.reveal();\n", False),
    ("escape-hatch", "tests/secret/x.cpp",
     "auto v = share.reveal();\n", False),
    ("raw-file-write", "src/core/x.cpp",
     "std::ofstream out(path, std::ios::binary);\n", True),
    ("raw-file-write", "tools/x.cpp",
     "FILE* f = fopen(path, \"wb\");\n", True),
    ("raw-file-write", "src/storage/posix_vfs.cpp",  # the sanctioned zone
     "const int fd = ::open(path.c_str(), O_WRONLY);\n", False),
    ("raw-file-write", "tests/core/x.cpp",  # tests may write scratch files
     "std::ofstream out(path);\n", False),
    ("raw-file-write", "src/core/x.cpp",
     "std::ofstream out(p);  "
     "// eppi-lint: allow(raw-file-write): scratch dump, not durable state\n",
     False),
    ("raw-file-write", "src/core/x.cpp",
     "std::ifstream in(path, std::ios::binary);\n", False),
    ("secret-trace-attr", "src/core/x.cpp",
     'span.attr("count", total.reveal());\n', True),
    ("secret-trace-attr", "src/secret/x.cpp",  # audited for reveal, NOT for telemetry
     'span.attr("sum", acc.reveal());\n', True),
    ("secret-trace-attr", "src/net/x.cpp",
     'registry.counter("x").add(s.unwrap_for_wire());\n', True),
    ("secret-trace-attr", "src/core/x.cpp",
     'span.attr("count",\n          total.reveal());\n', True),
    ("secret-trace-attr", "src/core/x.cpp",
     'span.attr("count", counted.common_count);\n', False),
    ("secret-trace-attr", "src/core/x.cpp",  # indirect flow: other rules' turf
     "auto v = share.reveal();\nspan.attr(\"v\", v);\n", False),
    ("secret-trace-attr", "tests/obs/x.cpp",  # tests pin the rule itself
     'span.attr("v", s.reveal());\n', False),
    ("secret-trace-attr", "src/core/x.cpp",
     'span.attr("n", t.reveal());  '
     "// eppi-lint: allow(secret-trace-attr): value is a public count\n",
     False),
]


def self_test() -> int:
    failures = 0
    for rule, path, snippet, should_fire in SELF_TEST_CASES:
        out: list = []
        for check in SOURCE_CHECKS:
            check(path, snippet, out)
        fired = any(v.rule == rule for v in out)
        if fired != should_fire:
            failures += 1
            want = "fire" if should_fire else "stay quiet"
            print(f"self-test FAIL: rule {rule} on {path!r} should {want}\n"
                  f"  snippet: {snippet!r}", file=sys.stderr)
    if failures:
        print(f"self-test: {failures} case(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(SELF_TEST_CASES)} cases passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--sarif", default=None,
                        help="also write SARIF 2.1.0 to this file")
    parser.add_argument("paths", nargs="*",
                        help="restrict the scan to these files")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = run_lint(root, args.paths or None)
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as out:
            json.dump(to_sarif(violations), out, indent=2)
            out.write("\n")
    for v in violations:
        print(v.format())
    if violations:
        print(f"eppi-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("eppi-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
